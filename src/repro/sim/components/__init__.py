"""Pluggable simulation subsystems.

The world (:class:`repro.sim.world.World`) is a thin composition root
over four independently testable components sharing one typed
:class:`~repro.sim.components.state.SimulationState`:

* :class:`~repro.sim.components.energy.EnergyAccounting` — analytic
  battery advance, draw-rate recomputation, consumption breakdown;
* :class:`~repro.sim.components.clusters.ClusterManager` — target
  relocation, re-clustering, activator wiring;
* :class:`~repro.sim.components.gate.RequestGate` — ERC thresholding
  and recharge-node-list maintenance;
* :class:`~repro.sim.components.fleet.FleetController` — dispatch
  rounds, RV sortie legs, depot returns.

Components communicate in time through the shared event engine
(``state.sim``) and are wired together with explicit constructor
injection — no component reaches into another's internals.
"""

from .clusters import ClusterManager
from .energy import EnergyAccounting
from .fleet import FleetController
from .gate import RequestGate
from .state import PRIO_DISPATCH, PRIO_RELOCATE, PRIO_RV, PRIO_TICK, SimulationState

__all__ = [
    "ClusterManager",
    "EnergyAccounting",
    "FleetController",
    "PRIO_DISPATCH",
    "PRIO_RELOCATE",
    "PRIO_RV",
    "PRIO_TICK",
    "RequestGate",
    "SimulationState",
]
