"""Tests for the ETX routing metric wired into the world."""

import numpy as np
import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


def make(**overrides):
    defaults = dict(
        n_sensors=60,
        n_targets=3,
        n_rvs=1,
        side_length_m=70.0,
        comm_range_m=14.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=500.0,
        initial_charge_range=(0.6, 0.9),
        seed=21,
    )
    defaults.update(overrides)
    return World(SimulationConfig(**defaults))


class TestEtxRouting:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing_metric="hops")

    def test_world_builds_and_runs(self):
        w = make(routing_metric="etx")
        s = w.run()
        assert s.sim_time_s > 0

    def test_uplink_etx_at_least_one(self):
        w = make(routing_metric="etx")
        assert np.all(w._uplink_etx >= 1.0 - 1e-12)

    def test_distance_metric_etx_is_one(self):
        w = make(routing_metric="distance")
        assert np.all(w._uplink_etx == 1.0)

    def test_etx_paths_avoid_grey_links_when_possible(self):
        """The ETX tree never uses a grey-zone hop when the distance
        tree offers a clean alternative of comparable length... at
        minimum, the ETX tree's hops are no longer than the range."""
        w = make(routing_metric="etx")
        for v in range(w.cfg.n_sensors):
            p = w.routing.parent[v]
            if p >= 0:
                hop = np.hypot(*(w.topology.points[v] - w.topology.points[p]))
                assert hop <= w.cfg.comm_range_m + 1e-9

    def test_etx_drains_relays_at_least_as_fast(self):
        """With retransmission energy charged, total network draw under
        ETX routing is >= the distance-metric draw (same deployment)."""
        w_d = make(routing_metric="distance")
        w_e = make(routing_metric="etx")
        # Same seed -> same deployment, clusters and actives.
        assert np.allclose(w_d.sensor_pos, w_e.sensor_pos)
        # ETX re-routing may shift relay roles, but the *total* cost of
        # delivering the same packet stream cannot be cheaper than
        # loss-free shortest-path delivery.
        assert w_e._rates.sum() >= w_d._rates.sum() * 0.999

    def test_serialization_roundtrip(self):
        from repro.sim.serialization import config_from_dict, config_to_dict

        cfg = SimulationConfig.small(routing_metric="etx")
        assert config_from_dict(config_to_dict(cfg)) == cfg
