"""Sensor activation schemes (Section III-C).

Two policies decide which cluster members actively monitor their target:

* :class:`FullTimeActivator` — every alive member is always on.  This is
  the behaviour of the prior recharging literature the paper compares
  against.
* :class:`RoundRobinActivator` — exactly one member monitors per slot,
  rotation starting from the lowest sensor ID.  A retiring sensor sends
  a notification packet to its successor; if the successor is depleted
  (no acknowledgement), the rotation skips to the next alive member.

Both expose the same interface so the simulation world can swap them:
``active_sensor_per_cluster`` (who covers each target right now) and
``active_mask`` (who burns active-sensing power).

These per-cluster Python loops are the **retained bit-exact
reference** for the structure-of-arrays twins in
:mod:`repro.sim.soa` (``SoARoundRobinActivator`` /
``SoAFullTimeActivator``).  ``REPRO_SOA=0`` runs them directly;
``REPRO_DEBUG_SOA=1`` runs them in shadow beside the array kernels and
asserts equality per call.  Changes to the rotation semantics here
must be mirrored there.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .clustering import ClusterSet

__all__ = ["FullTimeActivator", "RoundRobinActivator"]


class FullTimeActivator:
    """All alive cluster members monitor simultaneously."""

    #: Full-time duty never rotates, so the simulation's tick skips the
    #: hand-off bookkeeping and rate refresh entirely.
    rotates = False

    def __init__(self, cluster_set: ClusterSet) -> None:
        self.cluster_set = cluster_set

    def active_mask(self, alive: np.ndarray) -> np.ndarray:
        """Boolean mask over sensors: actively sensing right now."""
        return self.cluster_set.clustered_mask() & alive

    def active_sensor_per_cluster(self, alive: np.ndarray) -> np.ndarray:
        """A representative active sensor per cluster (-1 if none alive).

        With full-time activation any alive member covers the target;
        the lowest-ID one is reported for determinism.
        """
        out = np.full(len(self.cluster_set), -1, dtype=np.int64)
        for c in self.cluster_set:
            alive_members = c.members[alive[c.members]]
            if len(alive_members) > 0:
                out[c.cluster_id] = alive_members[0]
        return out

    def covered_mask(self, alive: np.ndarray) -> np.ndarray:
        """Boolean per target: someone alive is monitoring it."""
        return self.active_sensor_per_cluster(alive) >= 0

    def rotate(self, alive: np.ndarray) -> np.ndarray:
        """No-op for interface parity; returns no hand-offs."""
        return np.empty((0, 2), dtype=np.int64)


class RoundRobinActivator:
    """Distributed round-robin activation within every cluster.

    The rotation pointer of each cluster walks its (ID-sorted) member
    list one step per slot; depleted members are skipped, emulating the
    unacknowledged-notification fallback of Section III-C.  Hand-offs
    are reported so the simulator can charge notification-packet energy
    to the participants.
    """

    #: The tick rotates the duty and refreshes draw rates every slot.
    rotates = True

    def __init__(self, cluster_set: ClusterSet) -> None:
        self.cluster_set = cluster_set
        # Pointer into each cluster's member array. Starts at the lowest
        # ID (members are sorted), per the paper.
        self._ptr = np.zeros(len(cluster_set), dtype=np.int64)

    def _first_alive_from(self, cluster_id: int, start: int, alive: np.ndarray) -> Optional[int]:
        """Member *slot* of the first alive member at or after ``start``
        (wrapping), or None if the cluster is entirely depleted."""
        members = self.cluster_set[cluster_id].members
        nc = len(members)
        if nc == 0:
            return None
        for step in range(nc):
            slot = (start + step) % nc
            if alive[members[slot]]:
                return slot
        return None

    def active_sensor_per_cluster(self, alive: np.ndarray) -> np.ndarray:
        """The sensor currently monitoring each target (-1 if none)."""
        out = np.full(len(self.cluster_set), -1, dtype=np.int64)
        for c in self.cluster_set:
            slot = self._first_alive_from(c.cluster_id, int(self._ptr[c.cluster_id]), alive)
            if slot is not None:
                out[c.cluster_id] = c.members[slot]
        return out

    def active_mask(self, alive: np.ndarray) -> np.ndarray:
        """Boolean mask over sensors: actively sensing right now."""
        mask = np.zeros(self.cluster_set.n_sensors, dtype=bool)
        actives = self.active_sensor_per_cluster(alive)
        mask[actives[actives >= 0]] = True
        return mask

    def covered_mask(self, alive: np.ndarray) -> np.ndarray:
        """Boolean per target: someone alive is monitoring it."""
        return self.active_sensor_per_cluster(alive) >= 0

    def rotate(self, alive: np.ndarray) -> np.ndarray:
        """Advance every cluster's pointer by one slot.

        Returns:
            ``(k, 2)`` array of hand-offs ``(retiring_sensor,
            successor_sensor)`` for clusters where the duty actually
            moved between two alive sensors — each costs the retiring
            node a notification TX and the successor an RX.
        """
        handoffs = []
        for c in self.cluster_set:
            nc = c.size
            if nc == 0:
                continue
            cur_slot = self._first_alive_from(c.cluster_id, int(self._ptr[c.cluster_id]), alive)
            if cur_slot is None:
                continue
            nxt_slot = self._first_alive_from(c.cluster_id, (cur_slot + 1) % nc, alive)
            self._ptr[c.cluster_id] = nxt_slot if nxt_slot is not None else cur_slot
            if nxt_slot is not None and nxt_slot != cur_slot:
                handoffs.append((int(c.members[cur_slot]), int(c.members[nxt_slot])))
        if not handoffs:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(handoffs, dtype=np.int64)
