#!/usr/bin/env python
"""Tracing a simulation and visualizing what happened.

Runs one simulation with the structured trace recorder attached, then:

1. prints an ASCII map of the field mid-run (clusters, duty sensors,
   RVs, base station);
2. prints the backlog-over-time curve as an ASCII chart;
3. writes two SVGs next to this script: the field map and a chart of
   coverage + backlog over time;
4. summarizes the event log (requests, sorties, recharges, deaths).

Run:  python examples/trace_and_visualize.py
"""

import pathlib

from repro import SimulationConfig, World
from repro.sim import DAY_S
from repro.sim.trace import TraceRecorder
from repro.viz import field_svg, render_field, render_series, series_svg, write_svg

OUT_DIR = pathlib.Path(__file__).parent


def main() -> None:
    cfg = SimulationConfig.small(scheduler="combined", erp=0.6, sim_time_s=1.5 * DAY_S, seed=21)
    trace = TraceRecorder()
    world = World(cfg, trace=trace)

    # Run halfway, draw the field, then finish the run.
    world.sim.run_until(cfg.sim_time_s / 2)
    world._advance_energy()
    snap = world.snapshot()
    print(render_field(snap, cfg.side_length_m, width=64, height=26))
    write_svg(
        OUT_DIR / "field_midrun.svg",
        field_svg(snap, cfg.side_length_m, sensing_range=cfg.sensing_range_m,
                  title=f"Field at t = {world.sim.now / 3600:.0f} h"),
    )

    summary = world.run()

    # Time-series views from the trace.
    t_b, backlog = trace.series_arrays("backlog")
    t_c, coverage = trace.series_arrays("coverage")
    hours_b = t_b / 3600.0
    print()
    print(render_series(
        {"backlog": (hours_b, backlog)},
        title="Pending recharge requests over time",
        y_label="requests",
    ))
    write_svg(
        OUT_DIR / "timeseries.svg",
        series_svg(
            {"backlog (requests)": (hours_b, backlog),
             "coverage (frac)": (t_c / 3600.0, coverage)},
            title="Backlog and coverage over time",
            x_label="simulated hours",
        ),
    )

    # Event-log digest.
    print("\n--- event log digest -----------------------------------")
    for kind, count in sorted(trace.summary_counts().items()):
        print(f"  {kind:20s} {count}")
    lats = [l / 3600 for _, l in trace.request_latencies()]
    if lats:
        print(f"  request latency: mean {sum(lats) / len(lats):.2f} h, max {max(lats):.2f} h")
    print(f"\nfinal summary: {summary.n_recharges} recharges, "
          f"coverage {100 * summary.avg_coverage_ratio:.2f} %, "
          f"RV travel {summary.traveling_distance_m / 1000:.2f} km")
    print(f"SVGs written: {OUT_DIR / 'field_midrun.svg'}, {OUT_DIR / 'timeseries.svg'}")


if __name__ == "__main__":
    main()
