"""Recharging Vehicles (RVs).

Section II-A: RVs move at constant speed ``vr`` (Table II: 1 m/s),
consume ``em`` Joules per meter of travel (5.6 J/m), deliver energy to
sensors wirelessly, and replenish their own batteries at the base
station.  The onboard budget ``Cr`` caps one sortie's delivered energy
plus traveling energy (constraint (7)).

The RV object is deliberately passive: it executes moves and charge
transfers and keeps books; deciding *where* to go is the scheduler's
job, and *when* is the simulator's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..energy.battery import Battery
from ..geometry.points import distance

__all__ = ["RechargingVehicle", "RVStats"]


@dataclass
class RVStats:
    """Cumulative books kept by one RV over a simulation."""

    distance_m: float = 0.0
    moving_energy_j: float = 0.0
    delivered_energy_j: float = 0.0
    nodes_recharged: int = 0
    sorties: int = 0
    depot_visits: int = 0


@dataclass
class RechargingVehicle:
    """One mobile charger.

    Args:
        rv_id: stable identifier (index into the fleet).
        depot: base-station coordinates; the RV starts here.
        speed_mps: travel speed ``vr``.
        moving_cost_j_per_m: travel energy rate ``em``.
        capacity_j: sortie budget ``Cr`` — delivered energy plus
            traveling energy per sortie may not exceed it.
    """

    rv_id: int
    depot: np.ndarray
    speed_mps: float = 1.0
    moving_cost_j_per_m: float = 5.6
    capacity_j: float = 200_000.0
    position: np.ndarray = field(init=False)
    battery: Battery = field(init=False)
    stats: RVStats = field(init=False)
    itinerary: List[int] = field(init=False)
    busy: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.speed_mps <= 0:
            raise ValueError("speed_mps must be positive")
        if self.moving_cost_j_per_m < 0:
            raise ValueError("moving_cost_j_per_m must be non-negative")
        if self.capacity_j <= 0:
            raise ValueError("capacity_j must be positive")
        self.depot = np.asarray(self.depot, dtype=np.float64).reshape(2)
        self.position = self.depot.copy()
        self.battery = Battery(self.capacity_j)
        self.stats = RVStats()
        self.itinerary = []

    @property
    def at_depot(self) -> bool:
        return bool(np.allclose(self.position, self.depot))

    def travel_time_to(self, point: np.ndarray) -> float:
        """Seconds to drive straight to ``point``."""
        return distance(self.position, point) / self.speed_mps

    def travel_energy_to(self, point: np.ndarray) -> float:
        """Joules of traveling energy to reach ``point``."""
        return distance(self.position, point) * self.moving_cost_j_per_m

    def can_afford(self, travel_m: float, delivery_j: float) -> bool:
        """Would a further ``travel_m`` meters plus ``delivery_j`` of
        transfer fit in the remaining sortie budget, keeping enough to
        get home?  ``travel_m`` should already include the return leg if
        the caller wants a round-trip guarantee."""
        need = travel_m * self.moving_cost_j_per_m + delivery_j
        return need <= self.battery.level_j + 1e-9

    def move_to(self, point: np.ndarray) -> float:
        """Drive straight to ``point``; returns the travel time in seconds.

        Debits the battery by ``em * distance`` and updates the books.
        The move executes even if it overdraws the budget — schedulers
        are responsible for only issuing affordable moves; the battery
        clamps at zero and the discrepancy is visible in the stats.
        """
        point = np.asarray(point, dtype=np.float64).reshape(2)
        d = distance(self.position, point)
        t = d / self.speed_mps
        e = d * self.moving_cost_j_per_m
        self.battery.drain(e)
        self.position = point.copy()
        self.stats.distance_m += d
        self.stats.moving_energy_j += e
        return t

    def deliver(self, amount_j: float, efficiency: float = 1.0) -> None:
        """Transfer ``amount_j`` into a sensor battery.

        Debits ``amount_j / efficiency`` from the RV budget and counts
        the node as recharged.
        """
        if amount_j < 0:
            raise ValueError("amount_j must be non-negative")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")
        self.battery.drain(amount_j / efficiency)
        self.stats.delivered_energy_j += amount_j
        self.stats.nodes_recharged += 1

    def return_to_depot(self) -> float:
        """Drive home and refill the sortie budget; returns travel time."""
        t = self.move_to(self.depot)
        self.battery.refill()
        self.stats.depot_visits += 1
        return t

    def begin_sortie(self, itinerary: List[int]) -> None:
        """Record the node sequence this sortie will serve."""
        self.itinerary = list(itinerary)
        self.busy = True
        self.stats.sorties += 1

    def end_sortie(self) -> None:
        self.itinerary = []
        self.busy = False
