"""Run helpers: scheduler factory, single runs, seed-averaged sweeps.

The experiment drivers (``repro.experiments``) and the benchmark suite
go through these functions so every figure is produced by the same code
path.  Seed fan-out can run across processes (``processes > 1``) —
configurations and summaries are plain frozen dataclasses, so they
cross process boundaries for free.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.scheduling import Scheduler
from ..obs import (
    DEFAULT_EXPORTERS,
    BlackBoxRecorder,
    Instruments,
    MonitorSet,
    RunManifest,
    SpanTracer,
    TelemetryBundle,
    blackbox_enabled,
)
from ..registry import EXPORTERS, SCHEDULERS
from .config import SimulationConfig
from .metrics import SimulationSummary
from .serialization import config_to_dict
from .soa import engine_provenance
from .trace import TraceRecorder
from .world import World

__all__ = [
    "make_scheduler",
    "run_simulation",
    "run_batch",
    "run_recorded",
    "run_seeds",
    "run_with_telemetry",
    "average_summaries",
]

logger = logging.getLogger(__name__)


def make_scheduler(name: str, fleet_size: int) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    Thin wrapper over :data:`repro.registry.SCHEDULERS` — anything
    registered there (including third-party plugins) is constructible
    here, and an unknown name raises a ``ValueError`` listing the names
    currently registered.

    ``insertion`` is the single-RV Algorithm 3; with a fleet it behaves
    like the Combined-Scheme (see :mod:`repro.core.combined`).
    """
    return SCHEDULERS.build(name, fleet_size=fleet_size)


def run_simulation(config: SimulationConfig) -> SimulationSummary:
    """Build a world from ``config``, run it, return the summary."""
    return World(config).run()


def run_batch(
    configs: Sequence[SimulationConfig],
    debug: Optional[bool] = None,
    instruments=None,
) -> List[SimulationSummary]:
    """Run several configurations, batching compatible ones.

    Configurations are grouped by :func:`~repro.sim.batch.shape_signature`
    (identical up to seed / scheduler / erp / horizon) and each group
    advances in lockstep through one
    :class:`~repro.sim.batch.BatchedEngine`; anything the batched
    kernels cannot represent — a plugin activator, a custom ERC release
    policy, an attached trace recorder, ``REPRO_SOA=0`` — falls back to
    :func:`run_simulation` per cell.  Either way every summary is
    bit-identical to its serial ``run_simulation`` counterpart, and
    results come back in input order.

    ``debug`` arms the per-world serial shadow twin (``None`` consults
    ``REPRO_DEBUG_BATCH``).  ``REPRO_STRICT_MONITORS=1`` wires every
    batched world with a strict :class:`~repro.obs.MonitorSet`, so the
    invariant monitors validate the batched kernels tick by tick and
    any violation raises — monitors observe the trajectory, never
    perturb it.

    ``instruments`` (optional) records batch occupancy — alive worlds
    per step, cells batched vs serial-fallback — into the given
    registry (a streaming warm-pool worker passes its per-task local
    one); instruments never touch the trajectory, so summaries stay
    byte-identical with or without them.
    """
    from ..obs.instruments import NULL_INSTRUMENTS
    from ..obs.monitors import MonitorSet, strict_monitors_default
    from .batch import BatchedEngine, _batchable_world, batchable_config, shape_signature

    obs = NULL_INSTRUMENTS if instruments is None else instruments
    strict = strict_monitors_default()
    configs = list(configs)
    out: List[Optional[SimulationSummary]] = [None] * len(configs)
    groups: Dict[str, List[Tuple[int, World]]] = {}
    for i, cfg in enumerate(configs):
        if not batchable_config(cfg):
            logger.debug("cell %d not batchable by config; running serially", i)
            obs.counter("batch.cells_serial").inc()
            out[i] = run_simulation(cfg)
            continue
        world = World(
            cfg,
            external_tick=True,
            monitors=MonitorSet(strict=True) if strict else None,
        )
        reason = _batchable_world(world)
        if reason is not None:
            # The screening world has no tick event scheduled; rebuild.
            logger.debug("cell %d not batchable (%s); running serially", i, reason)
            obs.counter("batch.cells_serial").inc()
            out[i] = run_simulation(cfg)
            continue
        groups.setdefault(shape_signature(cfg), []).append((i, world))
    for pairs in groups.values():
        obs.counter("batch.cells_batched").inc(len(pairs))
        engine = BatchedEngine(worlds=[w for _, w in pairs], debug=debug, instruments=obs)
        for (i, _), summary in zip(pairs, engine.run()):
            out[i] = summary
    return out  # type: ignore[return-value]


def default_processes() -> int:
    """Worker count for parallel seed fan-out.

    Honors the ``REPRO_PROCS`` environment variable; ``1`` (serial) by
    default so library users opt in explicitly.
    """
    value = os.environ.get("REPRO_PROCS", "1")
    try:
        n = int(value)
    except ValueError as exc:
        raise ValueError(f"REPRO_PROCS must be an integer, got {value!r}") from exc
    if n < 1:
        raise ValueError("REPRO_PROCS must be >= 1")
    return n


def run_seeds(
    config: SimulationConfig,
    seeds: Sequence[int],
    processes: Optional[int] = None,
) -> List[SimulationSummary]:
    """Run the same configuration under several seeds.

    Args:
        config: the base configuration (its ``seed`` is overridden).
        seeds: seeds to run; results come back in this order.
        processes: worker processes.  ``None`` consults
            :func:`default_processes`; ``1`` runs serially in-process.
    """
    configs = [config.with_overrides(seed=s) for s in seeds]
    n_procs = default_processes() if processes is None else processes
    if n_procs < 1:
        raise ValueError("processes must be >= 1")
    if n_procs == 1 or len(configs) <= 1:
        return [run_simulation(c) for c in configs]
    # Prefer fork (cheap, and robust for REPL/stdin callers); fall back
    # to spawn on platforms without it.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    with multiprocessing.get_context(method).Pool(min(n_procs, len(configs))) as pool:
        return pool.map(run_simulation, configs)


def _make_blackbox(blackbox) -> Optional[BlackBoxRecorder]:
    """Resolve the ``blackbox`` argument convention shared by the run
    helpers: ``None`` consults ``REPRO_BLACKBOX``, ``True``/``False``
    force it on/off, and a recorder instance is used as-is."""
    if blackbox is None:
        return BlackBoxRecorder() if blackbox_enabled() else None
    if blackbox is True:
        return BlackBoxRecorder()
    if blackbox is False:
        return None
    return blackbox


def _flush_postmortem(
    recorder: BlackBoxRecorder,
    directory: Union[str, Path],
    *,
    reason: str,
    config: SimulationConfig,
    monitors=None,
    spans=None,
    instruments=None,
    world=None,
    error: Optional[BaseException] = None,
) -> Path:
    """Write a postmortem bundle; never raises (a failing flush must
    not mask the original failure)."""
    final = None
    if error is not None and world is not None:
        from .replay import abort_record

        try:
            final = abort_record(world, error)
        except Exception:  # state too broken to digest — flush without
            logger.exception("could not digest state for the abort record")
    try:
        path = recorder.flush(
            directory,
            reason=reason,
            config=config_to_dict(config),
            engine=engine_provenance(),
            monitors=monitors.describe() if monitors is not None else None,
            spans=spans,
            instruments=instruments.snapshot() if instruments is not None else None,
            error=f"{type(error).__name__}: {error}" if error is not None else None,
            final_record=final,
        )
        logger.warning("postmortem bundle written to %s (reason: %s)", path, reason)
        return Path(directory)
    except Exception:
        logger.exception("failed to flush the postmortem bundle to %s", directory)
        return Path(directory)


def run_recorded(
    config: SimulationConfig,
    bundle_dir: Union[str, Path],
    strict: Optional[bool] = None,
) -> SimulationSummary:
    """Run one simulation with the flight recorder armed and a
    postmortem bundle guaranteed at ``bundle_dir``.

    The bundle's reason reflects the outcome: ``exception`` when the
    run died (the exception is re-raised after the flush, with an
    ``abort`` record digesting the state at the failure point),
    ``violation`` when non-strict monitors recorded violations, and
    ``requested`` for a clean run.  ``strict`` arms strict monitors
    (``None`` consults ``REPRO_STRICT_MONITORS``).
    """
    recorder = BlackBoxRecorder()
    monitors = MonitorSet(strict=strict, blackbox=recorder)
    world = World(config, monitors=monitors, blackbox=recorder)
    try:
        summary = world.run()
    except BaseException as exc:
        _flush_postmortem(
            recorder, bundle_dir, reason="exception", config=config,
            monitors=monitors, world=world, error=exc,
        )
        raise
    reason = "violation" if monitors.violations else "requested"
    _flush_postmortem(
        recorder, bundle_dir, reason=reason, config=config, monitors=monitors,
    )
    return summary


def run_with_telemetry(
    config: SimulationConfig,
    out_dir: Union[str, Path],
    exporters: Optional[Sequence[str]] = None,
    blackbox=None,
    postmortem: Optional[Union[str, Path]] = None,
) -> Tuple[SimulationSummary, RunManifest]:
    """Run one simulation with full telemetry archived to ``out_dir``.

    The run is wired with a :class:`~repro.sim.trace.TraceRecorder`, an
    :class:`~repro.obs.Instruments` registry, a
    :class:`~repro.obs.SpanTracer` (the hierarchical flight-recorder
    trace) and a :class:`~repro.obs.MonitorSet` (runtime invariant
    monitors; ``REPRO_STRICT_MONITORS=1`` makes violations raise), then
    every requested exporter (names from
    :data:`repro.registry.EXPORTERS`; the defaults otherwise) writes
    its files into ``out_dir``, and a ``manifest.json``
    (:class:`~repro.obs.RunManifest`: config digest, seed, version, git
    revision, wall time, instrument snapshot, file index) is written
    last so a complete directory always has one.

    Telemetry never touches the trajectory: the summary returned here
    is bit-identical to ``run_simulation(config)``.

    ``blackbox`` arms the flight recorder (``None`` consults
    ``REPRO_BLACKBOX``; ``True`` forces it; a
    :class:`~repro.obs.BlackBoxRecorder` instance is used as-is).  With
    a recorder armed, any exception or monitor violation flushes a
    postmortem bundle to ``postmortem`` (default:
    ``out_dir/postmortem``) before the exception propagates; passing
    ``postmortem`` explicitly also flushes a bundle for clean runs.

    Returns:
        ``(summary, manifest)``.
    """
    names = list(exporters) if exporters is not None else list(DEFAULT_EXPORTERS)
    for name in names:
        EXPORTERS.check(name)
    recorder = _make_blackbox(blackbox)
    instruments = Instruments()
    trace = TraceRecorder()
    spans = SpanTracer()
    monitors = MonitorSet(instruments=instruments, spans=spans, blackbox=recorder)
    wall0 = time.perf_counter()
    world = World(
        config, trace=trace, instruments=instruments, spans=spans, monitors=monitors,
        blackbox=recorder,
    )
    try:
        summary = world.run()
    except BaseException as exc:
        if recorder is not None:
            _flush_postmortem(
                recorder,
                Path(postmortem) if postmortem is not None
                else Path(out_dir) / "postmortem",
                reason="exception", config=config, monitors=monitors,
                spans=spans, instruments=instruments, world=world, error=exc,
            )
        raise
    wall_time_s = time.perf_counter() - wall0
    if recorder is not None and (postmortem is not None or monitors.violations):
        _flush_postmortem(
            recorder,
            Path(postmortem) if postmortem is not None
            else Path(out_dir) / "postmortem",
            reason="violation" if monitors.violations else "requested",
            config=config, monitors=monitors, spans=spans, instruments=instruments,
        )
    if monitors.violations:
        logger.warning(
            "run completed with %d invariant violation(s): %s",
            len(monitors.violations), monitors.summary()["by_invariant"],
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    bundle = TelemetryBundle(
        instruments=instruments.snapshot(),
        summary=summary.as_dict(),
        config=config_to_dict(config),
        trace=trace,
        spans=spans,
    )
    files: Dict[str, List[str]] = {}
    for name in names:
        written = EXPORTERS.build(name).export(out, bundle)
        files[name] = [p.name for p in written]
    manifest = RunManifest.create(
        config=bundle.config,
        seed=config.seed,
        wall_time_s=wall_time_s,
        summary=bundle.summary,
        instruments=bundle.instruments,
        exporters=names,
        files=files,
        engine=engine_provenance(),
    )
    manifest.write(out)
    logger.info(
        "telemetry archived to %s (%d exporter(s), %.3fs simulated wall time)",
        out, len(names), wall_time_s,
    )
    return summary, manifest


def average_summaries(summaries: Iterable[SimulationSummary]) -> Dict[str, float]:
    """Field-wise mean of several summaries (for seed averaging)."""
    dicts = [s.as_dict() for s in summaries]
    if not dicts:
        raise ValueError("no summaries to average")
    keys = dicts[0].keys()
    return {k: float(np.mean([d[k] for d in dicts])) for k in keys}
