"""Ablation A1 — insertion heuristic (Algorithm 3) vs the exact optimum.

On small instances (n <= 9, where the Held-Karp DP is exact) the
heuristic's Eq. (2) profit is compared against the provable optimum.
The paper offers no optimality-gap numbers — this quantifies what the
NP-hardness argument leaves open.
"""

import numpy as np

from repro.core.insertion import build_insertion_sequence
from repro.core.mip import RechargeInstance, solve_exact_single_rv
from repro.core.requests import RechargeRequest, aggregate_by_cluster
from repro.utils.tables import format_table

from _shared import emit


def _gap_for(rng, n, demand_scale):
    positions = rng.uniform(0, 200, size=(n, 2))
    demands = rng.uniform(0.5, 1.0, size=n) * demand_scale
    inst = RechargeInstance(positions, demands, np.array([100.0, 100.0]), em_j_per_m=5.6)
    reqs = [RechargeRequest(i, positions[i], float(demands[i])) for i in range(n)]
    order = build_insertion_sequence(aggregate_by_cluster(reqs), inst.start, 1e12, 5.6)
    heuristic = inst.route_profit(order) if order else 0.0
    exact = solve_exact_single_rv(inst).profit
    gap = 0.0 if exact <= 0 else 100.0 * (exact - heuristic) / exact
    return heuristic, exact, gap


def bench_ablation_exact_gap(benchmark):
    def run():
        rows = []
        for n in (5, 7, 9):
            for demand_scale in (1000.0, 4000.0):
                gaps = []
                for seed in range(10):
                    rng = np.random.default_rng(seed)
                    _, _, gap = _gap_for(rng, n, demand_scale)
                    gaps.append(gap)
                rows.append([n, demand_scale, float(np.mean(gaps)), float(np.max(gaps))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["n nodes", "demand scale (J)", "mean gap (%)", "max gap (%)"],
        rows,
        precision=2,
        title="Ablation A1 - insertion heuristic optimality gap vs exact DP",
    )
    emit("ablation_exact_gap", table)
    # The heuristic is near-optimal in the paper's operating regime
    # (demands large relative to traveling cost); when travel dominates
    # the objective (low demand scale) the gap widens — that is the
    # finding this ablation documents.
    high_demand = [row for row in rows if row[1] >= 4000.0]
    assert all(row[2] < 10.0 for row in high_demand)
    assert all(row[2] < 50.0 for row in rows)
