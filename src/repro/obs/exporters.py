"""Pluggable telemetry exporters, registered by name.

An exporter turns one run's :class:`TelemetryBundle` — the instrument
snapshot, the final summary, the configuration, and (optionally) the
trace recorder and span tracer — into files inside a telemetry
directory.  Exporters register in :data:`repro.registry.EXPORTERS`
exactly like schedulers register in ``SCHEDULERS``, so third parties
can add formats without touching the runner or the CLI::

    from repro.registry import EXPORTERS

    @EXPORTERS.register("parquet")
    def _build():
        return MyParquetExporter()

Built-ins:

* ``jsonl`` — ``events.jsonl`` (the trace's JSONL round-trip format)
  plus ``metrics.jsonl`` (one JSON object per instrument);
* ``prometheus`` — ``metrics.prom``, a Prometheus text-format snapshot;
* ``csv`` — ``series.csv`` (long-format trace time series) and
  ``instruments.csv``;
* ``spans`` — ``spans.jsonl``, the hierarchical span tree
  (:mod:`repro.obs.spans`), one span per line in open order;
* ``sqlite`` — ``telemetry.sqlite``, a stdlib :mod:`sqlite3` database
  with one table for instruments and one for span rows (queryable
  without loading JSON; not in the defaults — opt in with
  ``--exporters``).

This module never imports :mod:`repro.sim`; the trace is duck-typed
(anything with ``events``, ``series`` and ``to_jsonl_lines()`` works),
which keeps ``repro.obs`` importable from the simulation state without
an import cycle.
"""

from __future__ import annotations

import csv
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..registry import EXPORTERS

__all__ = [
    "CsvExporter",
    "JsonlExporter",
    "PrometheusExporter",
    "SpansExporter",
    "SqliteExporter",
    "TelemetryBundle",
    "DEFAULT_EXPORTERS",
    "prometheus_lines",
]

#: The exporter names a telemetry run enables when none are requested.
DEFAULT_EXPORTERS = ("jsonl", "prometheus", "csv", "spans")


@dataclass
class TelemetryBundle:
    """Everything one run hands to its exporters.

    Attributes:
        instruments: an ``Instruments.snapshot()`` dict.
        summary: the final ``SimulationSummary.as_dict()``.
        config: the run's ``config_to_dict`` view.
        trace: the run's ``TraceRecorder`` (or ``None`` when only
            instruments were collected).
        spans: the run's ``SpanTracer`` (or ``None`` when no spans
            were recorded).  Duck-typed: anything with ``to_rows()``
            and ``to_jsonl_lines()`` works.
    """

    instruments: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, float] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Any] = None
    spans: Optional[Any] = None


# Prometheus exposition format 0.0.4: metric names must match
# [a-zA-Z_:][a-zA-Z0-9_:]*.  Colons are reserved for recording rules,
# so every other character maps to "_" and runs collapse to one.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_PROM_COLLAPSE = re.compile(r"__+")


def _prom_name(name: str) -> str:
    """A dotted instrument name as a valid Prometheus metric name.

    ``fleet.rv0.delivered-j`` -> ``repro_fleet_rv0_delivered_j``: every
    invalid character (dots, dashes, unicode) becomes ``_``, duplicate
    underscores collapse, and the ``repro_`` prefix keeps the first
    character legal even for names starting with a digit.
    """
    safe = _PROM_COLLAPSE.sub("_", _PROM_INVALID.sub("_", name)).strip("_")
    return f"repro_{safe}"


def _prom_unique(metric: str, used: set) -> str:
    """Disambiguate sanitized-name collisions (``a.b`` vs ``a_b``).

    Duplicate metric names would make the exposition invalid, so later
    claimants get a numbered suffix.
    """
    candidate = metric
    n = 2
    while candidate in used:
        candidate = f"{metric}_dup{n}"
        n += 1
    used.add(candidate)
    return candidate


class JsonlExporter:
    """``events.jsonl`` + ``metrics.jsonl``: the line-oriented formats.

    ``events.jsonl`` is written by the trace recorder itself (one event
    or series sample per line), so a telemetry directory and a saved
    trace are the same format; ``metrics.jsonl`` holds one object per
    instrument with a ``"instrument"`` kind tag.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        out_dir = Path(out_dir)
        written: List[Path] = []
        if bundle.trace is not None:
            events = out_dir / "events.jsonl"
            with open(events, "w") as f:
                for line in bundle.trace.to_jsonl_lines():
                    f.write(line + "\n")
            written.append(events)
        metrics = out_dir / "metrics.jsonl"
        with open(metrics, "w") as f:
            snap = bundle.instruments
            for kind in ("counters", "gauges"):
                for name, value in snap.get(kind, {}).items():
                    f.write(json.dumps(
                        {"instrument": kind[:-1], "name": name, "value": value}
                    ) + "\n")
            for kind in ("histograms", "timers"):
                for name, summary in snap.get(kind, {}).items():
                    f.write(json.dumps(
                        {"instrument": kind[:-1], "name": name, **summary}
                    ) + "\n")
        written.append(metrics)
        return written


def _prom_escape_help(text: str) -> str:
    """Escape a HELP string per exposition format (backslash, newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_histogram_lines(
    metric: str,
    count: float,
    total: float,
    buckets: Optional[List[float]],
    bucket_bounds: Optional[List[float]],
    help_text: str,
) -> List[str]:
    """A full ``histogram``-typed series: HELP/TYPE, cumulative
    ``_bucket{le=...}`` rows ending in ``+Inf``, ``_sum`` and ``_count``.

    Histograms recorded without bucket bounds still emit a single
    ``+Inf`` bucket equal to the count, keeping the exposition a valid
    histogram instead of the old summary-style pair.
    """
    lines = [
        f"# HELP {metric} {_prom_escape_help(help_text)}",
        f"# TYPE {metric} histogram",
    ]
    if buckets is not None and bucket_bounds is not None:
        cum = 0.0
        for bound, n in zip(bucket_bounds, buckets):
            cum += n
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cum:g}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count:g}')
    else:
        lines.append(f'{metric}_bucket{{le="+Inf"}} {count:g}')
    lines.append(f"{metric}_sum {total:g}")
    lines.append(f"{metric}_count {count:g}")
    return lines


def prometheus_lines(
    snapshot: Dict[str, Any],
    summary: Optional[Dict[str, float]] = None,
    bucket_bounds: Optional[Dict[str, List[float]]] = None,
) -> List[str]:
    """Render an ``Instruments.snapshot()`` as exposition-format lines.

    Shared by the file exporter and the live ``/metrics`` endpoint so
    both speak exactly the same dialect: ``# HELP`` / ``# TYPE`` for
    every family, ``_total`` counters, plain gauges, and full
    ``_bucket`` / ``_sum`` / ``_count`` histogram series (timers in
    seconds).  Bucketed snapshot rows carry their own ``bucket_bounds``;
    ``bucket_bounds`` maps instrument names to upper bounds for older
    snapshots that only recorded ``buckets`` counts.  Without either,
    the histogram degrades to a single ``+Inf`` bucket.
    """
    lines: List[str] = []
    used: set = set()
    bounds_by_name = bucket_bounds or {}
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_unique(_prom_name(name) + "_total", used)
        lines += [
            f"# HELP {metric} {_prom_escape_help(f'counter {name}')}",
            f"# TYPE {metric} counter",
            f"{metric} {value:g}",
        ]
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_unique(_prom_name(name), used)
        lines += [
            f"# HELP {metric} {_prom_escape_help(f'gauge {name}')}",
            f"# TYPE {metric} gauge",
            f"{metric} {value:g}",
        ]
    for name, s in snapshot.get("histograms", {}).items():
        metric = _prom_unique(_prom_name(name), used)
        bounds = s.get("bucket_bounds") or bounds_by_name.get(name)
        buckets = s.get("buckets") if bounds is not None else None
        lines += _prom_histogram_lines(
            metric, s["count"], s["total"], buckets, bounds, f"histogram {name}"
        )
    for name, s in snapshot.get("timers", {}).items():
        metric = _prom_unique(_prom_name(name) + "_seconds", used)
        bounds = s.get("bucket_bounds") or bounds_by_name.get(name)
        buckets = s.get("buckets") if bounds is not None else None
        lines += _prom_histogram_lines(
            metric, s["count"], s["total_s"], buckets, bounds, f"timer {name} (seconds)"
        )
    for key, value in (summary or {}).items():
        metric = _prom_unique(_prom_name(f"summary.{key}"), used)
        lines += [
            f"# HELP {metric} {_prom_escape_help(f'final summary {key}')}",
            f"# TYPE {metric} gauge",
            f"{metric} {value:g}",
        ]
    return lines


class PrometheusExporter:
    """``metrics.prom``: a Prometheus text-format (0.0.4) snapshot.

    Counters and gauges map directly; histograms and timers are
    exposed as proper ``histogram`` families with ``_bucket`` /
    ``_sum`` / ``_count`` series (timers in seconds), each preceded by
    ``# HELP`` and ``# TYPE``.  The final simulation summary rides
    along as ``repro_summary_*`` gauges so a scrape of an archived run
    carries its headline figures.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        lines = prometheus_lines(bundle.instruments, bundle.summary)
        path = Path(out_dir) / "metrics.prom"
        path.write_text("\n".join(lines) + "\n")
        return [path]


class CsvExporter:
    """``series.csv`` + ``instruments.csv``: spreadsheet-friendly views.

    ``series.csv`` is the long-format dump of the trace's named time
    series (``series,time_s,value``); ``instruments.csv`` flattens the
    instrument snapshot to ``kind,name,field,value`` rows.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        out_dir = Path(out_dir)
        written: List[Path] = []
        if bundle.trace is not None:
            series_path = out_dir / "series.csv"
            with open(series_path, "w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(["series", "time_s", "value"])
                for name, samples in bundle.trace.series.items():
                    for t, v in samples:
                        writer.writerow([name, repr(float(t)), repr(float(v))])
            written.append(series_path)
        inst_path = out_dir / "instruments.csv"
        with open(inst_path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["kind", "name", "field", "value"])
            snap = bundle.instruments
            for kind in ("counters", "gauges"):
                for name, value in snap.get(kind, {}).items():
                    writer.writerow([kind[:-1], name, "value", repr(float(value))])
            for kind in ("histograms", "timers"):
                for name, summary in snap.get(kind, {}).items():
                    for fieldname, value in summary.items():
                        if not isinstance(value, (int, float)):
                            continue  # bucket-count lists stay in JSON land
                        writer.writerow([kind[:-1], name, fieldname, repr(float(value))])
        written.append(inst_path)
        return written


class SpansExporter:
    """``spans.jsonl``: the hierarchical span tree, one span per line.

    The format round-trips byte-for-byte through
    :func:`repro.obs.spans.load_spans` /
    :func:`repro.obs.spans.spans_to_jsonl_lines`, and ``repro report``
    renders it as an aggregated tree.  Writes nothing when the bundle
    carries no span tracer.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        if bundle.spans is None:
            return []
        path = Path(out_dir) / "spans.jsonl"
        with open(path, "w") as f:
            for line in bundle.spans.to_jsonl_lines():
                f.write(line + "\n")
        return [path]


class SqliteExporter:
    """``telemetry.sqlite``: instruments and spans as queryable tables.

    Two tables, per the documented third-party-exporter contract:

    * ``instruments(kind, name, field, value)`` — the flattened
      instrument snapshot (same rows as ``instruments.csv``) plus the
      final summary metrics under ``kind='summary'``;
    * ``spans(span_id, parent_id, name, t0, t1, duration_s, attrs,
      events)`` — one row per span, attributes and events as JSON text.

    Uses only the stdlib :mod:`sqlite3`; an existing database at the
    target path is replaced so re-exports stay idempotent.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        import sqlite3

        path = Path(out_dir) / "telemetry.sqlite"
        if path.exists():
            path.unlink()
        conn = sqlite3.connect(path)
        try:
            conn.execute(
                "CREATE TABLE instruments "
                "(kind TEXT, name TEXT, field TEXT, value REAL)"
            )
            rows: List[tuple] = []
            snap = bundle.instruments
            for kind in ("counters", "gauges"):
                for name, value in snap.get(kind, {}).items():
                    rows.append((kind[:-1], name, "value", float(value)))
            for kind in ("histograms", "timers"):
                for name, summary in snap.get(kind, {}).items():
                    for fieldname, value in summary.items():
                        if not isinstance(value, (int, float)):
                            continue  # bucket-count lists stay in JSON land
                        rows.append((kind[:-1], name, fieldname, float(value)))
            for key, value in bundle.summary.items():
                rows.append(("summary", key, "value", float(value)))
            conn.executemany("INSERT INTO instruments VALUES (?, ?, ?, ?)", rows)
            conn.execute(
                "CREATE TABLE spans (span_id INTEGER PRIMARY KEY, "
                "parent_id INTEGER, name TEXT, t0 REAL, t1 REAL, "
                "duration_s REAL, attrs TEXT, events TEXT)"
            )
            if bundle.spans is not None:
                conn.executemany(
                    "INSERT INTO spans VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            row["id"],
                            row["parent"],
                            row["name"],
                            row["t0"],
                            row["t1"],
                            row["t1"] - row["t0"],
                            json.dumps(row["attrs"]),
                            json.dumps(row["events"]),
                        )
                        for row in bundle.spans.to_rows()
                    ],
                )
            conn.commit()
        finally:
            conn.close()
        return [path]


EXPORTERS.register(
    "jsonl",
    JsonlExporter,
    doc="events.jsonl + metrics.jsonl (shared trace round-trip format).",
)
EXPORTERS.register(
    "prometheus",
    PrometheusExporter,
    doc="metrics.prom: Prometheus text-format snapshot.",
)
EXPORTERS.register(
    "csv",
    CsvExporter,
    doc="series.csv + instruments.csv time-series tables.",
)
EXPORTERS.register(
    "spans",
    SpansExporter,
    doc="spans.jsonl: hierarchical span tree (flight-recorder trace).",
)
EXPORTERS.register(
    "sqlite",
    SqliteExporter,
    doc="telemetry.sqlite: instruments + spans as queryable tables.",
)
