"""Per-node traffic accounting on the routing tree.

Active sensors originate ``lambda`` packets per second; every packet is
forwarded hop by hop to the base station.  A node's *relay* load is the
rate of packets it forwards for others — each costing one receive plus
one transmit (its own originations cost only the transmit, which the
power model charges to the active node).

The load computation is a single pass over vertices in decreasing
distance-to-base order: by the time a vertex is processed all of its
subtree has already pushed its rate into it.
"""

from __future__ import annotations

import numpy as np

from .routing import RoutingTree

__all__ = ["relay_rates", "subtree_rates"]


def subtree_rates(tree: RoutingTree, origination_rates: np.ndarray) -> np.ndarray:
    """Total packet rate passing *through* each vertex (own + relayed).

    Args:
        tree: the routing tree.
        origination_rates: packets/second originated by each sensor
            (length ``n_sensors``); disconnected sensors are ignored —
            their packets never enter the network.

    Returns:
        Array of length ``n_sensors + 1`` (the base is last): packets per
        second carried by each vertex.  The base entry is the total
        delivered rate.
    """
    origination_rates = np.asarray(origination_rates, dtype=np.float64)
    if origination_rates.shape != (tree.n_sensors,):
        raise ValueError(
            f"expected origination rates of shape ({tree.n_sensors},), got {origination_rates.shape}"
        )
    if np.any(origination_rates < 0):
        raise ValueError("origination rates must be non-negative")
    n_total = len(tree.topology)
    through = np.zeros(n_total, dtype=np.float64)
    connected = np.isfinite(tree.dist[: tree.n_sensors])
    through[: tree.n_sensors] = np.where(connected, origination_rates, 0.0)
    # Farthest-first accumulation along parent pointers.
    order = np.argsort(tree.dist, kind="stable")[::-1]
    for v in order:
        if v == tree.base or not np.isfinite(tree.dist[v]):
            continue
        p = tree.parent[v]
        if p >= 0:
            through[p] += through[v]
    return through


def relay_rates(tree: RoutingTree, origination_rates: np.ndarray) -> np.ndarray:
    """Packets/second each *sensor* forwards on behalf of others.

    ``relay = through - own`` for connected sensors; zero otherwise.
    """
    origination_rates = np.asarray(origination_rates, dtype=np.float64)
    through = subtree_rates(tree, origination_rates)
    connected = np.isfinite(tree.dist[: tree.n_sensors])
    own = np.where(connected, origination_rates, 0.0)
    relay = through[: tree.n_sensors] - own
    # Guard against negative zeros from floating-point subtraction.
    return np.maximum(relay, 0.0)
