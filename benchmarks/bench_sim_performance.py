"""Simulator performance microbenchmarks (regression guards).

Not a paper figure — these pin the cost of the hot paths so future
changes that regress the engine show up in benchmark history:

* building a 500-sensor world (deployment + topology + routing);
* one vectorized energy advance over the whole bank;
* one rate recomputation (activation + relay accounting);
* a full small simulation end to end;
* the telemetry layer's overhead — a run with the flight recorder
  disabled must stay within noise of the benchmark's own history
  (the span/monitor touch points are supposed to be free when off).
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.obs import Instruments, MonitorSet, SpanTracer
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.world import World
from repro.utils.tables import format_table

from _shared import RESULTS_DIR, emit


def bench_world_construction(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = benchmark(lambda: World(cfg))
    assert world.cfg.n_sensors == 500


def bench_energy_advance(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    rates = world._rates.copy()

    def advance():
        world.bank.drain_rates(rates, 1.0)

    benchmark(advance)
    assert np.all(world.bank.levels_j >= 0)


def bench_rate_recompute(benchmark):
    # Forces the full pass: with the incremental path on (the default),
    # repeated recomputes over unchanged state would collapse to a
    # diff-only no-op and this guard would silently stop measuring the
    # relay-accounting rebuild it exists to pin.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    benchmark(lambda: world.energy.recompute(force_full=True))
    assert world._rates.sum() > 0


def bench_rate_recompute_incremental(benchmark):
    # The steady-state hot path: one activation rotation dirties a few
    # sensors per cluster, then the incremental recompute re-prices just
    # those.  Rotation runs in setup so only the recompute is timed.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    energy = world.energy
    if not energy.incremental_enabled:
        pytest.skip("incremental recompute disabled (REPRO_INCREMENTAL=0)")

    def rotate(**_kwargs):
        energy.apply_handoffs(world.clusters.rotate())
        return (), {}

    benchmark.pedantic(energy.recompute, setup=rotate, rounds=50, iterations=1)
    assert world._rates.sum() > 0


def bench_small_run_end_to_end(benchmark):
    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    summary = benchmark.pedantic(lambda: run_simulation(cfg), rounds=3, iterations=1)
    assert summary.sim_time_s == pytest.approx(0.5 * DAY_S)


#: Allowed slowdown of the spans-disabled run against its own history.
#: Generous because shared CI runners are noisy; a true regression from
#: per-touch-point work shows up well above this.
_NULL_OVERHEAD_MAX = 3.0


def _best_of(fn, rounds=3):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_telemetry_overhead():
    """Guardrail: the flight recorder must be free when disabled.

    Times the same fixed-seed run twice — with every observability hook
    at its null default, and fully instrumented (instruments + spans +
    strict monitors) — asserts both produce bit-identical summaries,
    and records ``t_null_s`` / ``t_instrumented_s`` in benchmark
    history.  The null timing is then held against the median of prior
    history rows: if the spans-disabled path got ``_NULL_OVERHEAD_MAX``x
    slower, some touch point stopped being free.
    """
    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    run_simulation(cfg)  # warm imports and numpy caches off the clock

    t_null, plain = _best_of(lambda: run_simulation(cfg))

    def instrumented():
        mon = MonitorSet(instruments=Instruments(), spans=SpanTracer(),
                         strict=True)
        return World(cfg, instruments=mon.instruments, spans=mon.spans,
                     monitors=mon).run()

    t_instr, traced = _best_of(instrumented)

    # Telemetry must never touch the trajectory.
    assert traced.as_dict() == plain.as_dict()

    overhead = t_instr / t_null if t_null > 0 else 0.0
    table = format_table(
        ["leg", "seconds"],
        [
            ["null (spans disabled)", round(t_null, 4)],
            ["instrumented (spans+monitors)", round(t_instr, 4)],
            ["overhead ratio", round(overhead, 2)],
        ],
        title="Telemetry overhead (0.5-day small run, best of 3)",
    )
    prior = _prior_null_timings()
    emit("telemetry_overhead", table,
         extra={"t_null_s": t_null, "t_instrumented_s": t_instr,
                "overhead_ratio": overhead})
    if not prior:
        pytest.skip("no telemetry-overhead history yet; baseline recorded")
    baseline = sorted(prior)[len(prior) // 2]
    assert t_null <= baseline * _NULL_OVERHEAD_MAX, (
        f"spans-disabled run took {t_null:.4f}s vs historical median "
        f"{baseline:.4f}s (> {_NULL_OVERHEAD_MAX}x): the disabled "
        f"telemetry path is no longer free"
    )


def _prior_null_timings():
    """``t_null_s`` values from earlier benchmark history rows."""
    path = pathlib.Path(RESULTS_DIR) / "BENCH_telemetry_overhead.json"
    try:
        history = json.loads(path.read_text()).get("history", [])
    except (OSError, ValueError):
        return []
    return [row["t_null_s"] for row in history
            if isinstance(row.get("t_null_s"), (int, float))]
