"""Checkpoint capture/restore and deterministic time-travel replay.

This module owns the simulation-side schema of the flight recorder
(:mod:`repro.obs.blackbox`): what a full-state checkpoint contains, how
a fresh :class:`~repro.sim.world.World` is rewound onto one, and how a
postmortem bundle is re-executed and diffed against its recorded state
digests.

Checkpoint-restore contract
---------------------------

A checkpoint is only captured at a *safe point*: immediately after a
tick record, when the RV fleet is idle (no sortie legs or depot returns
in flight — those live as closures in the event heap and cannot be
serialized) and the event queue holds nothing but the three periodic
world events.  At such a point the entire dynamic state is:

* the canonical flat arrays (battery levels, request flags) — written
  back in place by :func:`repro.sim.serialization.restore_arrays`, the
  documented inverse of ``snapshot_arrays`` for those buffers;
* the cluster epoch (membership vector + rotation pointers), target
  process (positions, epoch, waypoints), ERC controller, request
  backlog, per-RV books, energy accounting accumulators, the RNG's
  ``bit_generator.state``, and the pending periodic events.

Everything else on the state is either derived deterministically from
the config (positions, topology, routing) and re-derived by building a
fresh ``World(config)``, or observability-only (metrics, instruments,
spans) and guaranteed never to touch the trajectory.

Replay determinism
------------------

``restore_world`` rebuilds a world from the same config — re-consuming
the construction RNG draws — then overwrites the RNG state, arrays,
components and event queue from the checkpoint.  From that point the
discrete-event engine is deterministic (time, priority, insertion
order), so re-execution reproduces the original run bit-for-bit; every
replayed record's per-field state digests must equal the recorded ones
on *either* engine, which makes ``repro replay`` double as a
bit-exactness auditor for the SoA/reference pair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..core.activation import FullTimeActivator, RoundRobinActivator
from ..core.clustering import Cluster, ClusterSet
from ..core.erc import AdaptiveEnergyRequestController, EnergyRequestController
from ..core.requests import RechargeRequest
from ..geometry.coverage import detection_matrix
from ..mobility.targets import TargetProcess
from ..mobility.vehicles import RVStats
from ..mobility.waypoint import RandomWaypointProcess
from ..obs.blackbox import (
    BlackBoxRecorder,
    PostmortemBundle,
    digest_rng,
    digest_state,
    load_bundle,
)
from ..obs.monitors import MonitorSet
from ..registry import ACTIVATORS
from ..utils.tables import format_table
from .components.state import PRIO_DISPATCH, PRIO_RELOCATE, PRIO_TICK
from .serialization import config_from_dict, restore_arrays, snapshot_arrays
from .soa import (
    SoAFullTimeActivator,
    SoARoundRobinActivator,
    engine_provenance,
    pack_clusters,
    wrap_activator,
)

__all__ = [
    "ReplayResult",
    "abort_record",
    "capture_checkpoint",
    "format_replay",
    "replay_bundle",
    "restore_world",
]

#: The three periodic world events — the only callbacks a checkpointable
#: queue may hold (RV sortie legs are lambdas and cannot be captured).
_PERIODIC_HANDLERS = {
    "_on_tick": PRIO_TICK,
    "_on_relocate": PRIO_RELOCATE,
    "_on_dispatch_round": PRIO_DISPATCH,
}

#: Component types whose internal state the checkpoint schema covers.
#: Plugins outside these fall back to genesis-only replay (the recorder
#: simply skips the checkpoint; records still flow).
_ERC_TYPES = (EnergyRequestController, AdaptiveEnergyRequestController)
_TARGET_TYPES = (TargetProcess, RandomWaypointProcess)
_ACTIVATOR_TYPES = (
    RoundRobinActivator,
    FullTimeActivator,
    SoARoundRobinActivator,
    SoAFullTimeActivator,
)


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------


def capture_checkpoint(world, seq: int) -> Optional[Dict[str, Any]]:
    """Capture a full-state checkpoint of ``world``, or None when the
    current point is not safe (fleet busy, non-periodic events queued,
    or a plugin component outside the checkpoint schema).

    ``seq`` is the flight-record sequence number the checkpoint follows:
    the captured state is exactly the state digested by that record.
    """
    s = world.state
    fleet = world.fleet
    if any(rv.busy for rv in fleet.rvs) or bool(np.any(fleet.returning)):
        return None
    pending = []
    for t, priority, cb in s.sim.pending_events():
        fn = getattr(cb, "__func__", None)
        if (
            fn is None
            or getattr(cb, "__self__", None) is not world
            or fn.__name__ not in _PERIODIC_HANDLERS
        ):
            return None
        pending.append({"name": fn.__name__, "time": float(t), "priority": int(priority)})
    erc = world.gate.erc
    if type(erc) not in _ERC_TYPES:
        return None
    if type(s.targets) not in _TARGET_TYPES:
        return None
    if type(s.activator) not in _ACTIVATOR_TYPES:
        return None

    backlog = list(s.requests)
    arrays: Dict[str, np.ndarray] = {
        "levels_j": s.bank.levels_j.copy(),
        "requested": s.requested.copy(),
        "membership": s.cluster_set.membership.copy(),
        "target_pos": s.targets.positions.copy(),
        "rv_pos": np.vstack([rv.position for rv in fleet.rvs])
        if fleet.rvs else np.empty((0, 2)),
        "rv_level_j": np.array([rv.battery.level_j for rv in fleet.rvs]),
        "rv_stats": np.array(
            [
                [
                    rv.stats.distance_m,
                    rv.stats.moving_energy_j,
                    rv.stats.delivered_energy_j,
                    rv.stats.nodes_recharged,
                    rv.stats.sorties,
                    rv.stats.depot_visits,
                ]
                for rv in fleet.rvs
            ],
            dtype=np.float64,
        ).reshape(len(fleet.rvs), 6),
        "backlog_nodes": np.array([r.node_id for r in backlog], dtype=np.int64),
        "backlog_demands": np.array([r.demand_j for r in backlog], dtype=np.float64),
        "backlog_clusters": np.array([r.cluster_id for r in backlog], dtype=np.int64),
        "backlog_release_s": np.array(
            [r.release_time_s for r in backlog], dtype=np.float64
        ),
    }
    if s.arrays is not None:
        arrays["ptr"] = s.arrays.ptr.copy()
    elif isinstance(s.activator, RoundRobinActivator):
        arrays["ptr"] = s.activator._ptr.copy()
    waypoints = getattr(s.targets, "_waypoints", None)
    if waypoints is not None:
        arrays["target_waypoints"] = waypoints.copy()

    erc_state: Dict[str, Any] = {"erp": float(erc.erp)}
    if isinstance(erc, AdaptiveEnergyRequestController):
        erc_state.update(
            adaptive=True,
            deaths_since_adjust=int(erc._deaths_since_adjust),
            last_adjust_s=float(erc._last_adjust_s),
            history=[[float(t), float(e)] for t, e in erc.history],
        )
    scalars = {
        "seq": int(seq),
        "t": float(s.now),
        "rng_state": s.rng.bit_generator.state,
        "events_fired": int(s.sim.events_fired),
        "pending": pending,
        "n_clusters": len(s.cluster_set.clusters),
        "target_epoch": int(s.targets.epoch),
        "erc": erc_state,
        "energy": {
            "last_t": float(world.energy._last_t),
            "breakdown_j": dict(world.energy.breakdown_j),
        },
    }
    return {"seq": int(seq), "t": float(s.now), "arrays": arrays, "scalars": scalars}


def abort_record(world, error: BaseException) -> Dict[str, Any]:
    """The final flight record appended at the point a run died: state
    and RNG digests taken where the exception was caught, so a replay
    that re-raises at the identical point produces identical digests."""
    s = world.state
    return {
        "seq": int(s.blackbox.seq) + 1,
        "kind": "abort",
        "t": float(s.now),
        "digests": digest_state(snapshot_arrays(s)),
        "rng": digest_rng(s.rng.bit_generator.state),
        "error": f"{type(error).__name__}: {error}",
    }


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------


def restore_world(
    config,
    checkpoint: Optional[Dict[str, Any]] = None,
    *,
    monitors=None,
    blackbox=None,
):
    """A :class:`~repro.sim.world.World` rewound onto ``checkpoint``.

    With ``checkpoint=None`` this is genesis: a fresh world at t=0
    (always a valid replay starting point).  Otherwise the fresh world's
    construction re-derives everything config-determined (deployment,
    topology, routing — consuming the same RNG draws the original run
    did), and the checkpoint then overwrites the dynamic state: RNG,
    canonical arrays, cluster epoch, targets, ERC, backlog, RVs, energy
    accumulators, and the event queue.

    Metrics and instruments start fresh — they never influence the
    trajectory, so replayed state digests are unaffected; only
    observability output (latencies, counters) differs from the
    original run's.
    """
    from .world import World

    world = World(config, monitors=monitors, blackbox=blackbox)
    if checkpoint is None:
        return world
    s = world.state
    arrays = checkpoint["arrays"]
    scalars = checkpoint["scalars"]

    s.rng.bit_generator.state = scalars["rng_state"]
    s.sim.reset(scalars["t"], events_fired=scalars["events_fired"])
    restore_arrays(s, {
        "levels_j": arrays["levels_j"],
        "requested": arrays["requested"],
        "time_s": scalars["t"],
    })

    # Targets first: the cluster epoch below is a function of them.
    s.targets.positions = np.array(arrays["target_pos"], dtype=np.float64)
    s.targets.epoch = int(scalars["target_epoch"])
    if "target_waypoints" in arrays and hasattr(s.targets, "_waypoints"):
        s.targets._waypoints = np.array(arrays["target_waypoints"], dtype=np.float64)

    # Cluster epoch from the STORED membership — deliberately not
    # re-clustered: the live clusters were formed over the sensors alive
    # at the last relocation, and deaths since then would change a fresh
    # clustering's answer.
    membership = np.asarray(arrays["membership"], dtype=np.int64)
    clusters = [
        Cluster(cid, np.flatnonzero(membership == cid))
        for cid in range(int(scalars["n_clusters"]))
    ]
    s.cluster_set = ClusterSet(clusters, config.n_sensors)
    det = detection_matrix(s.sensor_pos, s.targets.positions, config.sensing_range_m)
    s.coverable = det.any(axis=0)
    if s.arrays is not None:
        pack_clusters(s.cluster_set, s.arrays)
    activator = ACTIVATORS.build(config.activation, cluster_set=s.cluster_set)
    s.activator = wrap_activator(activator, s.arrays)
    if "ptr" in arrays:
        ptr = np.asarray(arrays["ptr"], dtype=np.int64)
        if s.arrays is not None:
            s.arrays.ptr[:] = ptr
        elif hasattr(s.activator, "_ptr"):
            s.activator._ptr[:] = ptr

    # Request backlog, in its recorded insertion order (scheduler input
    # order is part of the trajectory).
    s.requests.clear()
    for node, demand, cid, released in zip(
        arrays["backlog_nodes"],
        arrays["backlog_demands"],
        arrays["backlog_clusters"],
        arrays["backlog_release_s"],
    ):
        s.requests.add(RechargeRequest(
            node_id=int(node),
            position=s.sensor_pos[int(node)],
            demand_j=float(demand),
            cluster_id=int(cid),
            release_time_s=float(released),
        ))

    # The fleet is idle at every safe point: books and batteries are the
    # only per-RV state.
    for rv in world.fleet.rvs:
        i = rv.rv_id
        rv.position = np.array(arrays["rv_pos"][i], dtype=np.float64)
        rv.battery.level_j = float(arrays["rv_level_j"][i])
        row = arrays["rv_stats"][i]
        rv.stats = RVStats(
            distance_m=float(row[0]),
            moving_energy_j=float(row[1]),
            delivered_energy_j=float(row[2]),
            nodes_recharged=int(row[3]),
            sorties=int(row[4]),
            depot_visits=int(row[5]),
        )
        rv.busy = False
        rv.itinerary = []
        world.fleet._sync_rv(rv)
    world.fleet.returning[:] = False

    erc = world.gate.erc
    erc_state = scalars["erc"]
    erc.erp = float(erc_state["erp"])
    if isinstance(erc, AdaptiveEnergyRequestController) and erc_state.get("adaptive"):
        erc._deaths_since_adjust = int(erc_state["deaths_since_adjust"])
        erc._last_adjust_s = float(erc_state["last_adjust_s"])
        erc.history = [(float(t), float(e)) for t, e in erc_state["history"]]

    world.energy._last_t = float(scalars["energy"]["last_t"])
    world.energy.breakdown_j = {
        k: float(v) for k, v in scalars["energy"]["breakdown_j"].items()
    }
    # Re-price every sensor from the restored masks.  force_full is
    # bit-identical to the incremental path by contract, so the restored
    # rates match the original run's exactly.
    world.energy.recompute(force_full=True)

    # Rebuild the event queue in recorded firing order; (time, priority)
    # pairs are unique across the three periodics, so relative insertion
    # order is reproduced.
    handlers = {
        "_on_tick": world._on_tick,
        "_on_relocate": world._on_relocate,
        "_on_dispatch_round": world._on_dispatch_round,
    }
    for ev in scalars["pending"]:
        s.sim.schedule(ev["time"], handlers[ev["name"]], priority=ev["priority"])

    if blackbox is not None and getattr(blackbox, "enabled", False):
        blackbox.seq = int(scalars["seq"])
    world._record_metrics()
    return world


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of one bundle replay.

    ``ok`` is True when every compared record (state digests, RNG
    digest) matched bit-for-bit; ``divergences`` lists each mismatch as
    ``{"seq", "field", "expected", "got"}``.
    """

    bundle_path: Path
    engine: Dict[str, Any]
    start_seq: int
    target_seq: int
    compared: int = 0
    divergences: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None
    recorded_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.divergences


def _compare(
    expected: Dict[str, Any],
    got: Dict[str, Any],
    divergences: List[Dict[str, Any]],
) -> None:
    """Diff two records' digest dicts field by field.

    Only keys present on both sides are compared: a full per-field
    record against a combined-only one (they alternate on a fixed
    ``seq`` cadence) still checks the ``state`` digest, which covers
    every field.
    """
    seq = expected["seq"]
    exp_d = expected.get("digests", {})
    got_d = got.get("digests", {})
    for fieldname in sorted(set(exp_d) & set(got_d)):
        if exp_d.get(fieldname) != got_d.get(fieldname):
            divergences.append({
                "seq": seq,
                "field": fieldname,
                "expected": exp_d.get(fieldname),
                "got": got_d.get(fieldname),
            })
    if expected.get("rng") != got.get("rng"):
        divergences.append({
            "seq": seq,
            "field": "rng",
            "expected": expected.get("rng"),
            "got": got.get("rng"),
        })


def replay_bundle(
    bundle: Union[str, Path, PostmortemBundle],
    to_tick: Optional[int] = None,
    engine: Optional[str] = None,
) -> ReplayResult:
    """Restore a bundle's nearest checkpoint, re-execute to ``to_tick``
    (a record sequence number; the last recorded one by default), and
    diff every replayed record against the bundle.

    ``engine`` forces the tick engine: ``"soa"`` or ``"ref"``; the
    current ``REPRO_SOA`` setting otherwise.  If the bundle records an
    abort (monitor violation or crash), replaying to its sequence
    number re-executes into the failure and digests the state at the
    identical point — reproducing the incident bit-for-bit.
    """
    if not isinstance(bundle, PostmortemBundle):
        bundle = load_bundle(bundle)
    if bundle.config is None:
        raise ValueError(f"bundle {bundle.path} has no config.json; cannot replay")
    records = {int(r["seq"]): r for r in bundle.records}
    if not records:
        raise ValueError(f"bundle {bundle.path} has no flight records")
    target = int(to_tick) if to_tick is not None else max(records)

    # The newest checkpoint at or before the target; genesis otherwise.
    checkpoint = None
    for ck in bundle.checkpoints:
        if ck["seq"] <= target:
            checkpoint = ck
    start_seq = int(checkpoint["seq"]) if checkpoint is not None else 0

    config = config_from_dict(bundle.config)
    mon_cfg = bundle.manifest.get("monitors") or {}
    env_key, env_prior = "REPRO_SOA", os.environ.get("REPRO_SOA")
    if engine is not None:
        if engine not in ("soa", "ref"):
            raise ValueError(f"engine must be 'soa' or 'ref', got {engine!r}")
        os.environ[env_key] = "1" if engine == "soa" else "0"
    try:
        monitors = None
        if mon_cfg.get("strict"):
            # Arm the same tripwires the original run had — tolerances
            # from the bundle, not the current environment — so a
            # recorded violation re-fires at the identical point.
            monitors = MonitorSet(strict=True)
            if "energy_atol_j" in mon_cfg:
                monitors.ENERGY_ATOL_J = float(mon_cfg["energy_atol_j"])
            if "energy_rtol" in mon_cfg:
                monitors.ENERGY_RTOL = float(mon_cfg["energy_rtol"])
            if "plan_atol_j" in mon_cfg:
                monitors.PLAN_ATOL_J = float(mon_cfg["plan_atol_j"])
        recorder = BlackBoxRecorder(
            capacity=max(target - start_seq + 2, 8), checkpoint_every=0
        )
        world = restore_world(
            config, checkpoint, monitors=monitors, blackbox=recorder
        )
        result = ReplayResult(
            bundle_path=bundle.path,
            engine=engine_provenance(),
            start_seq=start_seq,
            target_seq=target,
            recorded_error=bundle.manifest.get("error"),
        )

        # The restored state must digest identically to the record the
        # checkpoint followed — divergence here means a restore bug, and
        # any drift further out would be unattributable.
        if start_seq in records:
            restored = {
                "seq": start_seq,
                "digests": digest_state(snapshot_arrays(world.state)),
                "rng": digest_rng(world.state.rng.bit_generator.state),
            }
            _compare(records[start_seq], restored, result.divergences)
            result.compared += 1

        replayed_abort = None
        horizon = config.sim_time_s
        while recorder.seq < target:
            try:
                if not world.state.sim.step():
                    break
            except Exception as exc:  # includes InvariantViolation
                replayed_abort = abort_record(world, exc)
                result.error = replayed_abort["error"]
                break
            if world.state.now > horizon:
                break

        replayed = {int(r["seq"]): r for r in recorder.rows()}
        if replayed_abort is not None:
            replayed[int(replayed_abort["seq"])] = replayed_abort
        for seq in sorted(records):
            if seq <= start_seq or seq > target:
                continue
            if seq not in replayed:
                result.divergences.append({
                    "seq": seq,
                    "field": "(record)",
                    "expected": records[seq].get("kind", "?"),
                    "got": "missing — replay never reached this event",
                })
                continue
            _compare(records[seq], replayed[seq], result.divergences)
            result.compared += 1
        return result
    finally:
        if engine is not None:
            if env_prior is None:
                os.environ.pop(env_key, None)
            else:
                os.environ[env_key] = env_prior


def format_replay(result: ReplayResult) -> str:
    """Render a :class:`ReplayResult` for the CLI."""
    engine = ", ".join(f"{k}={v}" for k, v in sorted(result.engine.items()))
    lines = [
        f"Replayed {result.bundle_path} from seq {result.start_seq} "
        f"to seq {result.target_seq} ({result.compared} record(s) compared)",
        f"engine: {engine}",
    ]
    if result.recorded_error:
        lines.append(f"recorded failure: {result.recorded_error}")
    if result.error:
        lines.append(f"replayed failure: {result.error}")
    blocks = ["\n".join(lines)]
    if result.divergences:
        rows = [
            [
                d["seq"],
                d["field"],
                (d["expected"] or "?")[:20],
                (d["got"] or "?")[:20],
            ]
            for d in result.divergences[:20]
        ]
        blocks.append(format_table(
            ["seq", "field", "expected", "got"],
            rows,
            title=f"STATE DIVERGENCE: {len(result.divergences)} mismatch(es)",
        ))
        blocks.append("replay DIVERGED from the recorded run")
    else:
        blocks.append(
            "replay is bit-identical to the recorded run "
            f"({result.compared} record(s), zero divergence)"
        )
    return "\n\n".join(blocks)
