"""Unit tests for repro.energy.recharge."""

import pytest

from repro.energy.recharge import ChargeModel


class TestChargeModel:
    def test_charge_time_linear(self):
        m = ChargeModel(power_w=2.0)
        assert m.charge_time_s(10.0) == pytest.approx(5.0)
        assert m.charge_time_s(0.0) == 0.0

    def test_rv_cost_with_perfect_efficiency(self):
        m = ChargeModel(power_w=1.0, efficiency=1.0)
        assert m.rv_energy_cost_j(42.0) == 42.0

    def test_rv_cost_with_losses(self):
        m = ChargeModel(power_w=1.0, efficiency=0.5)
        assert m.rv_energy_cost_j(10.0) == pytest.approx(20.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ChargeModel().charge_time_s(-1.0)
        with pytest.raises(ValueError):
            ChargeModel().rv_energy_cost_j(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ChargeModel(power_w=0.0)
        with pytest.raises(ValueError):
            ChargeModel(efficiency=0.0)
        with pytest.raises(ValueError):
            ChargeModel(efficiency=1.5)

    def test_default_refills_pack_in_two_hours(self):
        m = ChargeModel()
        assert m.charge_time_s(8100.0) == pytest.approx(7200.0)
