"""Hierarchical wall-clock spans: the run's flight recorder.

A *span* is one timed piece of work with a name, a parent, structured
attributes and point-in-time events — the per-decision analogue of the
aggregate :class:`~repro.obs.instruments.PhaseTimer`.  The simulation
opens spans around the run, every tick/dispatch/relocation event and
each component phase (``energy.advance``, ``scheduler.assign``, ...),
so an archived ``spans.jsonl`` replays *which tick, which cluster,
which scheduler decision* produced a result.

The tracer follows the same opt-in contract as
:class:`~repro.obs.instruments.NullInstruments`: the default
:class:`NullTracer` hands out one shared no-op span, so an
uninstrumented run pays an attribute load and an empty context manager
per touch point and nothing else.

Serialization round-trips exactly: :meth:`SpanTracer.to_jsonl_lines`
emits one JSON object per span in open order with a fixed key order,
:func:`load_spans` reads them back, and re-dumping loaded rows with
:func:`spans_to_jsonl_lines` reproduces the file byte for byte (JSON
floats are shortest-round-trip).  Attribute values are coerced to
JSON-native types at record time so live rows and reloaded rows are
interchangeable.

Process pools: a worker serializes its tracer with :meth:`to_rows`;
the parent calls :meth:`absorb` to splice the rows under its own sweep
span, renumbering ids deterministically (rows in open order, one new id
each), so a ``--jobs N`` trace reads exactly like the serial one.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "load_spans",
    "render_span_tree",
    "spans_to_jsonl_lines",
]

import time


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to a JSON-native equivalent.

    Live spans must serialize to exactly what a reload would produce,
    so tuples become lists and numpy scalars become python numbers at
    record time, not at dump time.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    tolist = getattr(value, "tolist", None)  # numpy scalars and arrays
    if tolist is not None:
        return _json_safe(tolist())
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return str(value)
    return str(value)


class Span:
    """One timed unit of work in the span tree.

    ``t0``/``t1`` are ``time.perf_counter`` readings (durations are
    meaningful; absolute values are process-relative).  ``attrs`` holds
    structured context (cluster id, RV id, profit delta, cache
    hit/miss); ``events`` are timestamped point occurrences inside the
    span (sortie assignments, invariant violations).
    """

    __slots__ = ("span_id", "parent_id", "name", "t0", "t1", "attrs", "events")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        t0: float = 0.0,
        t1: float = 0.0,
        attrs: Optional[Dict[str, Any]] = None,
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs if attrs is not None else {}
        self.events = events if events is not None else []

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) structured attributes."""
        for key, value in attrs.items():
            self.attrs[key] = _json_safe(value)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside this span."""
        record: Dict[str, Any] = {"name": name, "t": time.perf_counter()}
        for key, value in attrs.items():
            record[key] = _json_safe(value)
        self.events.append(record)

    def to_row(self) -> Dict[str, Any]:
        """The canonical JSON row (fixed key order for byte round-trips)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.span_id}, parent={self.parent_id}, {self.name!r}, "
            f"{self.duration_s:.6f}s)"
        )


class _SpanContext:
    """Context manager opening one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._span = tracer._open(name, attrs)

    def __enter__(self) -> Span:
        self._span.t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.t1 = time.perf_counter()
        self._tracer._close(self._span)


class SpanTracer:
    """Records a tree of spans (the live side of ``spans.jsonl``).

    ``span(name, **attrs)`` opens a child of the currently open span (a
    root when the stack is empty) and is used as a context manager;
    ``event(name, **attrs)`` attaches to the innermost open span and is
    dropped when none is open.  Spans are kept in open order with
    sequential ids starting at 1 — a deterministic layout given a
    deterministic call sequence, which the ``--jobs N`` merge relies on.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        if self._stack:
            self._stack[-1].event(name, **attrs)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name)
        if attrs:
            span.set(**attrs)
        self._next_id += 1
        self._spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        # Spans close strictly LIFO (they are `with` blocks).
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- merging (process-pool support) -------------------------------

    def absorb(
        self,
        rows: Iterable[Dict[str, Any]],
        parent: Optional[Span] = None,
        root_attrs: Optional[Dict[str, Any]] = None,
    ) -> List[Span]:
        """Splice serialized spans from another tracer under ``parent``.

        Ids are renumbered in row order (each row takes the next id of
        this tracer), internal parent links are remapped, and rows that
        were roots in the worker become children of ``parent`` (or stay
        roots).  ``root_attrs`` merges extra attributes into those
        re-rooted rows (the executor tags cells with their grid index
        and cache status this way).
        """
        mapping: Dict[int, int] = {}
        absorbed: List[Span] = []
        for row in rows:
            old_id = row["id"]
            new_id = self._next_id
            self._next_id += 1
            mapping[old_id] = new_id
            old_parent = row.get("parent")
            if old_parent is None:
                parent_id = parent.span_id if parent is not None else None
            else:
                parent_id = mapping.get(old_parent)
            span = Span(
                new_id,
                parent_id,
                row["name"],
                t0=row.get("t0", 0.0),
                t1=row.get("t1", 0.0),
                attrs=dict(row.get("attrs", {})),
                events=list(row.get("events", [])),
            )
            if old_parent is None and root_attrs:
                span.set(**root_attrs)
            self._spans.append(span)
            absorbed.append(span)
        return absorbed

    # -- serialization ------------------------------------------------

    def to_rows(self) -> List[Dict[str, Any]]:
        """All spans as JSON rows, in open order."""
        return [span.to_row() for span in self._spans]

    def to_jsonl_lines(self) -> List[str]:
        return spans_to_jsonl_lines(self.to_rows())

    def write_jsonl(self, path) -> None:
        with open(path, "w") as f:
            for line in self.to_jsonl_lines():
                f.write(line + "\n")

    def __len__(self) -> int:
        return len(self._spans)


def spans_to_jsonl_lines(rows: Iterable[Dict[str, Any]]) -> List[str]:
    """Serialize span rows exactly as the tracer would.

    ``json.dumps`` with default separators over rows whose key order is
    canonical — dumping loaded rows reproduces the original lines byte
    for byte.
    """
    return [json.dumps(row) for row in rows]


def load_spans(
    source: Union[str, "Any", Iterable[str]], strict: bool = True
) -> List[Dict[str, Any]]:
    """Read span rows back from a ``spans.jsonl`` path or lines.

    With ``strict=False`` malformed lines are skipped instead of
    raising — a crashed run's last line is often truncated mid-write,
    and reporting tools want the surviving rows, not an exception.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    elif isinstance(source, (str, bytes)) or hasattr(source, "open"):
        with open(source) as f:
            lines = f.read().splitlines()
    else:
        lines = list(source)
    rows = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except ValueError:
            if strict:
                raise
    return rows


class _NullSpan:
    """The shared do-nothing span (and its own context manager)."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    t0 = 0.0
    t1 = 0.0
    duration_s = 0.0
    attrs: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead fast path (mirrors ``NullInstruments``)."""

    enabled = False
    current = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def absorb(self, rows, parent=None, root_attrs=None) -> List[Span]:
        return []

    def to_rows(self) -> List[Dict[str, Any]]:
        return []

    def to_jsonl_lines(self) -> List[str]:
        return []

    def write_jsonl(self, path) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The shared default; simulation state falls back to it when no span
#: tracer is attached (one instance is enough — it holds no state).
NULL_TRACER = NullTracer()


def render_span_tree(rows: List[Dict[str, Any]], max_depth: int = 6) -> str:
    """An aggregated ASCII tree over serialized span rows.

    Sibling spans with the same name collapse into one line carrying
    their count and total duration (a run has hundreds of ``tick``
    spans; nobody wants hundreds of lines), and the collapse recurses:
    the children of every ``tick`` aggregate together one level down.
    Event totals are shown per group.  Durations are wall-clock sums,
    so a phase line's total matches the matching ``PhaseTimer`` within
    measurement tolerance.
    """
    if not rows:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for row in rows:
        children.setdefault(row.get("parent"), []).append(row)

    lines: List[str] = []

    def walk(group: List[Dict[str, Any]], prefix: str, depth: int) -> None:
        # Group this level's rows by name, preserving first appearance.
        by_name: Dict[str, List[Dict[str, Any]]] = {}
        for row in group:
            by_name.setdefault(row["name"], []).append(row)
        items = list(by_name.items())
        for i, (name, spans) in enumerate(items):
            last = i == len(items) - 1
            branch = "`- " if last else "|- "
            total = sum(r.get("t1", 0.0) - r.get("t0", 0.0) for r in spans)
            n_events = sum(len(r.get("events", [])) for r in spans)
            note = f"  [{n_events} event(s)]" if n_events else ""
            lines.append(
                f"{prefix}{branch}{name}  x{len(spans)}  {total:.4f}s{note}"
            )
            if depth + 1 >= max_depth:
                continue
            sub: List[Dict[str, Any]] = []
            for r in spans:
                sub.extend(children.get(r["id"], []))
            if sub:
                walk(sub, prefix + ("   " if last else "|  "), depth + 1)

    walk(children.get(None, []), "", 0)
    return "\n".join(lines)
