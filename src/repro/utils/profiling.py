"""Lightweight profiling helpers.

"No optimization without measuring" — these utilities make it trivial
to time library sections and to find a simulation's hot spots without
external tooling:

* :class:`Timer` — a context manager / decorator stopwatch;
* :func:`profile_call` — run any callable under :mod:`cProfile` and
  return the top functions by cumulative time as structured rows.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Timer", "profile_call"]


class Timer:
    """A stopwatch usable as a context manager.

    Example::

        with Timer("routing") as t:
            tree = RoutingTree(topology)
        print(t.elapsed_s)
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.elapsed_s: Optional[float] = None
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed_s = time.perf_counter() - self._start

    def __str__(self) -> str:
        if self.elapsed_s is None:
            return f"Timer({self.label!r}: running)"
        return f"Timer({self.label!r}: {self.elapsed_s:.4f}s)"


def profile_call(
    func: Callable[..., Any],
    *args: Any,
    top: int = 15,
    **kwargs: Any,
) -> Tuple[Any, List[Tuple[str, int, float, float]]]:
    """Profile one call and return its result plus the hottest functions.

    Args:
        func: the callable to run under :mod:`cProfile`.
        top: how many rows to return.

    Returns:
        ``(result, rows)`` where each row is
        ``(location, ncalls, tottime_s, cumtime_s)`` sorted by
        cumulative time, heaviest first.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    rows: List[Tuple[str, int, float, float]] = []
    for key, value in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, funcname = key
        cc, nc, tottime, cumtime, _ = value
        rows.append((f"{filename}:{lineno}({funcname})", int(nc), float(tottime), float(cumtime)))
    rows.sort(key=lambda r: r[3], reverse=True)
    return result, rows[:top]
