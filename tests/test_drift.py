"""Tests for repro.obs.drift and the `repro drift` CLI subcommand.

Covers metric loading from telemetry directories and benchmark history
files, the tolerance comparison, the report renderer, and the CLI's
0/1/2 exit-code contract.
"""

import json

import pytest

from repro.cli import main
from repro.obs import diff_metrics, format_drift, load_metrics
from repro.obs.drift import load_history_pair
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_with_telemetry

TINY = dict(
    n_sensors=30,
    n_targets=2,
    n_rvs=1,
    side_length_m=50.0,
    sim_time_s=0.05 * DAY_S,
    battery_capacity_j=400.0,
    initial_charge_range=(0.5, 0.8),
    dispatch_period_s=1800.0,
    seed=5,
)


def telemetry_dir(tmp_path, name, **overrides):
    out = tmp_path / name
    run_with_telemetry(SimulationConfig(**dict(TINY, **overrides)), out,
                       exporters=["jsonl"])
    return out


def make_bench(tmp_path, rows):
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps({"latest": rows[-1], "history": rows}))
    return path


class TestLoadMetrics:
    def test_telemetry_directory(self, tmp_path):
        out = telemetry_dir(tmp_path, "a")
        metrics = load_metrics(out)
        assert "summary.traveling_energy_j" in metrics
        assert any(k.startswith("counter.") for k in metrics)
        # Wall-clock timers are machine noise, never compared.
        assert not any("timer" in k or k.endswith("_s.total") for k in metrics)
        assert all(isinstance(v, float) for v in metrics.values())

    def test_bench_file_uses_latest_history_row(self, tmp_path):
        path = make_bench(tmp_path, [{"speedup": 2.0}, {"speedup": 3.0,
                                                        "label": "text"}])
        assert load_metrics(path) == {"bench.speedup": 3.0}

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_metrics(tmp_path / "nope")

    def test_dir_without_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            load_metrics(tmp_path)

    def test_history_pair(self, tmp_path):
        path = make_bench(tmp_path, [{"v": 1.0}, {"v": 2.0}, {"v": 3.0}])
        a, b = load_history_pair(path)
        assert a == {"bench.v": 2.0} and b == {"bench.v": 3.0}

    def test_history_pair_needs_two_rows(self, tmp_path):
        path = make_bench(tmp_path, [{"v": 1.0}])
        with pytest.raises(ValueError, match="need at least 2"):
            load_history_pair(path)


class TestDiffMetrics:
    def test_identical_is_clean(self):
        m = {"x": 1.0, "y": 2.5}
        rows = diff_metrics(m, dict(m))
        assert all(r["status"] == "ok" for r in rows)

    def test_tolerance_boundary(self):
        rows = diff_metrics({"x": 100.0}, {"x": 104.0}, rtol=0.05, atol=0.0)
        assert rows[0]["status"] == "ok"
        rows = diff_metrics({"x": 100.0}, {"x": 106.0}, rtol=0.05, atol=0.0)
        assert rows[0]["status"] == "drift"
        assert rows[0]["delta"] == pytest.approx(6.0)

    def test_one_sided_metrics_always_drift(self):
        rows = diff_metrics({"x": 1.0, "only_a": 2.0}, {"x": 1.0, "only_b": 3.0})
        by_metric = {r["metric"]: r["status"] for r in rows}
        assert by_metric == {"x": "ok", "only_a": "only_a", "only_b": "only_b"}

    def test_drifted_rows_sort_first(self):
        rows = diff_metrics({"a": 1.0, "b": 1.0}, {"a": 1.0, "b": 9.0})
        assert [r["metric"] for r in rows] == ["b", "a"]

    def test_ignore_patterns_drop_metrics(self):
        # One-sided-by-design metrics (the SoA alloc counter against a
        # reference-engine run) can be excluded from the comparison.
        a = {"x": 1.0, "counter.sim.soa.alloc": 15.0}
        b = {"x": 1.0}
        rows = diff_metrics(a, b, ignore=["counter.sim.soa.*"])
        assert [r["metric"] for r in rows] == ["x"]
        assert rows[0]["status"] == "ok"
        # A pattern that matches nothing changes nothing.
        rows = diff_metrics(a, b, ignore=["nomatch.*"])
        assert {r["metric"] for r in rows} == {"x", "counter.sim.soa.alloc"}

    def test_format_verdict(self):
        rows = diff_metrics({"x": 1.0}, {"x": 1.0})
        assert "no drift across 1 metric(s)" in format_drift(rows)
        rows = diff_metrics({"x": 1.0}, {"x": 9.0})
        text = format_drift(rows, label_a="left", label_b="right")
        assert "1 metric(s) drifted out of 1 compared" in text
        assert "left" in text and "right" in text


class TestDriftCli:
    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b")
        assert main(["drift", str(a), str(b)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_different_seeds_exit_one(self, tmp_path, capsys):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b", seed=99)
        assert main(["drift", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "drift" in out

    def test_missing_path_exit_two(self, tmp_path, capsys):
        assert main(["drift", str(tmp_path / "missing")]) == 2
        assert "drift:" in capsys.readouterr().err

    def test_single_bench_file_diffs_history(self, tmp_path, capsys):
        path = make_bench(tmp_path, [{"speedup": 2.0}, {"speedup": 2.01}])
        assert main(["drift", str(path)]) == 0
        path2 = make_bench(tmp_path, [{"speedup": 2.0}, {"speedup": 4.0}])
        assert main(["drift", str(path2)]) == 1
        out = capsys.readouterr().out
        assert "bench.speedup" in out

    def test_tolerance_flags(self, tmp_path):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b", seed=99)
        # An absurdly loose tolerance turns every delta into "ok".
        assert main(["drift", str(a), str(b), "--rtol", "1e9"]) == 0

    def test_all_flag_lists_ok_rows(self, tmp_path, capsys):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b")
        assert main(["drift", str(a), str(b), "--all"]) == 0
        out = capsys.readouterr().out
        assert "summary.traveling_energy_j" in out


class TestDriftIgnoreCli:
    """Exit-code semantics of ``repro drift --ignore GLOB``.

    The contract: 0 = nothing drifted among the *compared* metrics,
    1 = drift among the compared metrics, 2 = inputs unusable.
    ``--ignore`` narrows what is compared — it must be able to turn a
    1 into a 0, never into a 2.
    """

    def test_ignore_silences_matching_drift(self, tmp_path):
        # Different seeds drift in every summary.* metric; ignoring the
        # whole drifting families flips the verdict to clean.
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b", seed=99)
        assert main(["drift", str(a), str(b)]) == 1
        assert main([
            "drift", str(a), str(b),
            "--ignore", "summary.*", "--ignore", "counter.*",
            "--ignore", "histogram.*", "--ignore", "gauge.*",
        ]) == 0

    def test_ignore_matches_both_sides(self, tmp_path, capsys):
        # A glob drops one-sided metrics from BOTH archives: neither
        # only_a nor only_b may survive as a "missing" row.
        a = make_bench(tmp_path, [{"x": 1.0, "only_a": 2.0}])
        b_path = tmp_path / "BENCH_y.json"
        b_path.write_text(json.dumps(
            {"latest": {"x": 1.0, "only_b": 3.0},
             "history": [{"x": 1.0, "only_b": 3.0}]}
        ))
        assert main(["drift", str(a), str(b_path), "--ignore", "bench.only_*"]) == 0
        out = capsys.readouterr().out
        assert "only_a" not in out and "only_b" not in out

    def test_ignore_all_is_vacuously_clean(self, tmp_path, capsys):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b", seed=99)
        assert main(["drift", str(a), str(b), "--ignore", "*"]) == 0
        assert "0 metric(s)" in capsys.readouterr().out

    def test_ignore_none_keeps_drift_exit(self, tmp_path):
        a = telemetry_dir(tmp_path, "a")
        b = telemetry_dir(tmp_path, "b", seed=99)
        assert main(["drift", str(a), str(b), "--ignore", "nomatch.*"]) == 1

    def test_ignore_does_not_mask_io_errors(self, tmp_path, capsys):
        # Unusable inputs stay exit 2 even when everything is ignored.
        assert main(["drift", str(tmp_path / "missing"), "--ignore", "*"]) == 2
        assert "drift:" in capsys.readouterr().err
