"""Cross-run drift detection over archived telemetry and benchmarks.

``repro drift A B`` compares the *deterministic* metrics of two
archives — summary metrics, instrument counters and gauges from a
telemetry directory's ``manifest.json``, or the recorded speedups of a
``BENCH_*.json`` benchmark file — and reports every metric whose
relative/absolute delta exceeds the configured tolerances.  Wall-clock
phase timers are deliberately excluded: they are machine noise, not
drift.

``repro drift BENCH_x.json`` (one argument) diffs the file's last two
append-only history rows, so a perf regression shows up without
keeping two checkouts around.

Exit codes: 0 (no drift), 1 (drift detected), 2 (usage/IO error) —
scriptable in CI.
"""

from __future__ import annotations

import fnmatch
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..utils.tables import format_table
from .manifest import MANIFEST_FILENAME

__all__ = ["diff_metrics", "format_drift", "load_metrics", "load_history_pair"]


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    """Flatten nested dicts of numbers into dotted metric names."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)


def load_metrics(path: Union[str, Path]) -> Dict[str, float]:
    """Deterministic metrics from a telemetry dir or BENCH json file.

    * a directory: its ``manifest.json`` — ``summary.*`` metrics plus
      instrument ``counter.*`` and ``gauge.*`` values (timers and
      histogram timings are wall-clock noise and are skipped);
    * a ``BENCH_*.json`` file: the numeric fields of its latest
      ``history`` row (speedups, worker counts), prefixed ``bench.``.
    """
    p = Path(path)
    if p.is_dir():
        manifest_path = p / MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"no {MANIFEST_FILENAME} under {p} "
                f"(run `repro run --telemetry {p}` first)"
            )
        data = json.loads(manifest_path.read_text())
        out: Dict[str, float] = {}
        _flatten("summary", data.get("summary", {}), out)
        instruments = data.get("instruments", {})
        _flatten("counter", instruments.get("counters", {}), out)
        _flatten("gauge", instruments.get("gauges", {}), out)
        # Histogram value statistics are deterministic (counts of
        # observed Joules/stops), unlike timers.
        for name, summary in instruments.get("histograms", {}).items():
            _flatten(f"histogram.{name}", summary, out)
        return out
    if p.is_file():
        data = json.loads(p.read_text())
        history = data.get("history") or []
        row = history[-1] if history else data
        out = {}
        _flatten("bench", row, out)
        return out
    raise FileNotFoundError(f"{p} is neither a telemetry directory nor a file")


def load_history_pair(path: Union[str, Path]) -> Tuple[Dict[str, float], Dict[str, float]]:
    """The last two history rows of one ``BENCH_*.json``, flattened."""
    data = json.loads(Path(path).read_text())
    history = data.get("history") or []
    if len(history) < 2:
        raise ValueError(
            f"{path} has {len(history)} history row(s); need at least 2 to diff"
        )
    a: Dict[str, float] = {}
    b: Dict[str, float] = {}
    _flatten("bench", history[-2], a)
    _flatten("bench", history[-1], b)
    return a, b


def diff_metrics(
    a: Dict[str, float],
    b: Dict[str, float],
    rtol: float = 0.01,
    atol: float = 1e-9,
    ignore: Optional[List[str]] = None,
) -> List[Dict[str, Any]]:
    """Per-metric comparison rows, drifted metrics first.

    A metric drifts when ``|a - b| > atol + rtol * max(|a|, |b|)``;
    metrics present on only one side always count as drift.  Metrics
    matching any ``ignore`` fnmatch pattern are dropped before the
    comparison — for metrics that exist on one side by design, like
    the SoA engine's allocation counter when diffing against the
    reference engine.
    """
    rows: List[Dict[str, Any]] = []
    keys = sorted(set(a) | set(b))
    if ignore:
        keys = [
            k for k in keys
            if not any(fnmatch.fnmatch(k, pat) for pat in ignore)
        ]
    for key in keys:
        va = a.get(key)
        vb = b.get(key)
        if va is None or vb is None:
            rows.append({
                "metric": key, "a": va, "b": vb, "delta": None,
                "status": "only_a" if vb is None else "only_b",
            })
            continue
        delta = vb - va
        scale = max(abs(va), abs(vb))
        drifted = abs(delta) > atol + rtol * scale
        rows.append({
            "metric": key,
            "a": va,
            "b": vb,
            "delta": delta,
            "rel": (delta / scale) if scale > 0 else 0.0,
            "status": "drift" if drifted else "ok",
        })
    rows.sort(key=lambda r: (r["status"] == "ok", r["metric"]))
    return rows


def format_drift(
    rows: List[Dict[str, Any]],
    label_a: str = "A",
    label_b: str = "B",
    show_ok: bool = False,
    rtol: float = 0.01,
    atol: float = 1e-9,
) -> str:
    """Render :func:`diff_metrics` rows as a table plus a verdict line."""
    drifted = [r for r in rows if r["status"] != "ok"]
    shown = rows if show_ok else drifted
    blocks: List[str] = []
    if shown:
        table_rows = []
        for r in shown:
            table_rows.append([
                r["metric"],
                "-" if r["a"] is None else f"{r['a']:.6g}",
                "-" if r["b"] is None else f"{r['b']:.6g}",
                "-" if r.get("delta") is None else f"{r['delta']:+.6g}",
                r["status"],
            ])
        blocks.append(format_table(
            ["metric", label_a, label_b, "delta", "status"],
            table_rows,
            title=f"Drift report (rtol={rtol:g}, atol={atol:g})",
        ))
    verdict = (
        f"{len(drifted)} metric(s) drifted out of {len(rows)} compared"
        if drifted
        else f"no drift across {len(rows)} metric(s)"
    )
    blocks.append(verdict)
    return "\n\n".join(blocks)
