"""Smoke tests for the repository scripts (figure rendering)."""

import importlib.util
import json
import pathlib

import pytest

SCRIPTS = pathlib.Path(__file__).parent.parent / "scripts"


def load_script(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture
def fake_results(tmp_path):
    """A minimal results.json with the structure run_experiments emits."""
    erps = [0.0, 0.5, 1.0]
    metrics = [
        "traveling_energy_j",
        "avg_coverage_ratio",
        "avg_nonfunctional_fraction",
        "recharging_cost_m_per_sensor",
        "delivered_energy_j",
        "objective_j",
        "traveling_distance_m",
    ]
    sweep = {
        s: {m: [float(i + k) for i in range(3)] for m in metrics}
        for k, s in enumerate(("greedy", "partition", "combined"))
    }
    payload = {
        "fig5": {
            "erp": erps,
            "traveling_energy_mj": [3.0, 2.5, 2.0],
            "missing_rate_pct": [0.0, 1.0, 4.0],
        },
        "sweep": sweep,
        "fig4_mj": {
            "No ERC - Full time": {"greedy": 3.0, "partition": 2.9, "combined": 3.1},
            "No ERC - With RR": {"greedy": 2.5, "partition": 2.4, "combined": 2.6},
            "With ERC - Full time": {"greedy": 2.7, "partition": 2.6, "combined": 2.8},
            "With ERC - With RR": {"greedy": 2.2, "partition": 2.1, "combined": 2.3},
        },
    }
    path = tmp_path / "results.json"
    path.write_text(json.dumps(payload))
    return path


class TestRenderFigures:
    def test_renders_all_svgs(self, fake_results):
        mod = load_script("render_figures")
        rc = mod.main(str(fake_results))
        assert rc == 0
        out = fake_results.parent / "svg"
        names = {p.name for p in out.glob("*.svg")}
        assert "fig5_tradeoff.svg" in names
        assert "fig6a_traveling_energy.svg" in names
        assert "fig7b_objective.svg" in names
        assert "fig4_activity.svg" in names
        # Every SVG parses as XML.
        import xml.etree.ElementTree as ET

        for p in out.glob("*.svg"):
            ET.fromstring(p.read_text())

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        mod = load_script("render_figures")
        rc = mod.main(str(tmp_path / "nope.json"))
        assert rc == 1
