#!/usr/bin/env python
"""Quickstart: run one WRSN simulation and read the summary.

Builds a laptop-scale world (120 sensors, 5 targets, 2 RVs), runs two
simulated days with the paper's joint scheme (balanced clustering +
round-robin activation + ERC at ERP 0.6 + the Combined-Scheme
scheduler), and prints every reported metric.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, run_simulation


def main() -> None:
    cfg = SimulationConfig.small(
        scheduler="combined",
        activation="round_robin",
        erp=0.6,
        seed=7,
    )
    print(
        f"Simulating {cfg.n_sensors} sensors, {cfg.n_targets} targets, "
        f"{cfg.n_rvs} RVs on a {cfg.side_length_m:.0f} m field for "
        f"{cfg.sim_time_s / 86400:.1f} days..."
    )
    summary = run_simulation(cfg)

    print("\n--- results -------------------------------------------")
    print(f"RV traveling distance   : {summary.traveling_distance_m / 1000:.2f} km")
    print(f"RV traveling energy     : {summary.traveling_energy_j / 1000:.1f} kJ")
    print(f"energy recharged        : {summary.delivered_energy_j / 1000:.1f} kJ")
    print(f"objective (Eq. 2)       : {summary.objective_j / 1000:.1f} kJ")
    print(f"target coverage ratio   : {100 * summary.avg_coverage_ratio:.2f} %")
    print(f"target missing rate     : {100 * summary.missing_rate:.2f} %")
    print(f"nonfunctional sensors   : {100 * summary.avg_nonfunctional_fraction:.3f} %")
    print(f"recharging cost         : {summary.recharging_cost_m_per_sensor:.1f} m/sensor")
    print(f"recharges performed     : {summary.n_recharges}")
    print(f"mean request latency    : {summary.mean_request_latency_s / 3600:.2f} h")
    print(f"simulation events fired : {summary.events_fired}")


if __name__ == "__main__":
    main()
