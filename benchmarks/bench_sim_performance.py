"""Simulator performance microbenchmarks (regression guards).

Not a paper figure — these pin the cost of the hot paths so future
changes that regress the engine show up in benchmark history:

* building a 500-sensor world (deployment + topology + routing);
* one vectorized energy advance over the whole bank;
* one rate recomputation (activation + relay accounting);
* a full small simulation end to end;
* the telemetry layer's overhead — a run with the flight recorder
  disabled must stay within noise of the benchmark's own history
  (the span/monitor touch points are supposed to be free when off);
* the SoA tick engine's sensor-count scaling curve (``REPRO_SOA=1``
  vs the object-walking reference), appended to BENCH history so the
  speedup is measured, not asserted.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.obs import Instruments, MonitorSet, SpanTracer
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.world import World
from repro.utils.tables import format_table

from _shared import RESULTS_DIR, emit


def bench_world_construction(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = benchmark(lambda: World(cfg))
    assert world.cfg.n_sensors == 500


def bench_energy_advance(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    rates = world._rates.copy()

    def advance():
        world.bank.drain_rates(rates, 1.0)

    benchmark(advance)
    assert np.all(world.bank.levels_j >= 0)


def bench_rate_recompute(benchmark):
    # Forces the full pass: with the incremental path on (the default),
    # repeated recomputes over unchanged state would collapse to a
    # diff-only no-op and this guard would silently stop measuring the
    # relay-accounting rebuild it exists to pin.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    benchmark(lambda: world.energy.recompute(force_full=True))
    assert world._rates.sum() > 0


def bench_rate_recompute_incremental(benchmark):
    # The steady-state hot path: one activation rotation dirties a few
    # sensors per cluster, then the incremental recompute re-prices just
    # those.  Rotation runs in setup so only the recompute is timed.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    energy = world.energy
    if not energy.incremental_enabled:
        pytest.skip("incremental recompute disabled (REPRO_INCREMENTAL=0)")

    def rotate(**_kwargs):
        energy.apply_handoffs(world.clusters.rotate())
        return (), {}

    benchmark.pedantic(energy.recompute, setup=rotate, rounds=50, iterations=1)
    assert world._rates.sum() > 0


def bench_small_run_end_to_end(benchmark):
    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    summary = benchmark.pedantic(lambda: run_simulation(cfg), rounds=3, iterations=1)
    assert summary.sim_time_s == pytest.approx(0.5 * DAY_S)


#: Allowed slowdown of the spans-disabled run against its own history.
#: Generous because shared CI runners are noisy; a true regression from
#: per-touch-point work shows up well above this.
_NULL_OVERHEAD_MAX = 3.0


def _best_of(fn, rounds=3):
    best, result = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_telemetry_overhead():
    """Guardrail: the flight recorder must be free when disabled.

    Times the same fixed-seed run twice — with every observability hook
    at its null default, and fully instrumented (instruments + spans +
    strict monitors) — asserts both produce bit-identical summaries,
    and records ``t_null_s`` / ``t_instrumented_s`` in benchmark
    history.  The null timing is then held against the median of prior
    history rows: if the spans-disabled path got ``_NULL_OVERHEAD_MAX``x
    slower, some touch point stopped being free.
    """
    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    run_simulation(cfg)  # warm imports and numpy caches off the clock

    t_null, plain = _best_of(lambda: run_simulation(cfg))

    def instrumented():
        mon = MonitorSet(instruments=Instruments(), spans=SpanTracer(),
                         strict=True)
        return World(cfg, instruments=mon.instruments, spans=mon.spans,
                     monitors=mon).run()

    t_instr, traced = _best_of(instrumented)

    # Telemetry must never touch the trajectory.
    assert traced.as_dict() == plain.as_dict()

    overhead = t_instr / t_null if t_null > 0 else 0.0
    table = format_table(
        ["leg", "seconds"],
        [
            ["null (spans disabled)", round(t_null, 4)],
            ["instrumented (spans+monitors)", round(t_instr, 4)],
            ["overhead ratio", round(overhead, 2)],
        ],
        title="Telemetry overhead (0.5-day small run, best of 3)",
    )
    prior = _prior_null_timings()
    emit("telemetry_overhead", table,
         extra={"t_null_s": t_null, "t_instrumented_s": t_instr,
                "overhead_ratio": overhead})
    if not prior:
        pytest.skip("no telemetry-overhead history yet; baseline recorded")
    baseline = sorted(prior)[len(prior) // 2]
    assert t_null <= baseline * _NULL_OVERHEAD_MAX, (
        f"spans-disabled run took {t_null:.4f}s vs historical median "
        f"{baseline:.4f}s (> {_NULL_OVERHEAD_MAX}x): the disabled "
        f"telemetry path is no longer free"
    )


#: Allowed slowdown of a flight-recorded run over the plain run.  The
#: issue budget is 5%; shared runners are noisy, so the assertion gate
#: is looser and the measured ratio is recorded in history where drift
#: tracking can see a creep long before the hard gate trips.
_BLACKBOX_OVERHEAD_MAX = 1.5


def bench_blackbox_overhead():
    """The flight recorder: ~free when armed, exactly free when not.

    Times the same fixed-seed run three ways — null defaults, recorder
    armed (ring + per-event digests + periodic checkpoints), and
    recorder armed without checkpoints — asserts all three summaries
    are bit-identical (recording never touches the trajectory), and
    records the timings in benchmark history.  The armed run is held
    under ``_BLACKBOX_OVERHEAD_MAX``x the null run.
    """
    from repro.obs import BlackBoxRecorder

    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    run_simulation(cfg)  # warm imports and numpy caches off the clock

    t_null, plain = _best_of(lambda: run_simulation(cfg))

    def recorded(checkpoint_every):
        bb = BlackBoxRecorder(checkpoint_every=checkpoint_every)
        return World(cfg, blackbox=bb).run()

    t_armed, flown = _best_of(lambda: recorded(64))
    t_nockpt, flown2 = _best_of(lambda: recorded(0))

    assert flown.as_dict() == plain.as_dict()
    assert flown2.as_dict() == plain.as_dict()

    ratio = t_armed / t_null if t_null > 0 else 0.0
    table = format_table(
        ["leg", "seconds"],
        [
            ["null (recorder disabled)", round(t_null, 4)],
            ["armed (ring + checkpoints)", round(t_armed, 4)],
            ["armed (no checkpoints)", round(t_nockpt, 4)],
            ["overhead ratio", round(ratio, 2)],
        ],
        title="Flight-recorder overhead (0.5-day small run, best of 3)",
    )
    emit("blackbox_overhead", table,
         extra={"t_null_s": t_null, "t_armed_s": t_armed,
                "t_no_checkpoint_s": t_nockpt, "overhead_ratio": ratio})
    assert ratio <= _BLACKBOX_OVERHEAD_MAX, (
        f"flight-recorded run took {ratio:.2f}x the plain run "
        f"(> {_BLACKBOX_OVERHEAD_MAX}x): per-event digesting got too "
        f"expensive for an always-on recorder"
    )


#: Allowed slowdown from arming the live plane — bus absorbing per-run
#: deltas, HTTP endpoint up, and a scraper polling ``/metrics``
#: throughout — over the *instrumented* run it piggybacks on.  The
#: plane lives on daemon threads off the simulation path, so its own
#: cost must stay within noise.
_LIVE_OVERHEAD_MAX = 1.15

#: How often the bench scraper polls ``/metrics``.  Real scrapers run
#: at ~1 Hz; this is far more aggressive, but still paced — a tight
#: busy-loop would measure GIL contention with the scraper, not the
#: plane's cost on the simulation path.
_LIVE_SCRAPE_INTERVAL_S = 0.02


def bench_live_plane_overhead():
    """The live telemetry plane: near-free when armed, free when not.

    Times the same fixed-seed run three ways — null defaults,
    instrumented (the substrate the plane streams), and with the full
    live plane armed on top (delta absorbed into a
    :class:`MetricsBus`, :class:`LiveServer` bound, and a scraper
    thread polling ``/metrics`` for the whole run) — asserts all three
    summaries are bit-identical, and holds the armed run under
    ``_LIVE_OVERHEAD_MAX``x the instrumented run.
    """
    import threading
    import urllib.request

    from repro.obs.live import LiveServer, MetricsBus

    # Long enough that per-run fixed costs (one snapshot + absorb)
    # amortize and several scrapes land inside every timed round.
    cfg = SimulationConfig.small(sim_time_s=4 * DAY_S, seed=1)
    run_simulation(cfg)  # warm imports and numpy caches off the clock

    t_null, plain = _best_of(lambda: run_simulation(cfg))

    def instrumented():
        return World(cfg, instruments=Instruments()).run()

    t_instr, booked = _best_of(instrumented)

    bus = MetricsBus()
    scrapes = [0]

    def live_armed():
        obs = Instruments()
        summary = World(cfg, instruments=obs).run()
        bus.absorb(obs.snapshot(), 0)
        return summary

    with LiveServer(bus, port=0) as live:
        stop = threading.Event()

        def _scraper():
            while not stop.wait(_LIVE_SCRAPE_INTERVAL_S):
                with urllib.request.urlopen(live.url + "/metrics") as resp:
                    resp.read()
                scrapes[0] += 1

        scraper = threading.Thread(target=_scraper, daemon=True)
        scraper.start()
        try:
            t_live, watched = _best_of(live_armed)
        finally:
            stop.set()
            scraper.join(timeout=5)

    assert booked.as_dict() == plain.as_dict()
    assert watched.as_dict() == plain.as_dict()
    assert scrapes[0] > 0, "scraper never completed a /metrics poll"

    ratio = t_live / t_instr if t_instr > 0 else 0.0
    table = format_table(
        ["leg", "seconds"],
        [
            ["null (plane off)", round(t_null, 4)],
            ["instrumented (no plane)", round(t_instr, 4)],
            ["armed (bus + endpoint + scraper)", round(t_live, 4)],
            ["scrapes completed", scrapes[0]],
            ["overhead ratio (armed/instrumented)", round(ratio, 2)],
        ],
        title="Live-plane overhead (4-day small run, best of 3)",
    )
    emit("live_plane_overhead", table,
         extra={"t_null_s": t_null, "t_instrumented_s": t_instr,
                "t_live_s": t_live, "scrapes": scrapes[0],
                "overhead_ratio": ratio})
    assert ratio <= _LIVE_OVERHEAD_MAX, (
        f"live-plane-armed run took {ratio:.2f}x the instrumented run "
        f"(> {_LIVE_OVERHEAD_MAX}x): the scrape path is leaking into "
        f"the simulation loop"
    )


def _prior_null_timings():
    """``t_null_s`` values from earlier benchmark history rows."""
    path = pathlib.Path(RESULTS_DIR) / "BENCH_telemetry_overhead.json"
    try:
        history = json.loads(path.read_text()).get("history", [])
    except (OSError, ValueError):
        return []
    return [row["t_null_s"] for row in history
            if isinstance(row.get("t_null_s"), (int, float))]


#: Sensor populations per experiment scale for the SoA scaling curve.
_SOA_SCALING_COUNTS = {
    "smoke": [100, 1000],
    "bench": [100, 1000, 10000],
    "paper": [100, 1000, 10000, 50000],
}

#: Ticks timed per (population, engine) cell.
_SOA_TICKS = 60


def _soa_scaling_config(n_sensors: int) -> SimulationConfig:
    """A tick-only workload at constant sensor density.

    Dispatch and relocation periods sit beyond the measured horizon, so
    the only events firing are ticks — the loop the SoA engine
    vectorizes (battery advance, rotation, rate recompute, ERC gate).
    The field side grows as ``sqrt(n)`` to keep per-area density (and
    hence cluster sizes and relay depth) comparable across populations.
    """
    horizon = (_SOA_TICKS + 1) * 60.0
    return SimulationConfig(
        n_sensors=n_sensors,
        n_targets=max(4, n_sensors // 25),
        n_rvs=2,
        side_length_m=80.0 * (n_sensors / 50.0) ** 0.5,
        # ~10 expected neighbors per disk: comfortably above the
        # percolation threshold, so the multi-hop tree stays connected
        # (and relay repricing stays a real workload) at every n.
        comm_range_m=20.0,
        sensing_range_m=10.0,
        sim_time_s=horizon,
        tick_s=60.0,
        dispatch_period_s=10 * horizon,
        target_period_s=10 * horizon,
        battery_capacity_j=8100.0,
        initial_charge_range=(0.55, 0.9),
        seed=11,
    )


def _soa_tick_loop_time(n_sensors: int, soa: str, rounds: int = 2) -> float:
    """Best-of-``rounds`` wall seconds for ``_SOA_TICKS`` ticks.

    World construction (deployment, topology, routing) happens off the
    clock — only the event loop over the ticks is timed.
    """
    old = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = soa
    best = float("inf")
    try:
        for _ in range(rounds):
            cfg = _soa_scaling_config(n_sensors)
            world = World(cfg)
            world.sim.run_until(60.0)  # warm-up tick off the clock
            t0 = time.perf_counter()
            world.sim.run_until(cfg.sim_time_s)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        if old is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = old


def bench_soa_scaling():
    """Sensor-count scaling of the tick loop: SoA vs reference engine.

    Records ``t_ref_<n>_s`` / ``t_soa_<n>_s`` / ``speedup_<n>x`` per
    population in BENCH history, and asserts the SoA engine actually
    wins at every measured population of 1k sensors or more (the
    perf-smoke gate CI runs under ``REPRO_SCALE=smoke``).
    """
    scale = os.environ.get("REPRO_SCALE", "bench")
    counts = _SOA_SCALING_COUNTS.get(scale, _SOA_SCALING_COUNTS["bench"])
    rows, extra = [], {}
    for n in counts:
        t_ref = _soa_tick_loop_time(n, "0")
        t_soa = _soa_tick_loop_time(n, "1")
        speedup = t_ref / t_soa if t_soa > 0 else float("inf")
        rows.append([n, round(t_ref, 4), round(t_soa, 4), round(speedup, 2)])
        extra[f"t_ref_{n}_s"] = t_ref
        extra[f"t_soa_{n}_s"] = t_soa
        extra[f"speedup_{n}x"] = speedup
    table = format_table(
        ["sensors", "reference s", "SoA s", "speedup x"],
        rows,
        title=f"SoA tick-engine scaling ({_SOA_TICKS} ticks, scale={scale})",
    )
    emit("soa_scaling", table, extra=extra)
    slow = {
        n: extra[f"speedup_{n}x"]
        for n in counts
        if n >= 1000 and extra[f"speedup_{n}x"] <= 1.0
    }
    assert not slow, (
        f"SoA tick engine did not beat the reference at {slow} "
        f"(speedup <= 1x at >= 1k sensors)"
    )
