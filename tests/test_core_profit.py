"""Unit tests for the recharge-profit objective (Eq. (2))."""

import numpy as np
import pytest

from repro.core.profit import (
    insertion_profit_delta,
    node_profits,
    route_profit,
    route_travel_cost,
    total_objective,
)


class TestNodeProfits:
    def test_formula(self):
        profits = node_profits(
            demands=np.array([100.0, 50.0]),
            positions=np.array([[10.0, 0.0], [0.0, 5.0]]),
            rv_position=np.array([0.0, 0.0]),
            em_j_per_m=2.0,
        )
        assert profits.tolist() == [100.0 - 20.0, 50.0 - 10.0]

    def test_can_be_negative(self):
        p = node_profits(np.array([1.0]), np.array([[100.0, 0.0]]), [0, 0], 5.6)
        assert p[0] < 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            node_profits(np.array([1.0, 2.0]), np.array([[0.0, 0.0]]), [0, 0], 1.0)

    def test_negative_em_rejected(self):
        with pytest.raises(ValueError):
            node_profits(np.array([1.0]), np.array([[0.0, 0.0]]), [0, 0], -1.0)


class TestRouteProfit:
    def test_open_route(self):
        demands = np.array([10.0, 20.0])
        positions = np.array([[1.0, 0.0], [2.0, 0.0]])
        p = route_profit(demands, positions, [0, 1], start=[0.0, 0.0], em_j_per_m=1.0)
        assert p == pytest.approx(30.0 - 2.0)

    def test_empty_route(self):
        assert route_profit(np.array([]), np.empty((0, 2)), [], [0, 0], 1.0) == 0.0

    def test_travel_cost(self):
        assert route_travel_cost(np.array([[0, 0], [3, 4]]), 2.0) == pytest.approx(10.0)

    def test_total_objective_sums(self):
        assert total_objective([1.0, 2.0, -0.5]) == pytest.approx(2.5)


class TestInsertionDelta:
    def test_on_path_insertion_free(self):
        # Inserting a point that lies on the segment adds no detour.
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        d = insertion_profit_delta(route, 0, [5.0, 0.0], 7.0, em_j_per_m=1.0)
        assert d == pytest.approx(7.0)

    def test_detour_charged(self):
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        # Point at (5, 5): detour = 2*sqrt(50) - 10.
        detour = 2 * np.hypot(5, 5) - 10
        d = insertion_profit_delta(route, 0, [5.0, 5.0], 7.0, em_j_per_m=2.0)
        assert d == pytest.approx(7.0 - 2.0 * detour)

    def test_invalid_position(self):
        route = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            insertion_profit_delta(route, 1, [0, 0], 1.0, 1.0)
        with pytest.raises(ValueError):
            insertion_profit_delta(route, -1, [0, 0], 1.0, 1.0)
