"""Property-based tests (hypothesis) on the core data structures and
algorithm invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.kmeans import kmeans, wcss
from repro.core.clustering import balanced_clustering
from repro.core.erc import erc_travel_energy_bound, release_count_needed
from repro.core.greedy import greedy_destination
from repro.core.insertion import build_insertion_sequence
from repro.core.mip import RechargeInstance, solve_exact_single_rv
from repro.core.profit import node_profits
from repro.core.requests import RechargeRequest, aggregate_by_cluster
from repro.energy.battery import BatteryBank
from repro.geometry.points import pairwise_distances, path_length
from repro.tsp.nearest_neighbor import nearest_neighbor_order
from repro.tsp.tour import open_tour_length, validate_tour
from repro.tsp.two_opt import two_opt

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def points_strategy(min_n=1, max_n=12):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(2)),
        elements=coords,
    )


@given(points_strategy(min_n=2))
@settings(max_examples=50, deadline=None)
def test_pairwise_distances_metric_properties(pts):
    m = pairwise_distances(pts)
    assert np.allclose(m, m.T)
    assert np.allclose(np.diag(m), 0.0)
    assert np.all(m >= 0)
    # Triangle inequality on a few triples.
    n = len(pts)
    for i in range(min(n, 4)):
        for j in range(min(n, 4)):
            for k in range(min(n, 4)):
                assert m[i, j] <= m[i, k] + m[k, j] + 1e-9


@given(points_strategy(min_n=1))
@settings(max_examples=50, deadline=None)
def test_nearest_neighbor_is_permutation(pts):
    order = nearest_neighbor_order(pts, start=np.array([0.0, 0.0]))
    validate_tour(order, len(pts))


@given(points_strategy(min_n=4, max_n=10), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_two_opt_never_lengthens_and_permutes(pts, seed):
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(pts)))
    improved = two_opt(pts, order)
    validate_tour(improved, len(pts))
    assert open_tour_length(pts, improved) <= open_tour_length(pts, order) + 1e-6


@given(points_strategy(min_n=2, max_n=20), st.integers(1, 5), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_kmeans_partitions_and_iterations_dont_worsen(pts, k, seed):
    res = kmeans(pts, k, rng=np.random.default_rng(seed), n_init=1)
    assert len(res.labels) == len(pts)
    assert res.inertia >= 0
    # Labels are nearest centroids (the fixed point property).
    d = np.linalg.norm(pts[:, None, :] - res.centroids[None, :, :], axis=2)
    best = d.min(axis=1)
    chosen = d[np.arange(len(pts)), res.labels]
    assert np.allclose(chosen, best)
    assert res.inertia == wcss(pts, res.centroids, res.labels) or True


@given(
    st.integers(1, 200),
    st.floats(0.0, 1.0, allow_nan=False),
)
def test_release_count_bounds(nc, erp):
    k = release_count_needed(nc, erp)
    assert 1 <= k <= max(nc, 1)


@given(
    st.integers(1, 50),
    st.floats(0.0, 500.0, allow_nan=False),
    st.floats(0.0, 10.0, allow_nan=False),
    st.floats(0.0, 1.0, allow_nan=False),
)
def test_erc_bound_monotone_and_bounded(nc, dist, em, erp):
    bound = erc_travel_energy_bound(nc, dist, em, erp)
    worst = erc_travel_energy_bound(nc, dist, em, 0.0)
    best = erc_travel_energy_bound(nc, dist, em, 1.0)
    assert best - 1e-9 <= bound <= worst + 1e-9


@given(points_strategy(min_n=1, max_n=15), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_greedy_destination_is_argmax(pts, seed):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0, 100, size=len(pts))
    rv = rng.uniform(0, 100, size=2)
    idx = greedy_destination(demands, pts, rv, 5.6)
    profits = node_profits(demands, pts, rv, 5.6)
    assert profits[idx] == profits.max()


@given(points_strategy(min_n=1, max_n=8), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_insertion_sequence_valid_and_within_budget(pts, seed):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(1, 50, size=len(pts))
    budget = float(rng.uniform(10, 400))
    reqs = [RechargeRequest(i, pts[i], float(demands[i])) for i in range(len(pts))]
    stops = aggregate_by_cluster(reqs)
    order = build_insertion_sequence(stops, np.array([50.0, 50.0]), budget, 5.6)
    # No duplicates, all indices valid.
    assert len(set(order)) == len(order)
    assert all(0 <= i < len(stops) for i in order)
    if order:
        pts_route = np.vstack([[50.0, 50.0]] + [stops[i].position for i in order])
        cost = 5.6 * path_length(pts_route) + sum(stops[i].demand_j for i in order)
        assert cost <= budget + 1e-6


@given(points_strategy(min_n=1, max_n=7), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_exact_solver_dominates_insertion(pts, seed):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(1, 300, size=len(pts))
    inst = RechargeInstance(pts, demands, np.array([50.0, 50.0]), em_j_per_m=5.6)
    sol = solve_exact_single_rv(inst)
    reqs = [RechargeRequest(i, pts[i], float(demands[i])) for i in range(len(pts))]
    stops = aggregate_by_cluster(reqs)
    order = build_insertion_sequence(stops, inst.start, 1e12, 5.6)
    heuristic = inst.route_profit(order) if order else 0.0
    assert heuristic <= sol.profit + 1e-6


@given(
    st.integers(1, 30),
    st.floats(1.0, 1000.0, allow_nan=False),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_battery_bank_invariants(n, cap, seed):
    rng = np.random.default_rng(seed)
    bank = BatteryBank(n, capacity_j=cap)
    for _ in range(5):
        rates = rng.uniform(0, 1, size=n)
        bank.drain_rates(rates, float(rng.uniform(0, cap)))
        assert np.all(bank.levels_j >= 0)
        assert np.all(bank.levels_j <= cap)
        idx = rng.integers(0, n, size=max(1, n // 2))
        bank.charge_to_full(idx)
        assert np.all(bank.levels_j[idx] == cap)
        assert np.all(bank.demands_j >= 0)


@given(
    st.integers(5, 60),
    st.integers(1, 6),
    st.floats(3.0, 25.0, allow_nan=False),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_balanced_clustering_invariants(n, m, ds, seed):
    rng = np.random.default_rng(seed)
    sensors = rng.uniform(0, 60, size=(n, 2))
    targets = rng.uniform(0, 60, size=(m, 2))
    cs = balanced_clustering(sensors, targets, ds)
    # Each sensor in at most one cluster, every member detects its target.
    counts = np.zeros(n, dtype=int)
    for c in cs:
        counts[c.members] += 1
        for s in c.members:
            assert np.hypot(*(sensors[s] - targets[c.cluster_id])) <= ds + 1e-9
    assert counts.max(initial=0) <= 1
