"""Vectorized planar-geometry primitives.

All positions in this library are ``float64`` arrays of shape ``(n, 2)``
holding ``(x, y)`` coordinates in meters.  These helpers are the single
place where distance math lives so that every consumer (routing, the
schedulers, the simulator) agrees on the metric and benefits from the
same vectorization.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "as_points",
    "distance",
    "distances_from",
    "pairwise_distances",
    "pairs_within",
    "neighbors_within",
    "kdtree_for",
    "path_length",
    "nearest_index",
]


def as_points(pts: np.ndarray) -> np.ndarray:
    """Validate and canonicalize an ``(n, 2)`` float point array.

    Accepts anything :func:`numpy.asarray` accepts; a single point may be
    given as a flat pair and is promoted to shape ``(1, 2)``.

    Raises:
        ValueError: if the input cannot be interpreted as 2-D points or
            contains non-finite coordinates.
    """
    arr = np.asarray(pts, dtype=np.float64)
    if arr.ndim == 1:
        if arr.shape[0] != 2:
            raise ValueError(f"a single point must have 2 coordinates, got {arr.shape[0]}")
        arr = arr.reshape(1, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected shape (n, 2), got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("point coordinates must be finite")
    return arr


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two single points."""
    a = np.asarray(a, dtype=np.float64).reshape(2)
    b = np.asarray(b, dtype=np.float64).reshape(2)
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def distances_from(origin: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Distances from one ``origin`` point to every row of ``pts``.

    Returns a 1-D array of length ``len(pts)``.
    """
    pts = as_points(pts)
    origin = np.asarray(origin, dtype=np.float64).reshape(2)
    d = pts - origin
    return np.hypot(d[:, 0], d[:, 1])


def pairwise_distances(a: np.ndarray, b: Optional[np.ndarray] = None) -> np.ndarray:
    """Full distance matrix between point sets ``a`` and ``b``.

    With ``b=None`` computes the symmetric self-distance matrix of ``a``.
    Uses broadcasting rather than ``scipy.spatial.distance.cdist`` so the
    function stays allocation-predictable for the small matrices the
    schedulers build (tens to hundreds of points).
    """
    a = as_points(a)
    b = a if b is None else as_points(b)
    diff = a[:, None, :] - b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


# k-d trees keyed on the identity of the (already canonical) position
# array.  Consumers in this codebase treat position arrays as immutable
# — relocation rebinds a fresh array rather than writing in place — so
# the same array object always describes the same point set.  The LRU
# cap bounds memory (the tree itself references the data, keeping the
# array alive while cached); the weakref identity check guards against
# id() reuse after an eviction, so a stale address can never hit.
_TREE_CACHE: "OrderedDict[int, Tuple[weakref.ref, cKDTree]]" = OrderedDict()
_TREE_CACHE_MAX = 64


def kdtree_for(pts: np.ndarray) -> cKDTree:
    """A :class:`cKDTree` over ``pts``, cached on array identity.

    Passing the *same array object* again returns the same tree without
    rebuilding it — coverage, clustering and topology construction all
    query the identical sensor-position array many times per run.  The
    caller must not mutate ``pts`` in place after the first call (no
    consumer in this library does; positions are rebound, not edited).
    Arrays that fail :func:`as_points` canonicalization are still
    handled, but each call builds a fresh tree for the canonical copy.
    """
    pts = as_points(pts)
    key = id(pts)
    hit = _TREE_CACHE.get(key)
    if hit is not None and hit[0]() is pts:
        _TREE_CACHE.move_to_end(key)
        return hit[1]
    tree = cKDTree(pts)

    # The cache dict is bound as a default argument: at interpreter
    # shutdown module globals are cleared before the last weakref
    # callbacks fire, so a global lookup here would hit ``None``.
    def _evict(
        _ref: weakref.ref, _key: int = key, _cache: OrderedDict = _TREE_CACHE
    ) -> None:
        _cache.pop(_key, None)

    _TREE_CACHE[key] = (weakref.ref(pts, _evict), tree)
    _TREE_CACHE.move_to_end(key)
    while len(_TREE_CACHE) > _TREE_CACHE_MAX:
        _TREE_CACHE.popitem(last=False)
    return tree


def pairs_within(pts: np.ndarray, radius: float) -> np.ndarray:
    """All index pairs ``(i, j), i < j`` with ``dist <= radius``.

    Backed by a cached k-d tree (:func:`kdtree_for`), so building a
    unit-disk communication graph is ``O(n log n + k)`` instead of the
    naive ``O(n^2)`` and repeated queries over the same point array skip
    the tree build entirely.  Returns an ``(k, 2)`` int array (possibly
    empty).
    """
    pts = as_points(pts)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if len(pts) < 2:
        return np.empty((0, 2), dtype=np.intp)
    tree = kdtree_for(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    return pairs.astype(np.intp, copy=False)


def neighbors_within(centers: np.ndarray, pts: np.ndarray, radius: float) -> list:
    """For each center, the indices of ``pts`` within ``radius``.

    Returns a list (one entry per center) of sorted int arrays.  This is
    the primitive behind "which sensors can detect target t".  The k-d
    tree over ``pts`` comes from the identity cache (:func:`kdtree_for`).
    """
    centers = as_points(centers)
    pts = as_points(pts)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if len(pts) == 0:
        return [np.empty(0, dtype=np.intp) for _ in range(len(centers))]
    tree = kdtree_for(pts)
    hits = tree.query_ball_point(centers, r=radius)
    return [np.asarray(sorted(h), dtype=np.intp) for h in hits]


def path_length(pts: np.ndarray) -> float:
    """Total polyline length visiting the rows of ``pts`` in order."""
    pts = as_points(pts)
    if len(pts) < 2:
        return 0.0
    seg = np.diff(pts, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


def nearest_index(origin: np.ndarray, pts: np.ndarray) -> int:
    """Index of the row of ``pts`` closest to ``origin``.

    Ties resolve to the lowest index (``numpy.argmin`` semantics), which
    keeps every consumer deterministic.
    """
    d = distances_from(origin, pts)
    if d.size == 0:
        raise ValueError("cannot take nearest of an empty point set")
    return int(np.argmin(d))
