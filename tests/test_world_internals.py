"""White-box tests of the simulation world's internal machinery."""

import numpy as np

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


def make_world(**overrides):
    defaults = dict(
        n_sensors=30,
        n_targets=2,
        n_rvs=1,
        side_length_m=50.0,
        sensing_range_m=12.0,
        sim_time_s=1 * DAY_S,
        battery_capacity_j=500.0,
        initial_charge_range=(0.6, 0.9),
        dispatch_period_s=1800.0,
        seed=11,
    )
    defaults.update(overrides)
    return World(SimulationConfig(**defaults))


class TestRates:
    def test_dead_sensors_draw_nothing(self):
        w = make_world()
        w.bank.levels_j[:5] = 0.0
        w._recompute_rates()
        assert np.all(w._rates[:5] == 0.0)

    def test_alive_idle_draw_at_least_idle_power(self):
        w = make_world()
        w._recompute_rates()
        alive = w.bank.alive_mask()
        assert np.all(w._rates[alive] >= w.power.idle_power_w - 1e-15)

    def test_active_draw_exceeds_idle(self):
        w = make_world()
        w._recompute_rates()
        active = w._active
        idle_alive = w.bank.alive_mask() & ~active
        if active.any() and idle_alive.any():
            assert w._rates[active].min() > w._rates[idle_alive].max() * 0.99

    def test_one_active_per_nonempty_cluster_round_robin(self):
        w = make_world()
        w._recompute_rates()
        n_nonempty = sum(1 for c in w.cluster_set if c.size > 0)
        assert w._active.sum() == n_nonempty

    def test_relay_draw_present_near_base(self):
        """The total network draw must exceed the pure idle+active sum
        whenever someone relays (multi-hop network)."""
        w = make_world(n_sensors=80, side_length_m=80.0, comm_range_m=15.0)
        w._recompute_rates()
        alive = w.bank.alive_mask()
        base_draw = alive.sum() * w.power.idle_power_w + (
            w._active.sum() * w.power.active_sensing_power_w
        )
        assert w._rates.sum() >= base_draw - 1e-12


class TestAdvanceEnergy:
    def test_no_time_no_drain(self):
        w = make_world()
        before = w.bank.levels_j.copy()
        w._advance_energy()
        assert np.array_equal(before, w.bank.levels_j)

    def test_drain_matches_rates(self):
        w = make_world()
        before = w.bank.levels_j.copy()
        rates = w._rates.copy()
        w.sim.now = 1000.0
        w._advance_energy()
        expected = np.clip(before - rates * 1000.0, 0.0, w.cfg.battery_capacity_j)
        assert np.allclose(w.bank.levels_j, expected)

    def test_death_triggers_rate_refresh(self):
        w = make_world()
        victim = int(np.flatnonzero(w._active)[0])
        w.bank.levels_j[victim] = w._rates[victim] * 10.0  # dies in 10 s
        w.sim.now = 100.0
        w._advance_energy()
        assert w.bank.levels_j[victim] == 0.0
        assert w._rates[victim] == 0.0
        # Another cluster member should have picked up the duty.
        cluster = w.cluster_set.cluster_of(victim)
        actives = w.activator.active_sensor_per_cluster(w.bank.alive_mask())
        if w.cluster_set[cluster].size > 1:
            assert actives[cluster] != victim


class TestRequestLifecycle:
    def drain_below_threshold(self, w, nodes):
        w.bank.levels_j[nodes] = w.bank.threshold_j * 0.9

    def test_release_sets_flag_and_list(self):
        w = make_world(erp=0.0)
        self.drain_below_threshold(w, [0, 1])
        released = w._check_requests()
        assert released
        assert w.requested[0] and w.requested[1]
        assert 0 in w.requests and 1 in w.requests

    def test_no_double_release(self):
        w = make_world(erp=0.0)
        self.drain_below_threshold(w, [0])
        w._check_requests()
        n_before = len(w.requests)
        w._check_requests()
        assert len(w.requests) == n_before

    def test_charge_clears_flag(self):
        w = make_world(erp=0.0)
        self.drain_below_threshold(w, [3])
        w._check_requests()
        rv = w.rvs[0]
        rv.begin_sortie([3])
        w.requests.remove(3)
        rv.itinerary = [3]
        w._rv_arrive(rv)  # pops the node, starts charging
        # Fire the charge-completion event.
        w.sim.step()
        assert not w.requested[3]
        assert w.bank.levels_j[3] == w.cfg.battery_capacity_j


class TestDispatchPolicy:
    def test_rv_sent_home_when_broke(self):
        w = make_world(erp=0.0, rv_capacity_j=1000.0)
        rv = w.rvs[0]
        rv.battery.level_j = 1.0  # cannot afford anything
        rv.position = np.array([1.0, 1.0])  # away from depot
        self.place_request(w)
        w._dispatch()
        assert w._returning[0]

    def test_full_rv_at_depot_not_cycled(self):
        w = make_world(erp=0.0)
        self_requests = self.place_request(w, demand_scale=1e9)  # unaffordable
        w._dispatch()
        assert not w._returning[0]
        assert not w.rvs[0].busy

    @staticmethod
    def place_request(w, demand_scale=1.0):
        from repro.core.requests import RechargeRequest

        w.requests.add(
            RechargeRequest(0, w.sensor_pos[0], min(400.0 * demand_scale, 1e12), -1, 0.0)
        )
        w.requested[0] = True


class TestCoverableNormalization:
    def test_uncoverable_targets_ignored(self):
        """Targets nobody could ever see don't count against coverage."""
        w = make_world(n_sensors=4, n_targets=3, side_length_m=200.0, sensing_range_m=5.0,
                       seed=2)
        # Most targets on a 200 m field with 4 short-range sensors are
        # uncoverable; coverage is normalized over the coverable ones.
        w._record_metrics()
        assert w.metrics._last_coverage in (0.0, 0.5, 1.0) or 0 <= w.metrics._last_coverage <= 1
