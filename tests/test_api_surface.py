"""API-surface tests: every public name resolves, every subpackage
imports, every ``__all__`` is honest, and public callables carry
docstrings."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cluster",
    "repro.core",
    "repro.energy",
    "repro.experiments",
    "repro.geometry",
    "repro.mobility",
    "repro.network",
    "repro.sim",
    "repro.sim.components",
    "repro.tsp",
    "repro.utils",
    "repro.viz",
]

MODULES = [
    "repro.cli",
    "repro.core.activation",
    "repro.core.clustering",
    "repro.core.combined",
    "repro.core.erc",
    "repro.core.extensions",
    "repro.core.greedy",
    "repro.core.insertion",
    "repro.core.kernels",
    "repro.core.mip",
    "repro.core.partition",
    "repro.core.profit",
    "repro.core.requests",
    "repro.core.scheduling",
    "repro.energy.battery",
    "repro.energy.consumption",
    "repro.energy.recharge",
    "repro.experiments.executor",
    "repro.experiments.pool",
    "repro.experiments.service",
    "repro.experiments.store",
    "repro.geometry.coverage",
    "repro.geometry.field",
    "repro.geometry.points",
    "repro.mobility.targets",
    "repro.mobility.vehicles",
    "repro.mobility.waypoint",
    "repro.network.dijkstra",
    "repro.network.linkquality",
    "repro.network.routing",
    "repro.network.topology",
    "repro.network.traffic",
    "repro.registry",
    "repro.sim.components.clusters",
    "repro.sim.components.energy",
    "repro.sim.components.fleet",
    "repro.sim.components.gate",
    "repro.sim.components.state",
    "repro.sim.config",
    "repro.sim.engine",
    "repro.sim.metrics",
    "repro.sim.runner",
    "repro.sim.serialization",
    "repro.sim.trace",
    "repro.sim.world",
    "repro.tsp.nearest_neighbor",
    "repro.tsp.tour",
    "repro.tsp.two_opt",
    "repro.utils.profiling",
    "repro.utils.stats",
    "repro.utils.tables",
    "repro.viz.ascii",
    "repro.viz.svg",
]


@pytest.mark.parametrize("name", SUBPACKAGES + MODULES)
def test_module_imports_and_has_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", SUBPACKAGES + MODULES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for public in getattr(mod, "__all__", []):
        assert hasattr(mod, public), f"{name}.__all__ lists missing {public!r}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    for public in getattr(mod, "__all__", []):
        obj = getattr(mod, public)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__ and obj.__doc__.strip(), f"{name}.{public} lacks a docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_top_level_reexports():
    import repro

    for public in repro.__all__:
        if public.startswith("__"):
            continue
        assert hasattr(repro, public)
