"""A minimal deterministic discrete-event simulation core.

The WRSN world (see :mod:`repro.sim.world`) advances battery state
*analytically* between events, so all the engine must provide is a
priority queue of timestamped callbacks with deterministic ordering:

* events fire in time order;
* simultaneous events fire in (priority, insertion-sequence) order, so
  reruns of the same seed replay identically;
* events can be cancelled (lazy deletion, as in the classic heapq
  recipe).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _Entry:
    time: float
    priority: int
    seq: int
    callback: Optional[Callable[[], None]] = field(compare=False)


@dataclass
class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; pass to
    :meth:`Simulator.cancel` to revoke the event."""

    _entry: _Entry

    @property
    def cancelled(self) -> bool:
        return self._entry.callback is None

    @property
    def time(self) -> float:
        return self._entry.time


class Simulator:
    """Event loop with a monotonically advancing clock (seconds)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self.events_fired = 0

    def schedule(
        self,
        at: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute time ``at``.

        ``priority`` breaks ties among simultaneous events: lower fires
        first (e.g. energy accounting before scheduling decisions).

        Raises:
            ValueError: when scheduling into the past.
        """
        if at < self.now:
            raise ValueError(f"cannot schedule at {at} < now {self.now}")
        entry = _Entry(float(at), priority, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, callback, priority)

    def cancel(self, handle: EventHandle) -> None:
        """Revoke a scheduled event (idempotent)."""
        handle._entry.callback = None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._heap and self._heap[0].callback is None:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.callback is None:
                continue
            self.now = entry.time
            cb = entry.callback
            entry.callback = None
            self.events_fired += 1
            cb()
            return True
        return False

    def pending_events(self) -> list:
        """The live scheduled events as ``(time, priority, callback)``
        triples in firing order.

        Cancelled entries are skipped (not purged).  Used by the flight
        recorder to decide whether the queue is checkpointable and to
        serialize it when it is.
        """
        live = [
            (e.time, e.priority, e.callback)
            for e in self._heap
            if e.callback is not None
        ]
        live.sort(key=lambda item: (item[0], item[1]))
        return live

    def reset(self, now: float, events_fired: int = 0) -> None:
        """Clear the queue and rebase the clock — checkpoint restore.

        The insertion-sequence counter keeps running; determinism only
        needs relative order among coexisting events, which the restore
        path re-establishes by rescheduling in recorded firing order.
        """
        self.now = float(now)
        self._heap = []
        self.events_fired = int(events_fired)

    def run_until(self, t_end: float) -> None:
        """Fire events up to and including time ``t_end``; the clock
        lands exactly on ``t_end`` afterwards.

        Inlined pop loop rather than ``peek_time()`` + ``step()``: the
        tick engine fires millions of events per run and the paired
        form inspects the heap head twice per event.  Semantics are
        identical — cancelled entries are skipped lazily, the clock
        lands on each event's time before its callback fires, and
        ``events_fired`` counts only live events.
        """
        if t_end < self.now:
            raise ValueError(f"t_end {t_end} is in the past (now {self.now})")
        heap = self._heap
        while heap:
            head = heap[0]
            if head.callback is None:
                heapq.heappop(heap)
                continue
            if head.time > t_end:
                break
            entry = heapq.heappop(heap)
            self.now = entry.time
            cb = entry.callback
            entry.callback = None
            self.events_fired += 1
            cb()
        self.now = t_end

    def run_until_before(self, t_end: float, priority: int) -> None:
        """Fire events strictly before ``(t_end, priority)`` in the
        lexicographic (time, priority) order; the clock lands exactly
        on ``t_end`` afterwards.

        This is the batched engine's event-window primitive: the batch
        loop drains each world's queue up to — but excluding — its own
        tick slot at ``(t_end, PRIO_TICK)``, then performs the tick as
        a batched kernel across worlds.  Events at ``t_end`` with a
        *lower* priority (e.g. a relocation at the same timestamp) fire
        here, exactly as they would ahead of the tick in the serial
        event loop.
        """
        if t_end < self.now:
            raise ValueError(f"t_end {t_end} is in the past (now {self.now})")
        heap = self._heap
        while heap:
            head = heap[0]
            if head.callback is None:
                heapq.heappop(heap)
                continue
            if head.time > t_end or (
                head.time == t_end and head.priority >= priority
            ):
                break
            entry = heapq.heappop(heap)
            self.now = entry.time
            cb = entry.callback
            entry.callback = None
            self.events_fired += 1
            cb()
        self.now = t_end
