"""Process-pool executor for experiment cells.

The paper's figures are ERP-grid sweeps: a grid of
``(scheduler, erp, seed)`` cells that are embarrassingly parallel.
:func:`map_cells` fans a whole grid out across worker processes while
keeping the output *bit-identical* to the serial path:

* every cell is keyed by ``(scheduler, erp, seed)`` and the results are
  reassembled in grid order in the parent, so averaging and JSON
  serialization see exactly the sequence the serial loop would produce;
* cache lookups (``REPRO_CACHE``) and content-addressed store lookups
  (``REPRO_STORE``, :mod:`repro.experiments.store`) happen in the
  parent — only misses are shipped to the pool — and completed cells
  are stored by the parent, so workers stay pure functions of their
  configuration;
* the worker entry point is the module-level
  :func:`repro.sim.runner.run_simulation` over a picklable frozen
  ``SimulationConfig``, which makes the pool safe under both ``fork``
  and ``spawn`` start methods (``REPRO_START_METHOD`` forces one).

Worker count comes from the ``jobs`` argument, else ``REPRO_JOBS``,
else the older ``REPRO_PROCS`` knob, else 1 (serial, in-process).
``auto`` (either the argument via the CLI or the environment variable)
resolves to ``os.cpu_count()``.  The CLI exposes the same control as
``--jobs``.

Two pool backends execute the misses:

* the default **cold pool** — a fresh ``multiprocessing.Pool`` per
  call, torn down when the call returns (nothing persists);
* the **warm pool** (``warm=True`` or ``REPRO_WARM_POOL=1``) — the
  process-wide persistent :class:`repro.experiments.pool.WarmPool`,
  which survives across calls and amortizes interpreter start, imports
  and per-worker caches.  Results come back through shared-memory
  segments instead of pickle pipes where available.

Both backends run the same worker functions over the same payloads in
the same grid order, so summaries are byte-identical across
``{jobs} x {warm}`` (covered by the golden execution matrix).  Nothing
warm is imported — let alone spawned — unless a caller opts in.

Streaming: :func:`iter_configs` yields ``(index, summary, source)``
per cell *as cells finish*, and :func:`submit_grid` wraps a whole
sweep grid into a :class:`GridJob` whose ``results()`` reassembles
grid order at the end — the primitive behind ``repro serve`` /
``repro submit`` (:mod:`repro.experiments.service`).

Batching: with ``REPRO_BATCH=1``, plain (untraced, unrecorded) cache
misses are grouped by :func:`repro.sim.batch.shape_signature` —
identical configurations up to seed / scheduler / erp / horizon — and
each group is chunked into shape-batches of at most ``REPRO_BATCH_SIZE``
cells (default 16), each submitted as **one** pool payload that runs
through :func:`repro.sim.runner.run_batch` (the lockstep batched
engine).  Per-cell summaries are bit-identical to the serial path, grid
order is reassembled exactly as before, every cell is stored
individually (``source="batch"`` provenance in the result store), and
the pool's ``tasks`` / ``warm_hits`` stats are weighted so a k-cell
batch counts k cells, not one payload.

Observability: pass an :class:`repro.obs.Instruments` registry to
record ``executor.cells`` / ``executor.cache_hits`` /
``executor.store_hits`` / ``executor.cache_misses`` counters and the
``executor.map`` phase timer (the warm pool adds ``pool.*`` gauges).
Pass a :class:`repro.obs.SpanTracer` as ``spans`` and the fan-out
becomes part of the flight-recorder trace: every cache miss runs
through :func:`_run_cell_traced` (in the pool when ``jobs > 1``), its
serialized child spans are merged under the parent ``executor.map``
span in miss order with deterministically renumbered ids, and cache
hits are recorded as events — so a ``--jobs 4`` trace reads exactly
like the serial one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs.instruments import DEFAULT_LATENCY_BUCKETS, NULL_INSTRUMENTS
from ..obs.spans import NULL_TRACER, SpanTracer
from ..sim.config import SimulationConfig
from ..sim.metrics import SimulationSummary
from ..sim.runner import run_simulation
from ..sim.world import World

__all__ = [
    "CellKey",
    "CellResult",
    "GridJob",
    "default_batch_size",
    "default_jobs",
    "iter_configs",
    "map_cells",
    "map_configs",
    "submit_grid",
    "sweep_grid",
]

#: A sweep-cell coordinate: ``(scheduler, erp, seed)``.
CellKey = Tuple[str, float, int]


def default_jobs() -> int:
    """Worker count for cell fan-out when ``jobs`` is not given.

    ``REPRO_JOBS`` wins; the older ``REPRO_PROCS`` (the seed-runner
    knob) is honored as a fallback so existing setups keep
    parallelizing; the default is 1 (serial) so library users opt in
    explicitly.  Either variable may be ``auto``, which resolves to
    ``os.cpu_count()``.
    """
    for var in ("REPRO_JOBS", "REPRO_PROCS"):
        value = os.environ.get(var, "").strip()
        if not value:
            continue
        if value.lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            n = int(value)
        except ValueError as exc:
            raise ValueError(
                f"{var} must be an integer or 'auto', got {value!r}"
            ) from exc
        if n < 1:
            raise ValueError(f"{var} must be >= 1")
        return n
    return 1


def default_batch_size() -> int:
    """Cells per shape-batch payload when ``REPRO_BATCH=1``.

    ``REPRO_BATCH_SIZE`` overrides the default of 16 — small enough
    that a multi-worker pool still load-balances, large enough to
    amortize the per-tick Python dispatch across the batch.
    """
    value = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if not value:
        return 16
    try:
        n = int(value)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BATCH_SIZE must be an integer, got {value!r}"
        ) from exc
    if n < 1:
        raise ValueError("REPRO_BATCH_SIZE must be >= 1")
    return n


def _batch_requested() -> bool:
    """Whether the executor should submit shape-batches
    (``REPRO_BATCH=1``; see :mod:`repro.sim.batch`)."""
    from ..sim.soa import batch_enabled

    return batch_enabled()


def _batch_payloads(
    configs: Sequence[SimulationConfig], misses: Sequence[int]
) -> Tuple[List[List[int]], List[Tuple[SimulationConfig, ...]]]:
    """Group cache-miss cells into shape-batch payloads.

    Misses are grouped by :func:`repro.sim.batch.shape_signature`
    (preserving miss order within a group — the batched engine returns
    summaries in input order) and chunked to ``REPRO_BATCH_SIZE``.
    Returns ``(chunks, payloads)`` where ``chunks[j]`` lists the
    positions *within* ``misses`` that payload ``j`` covers.
    """
    from ..sim.batch import shape_signature

    size = default_batch_size()
    groups: Dict[str, List[int]] = {}
    for j, i in enumerate(misses):
        groups.setdefault(shape_signature(configs[i]), []).append(j)
    chunks: List[List[int]] = []
    for positions in groups.values():
        for k in range(0, len(positions), size):
            chunks.append(positions[k : k + size])
    payloads = [tuple(configs[misses[j]] for j in chunk) for chunk in chunks]
    return chunks, payloads


def _pool_start_method() -> str:
    """The multiprocessing start method for pool workers.

    ``REPRO_START_METHOD`` (``fork`` / ``spawn`` / ``forkserver``)
    forces one — the spawn path is exercised in CI this way — else
    prefer fork (cheap and REPL-friendly) and fall back to spawn.
    """
    available = multiprocessing.get_all_start_methods()
    value = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    if value:
        if value not in available:
            raise ValueError(
                f"REPRO_START_METHOD must be one of {sorted(available)}, got {value!r}"
            )
        return value
    return "fork" if "fork" in available else "spawn"


def _run_cell_traced(
    config: SimulationConfig,
) -> Tuple[SimulationSummary, List[Dict[str, Any]]]:
    """Pool worker: run one cell under a fresh span tracer.

    Returns the summary plus the serialized span rows (plain dicts, so
    they pickle across the pool boundary).  The worker's root span is
    the world's ``run`` span; the parent re-roots it under its own
    sweep span.  Spans never touch the trajectory, so the summary is
    bit-identical to :func:`repro.sim.runner.run_simulation`.
    """
    tracer = SpanTracer()
    summary = World(config, spans=tracer).run()
    return summary, tracer.to_rows()


def _run_cell_recorded(
    task: Tuple[SimulationConfig, str, bool],
) -> Tuple[SimulationSummary, Optional[List[Dict[str, Any]]]]:
    """Pool worker: run one cell with the flight recorder armed.

    ``task`` is ``(config, bundle_dir, traced)`` — a single tuple so
    the worker stays a one-argument, picklable ``pool.map`` target.  On
    any exception the recorder flushes a postmortem bundle to
    ``bundle_dir`` before the exception propagates to the parent; a
    clean run with monitor violations flushes one too.  The bundle path
    is keyed by grid index in the parent, so reruns land in the same
    place regardless of pool scheduling.
    """
    from ..obs import BlackBoxRecorder, MonitorSet
    from ..sim.runner import _flush_postmortem

    config, bundle_dir, traced = task
    recorder = BlackBoxRecorder()
    monitors = MonitorSet(blackbox=recorder)
    tracer = SpanTracer() if traced else None
    kwargs: Dict[str, Any] = {"monitors": monitors, "blackbox": recorder}
    if tracer is not None:
        kwargs["spans"] = tracer
    world = World(config, **kwargs)
    try:
        summary = world.run()
    except BaseException as exc:
        _flush_postmortem(
            recorder, bundle_dir, reason="exception", config=config,
            monitors=monitors, spans=tracer, world=world, error=exc,
        )
        raise
    if monitors.violations:
        _flush_postmortem(
            recorder, bundle_dir, reason="violation", config=config,
            monitors=monitors, spans=tracer,
        )
    return summary, tracer.to_rows() if tracer is not None else None


def _run_cell_batch(
    configs: Sequence[SimulationConfig],
) -> List[SimulationSummary]:
    """Pool worker: run one shape-batch of cells through the lockstep
    batched engine (:func:`repro.sim.runner.run_batch`).

    Summaries come back in payload order, each bit-identical to its
    serial :func:`run_simulation` counterpart; cells the batched
    kernels cannot represent fall back serially inside ``run_batch``.

    Inside a streaming warm-pool worker, the batch books occupancy
    instruments into the worker's local registry (shipped back as the
    reply's stats delta); elsewhere ``worker_instruments()`` is None
    and the engine runs instrument-free, exactly as before.
    """
    from ..obs.live import worker_instruments
    from ..sim.runner import run_batch

    return run_batch(list(configs), instruments=worker_instruments())


#: Miss-execution worker functions by task kind.  The warm pool
#: resolves the same table by name inside its workers, so both
#: backends run exactly the same code over the same payloads.
_TASK_FNS = {
    "run": run_simulation,
    "traced": _run_cell_traced,
    "recorded": _run_cell_recorded,
    "batch": _run_cell_batch,
}


def _run_indexed(task: Tuple[int, str, Any]) -> Tuple[int, Any]:
    """Pool worker for the streaming path: tag results with their
    miss index so ``imap_unordered`` output can be re-keyed."""
    index, kind, payload = task
    return index, _TASK_FNS[kind](payload)


def _warm_requested(warm: Optional[bool]) -> bool:
    """Resolve the warm-pool opt-in: explicit argument, else
    ``REPRO_WARM_POOL`` (off by default — nothing persists unless a
    caller asks)."""
    if warm is not None:
        return bool(warm)
    return os.environ.get("REPRO_WARM_POOL", "").strip().lower() in (
        "1", "true", "yes", "on", "auto",
    )


def _resolve_store(store):
    """The result store to consult: explicit argument, else
    ``REPRO_STORE`` (``None`` when unset — no directory is created)."""
    if store is not None:
        return store
    from .store import ResultStore

    return ResultStore.from_env()


def _execute(
    kind: str,
    payloads: Sequence[Any],
    n_jobs: int,
    warm: bool,
    instruments,
    weights: Optional[Sequence[int]] = None,
) -> List[Any]:
    """Run miss payloads through the selected pool backend, in order.

    Serial (``n_jobs == 1`` or a single payload) runs in-process;
    otherwise a fresh cold pool per call, or the persistent warm pool
    when opted in.  All three produce the same ordered result list.
    ``weights`` (cells per payload) keeps the warm pool's ``tasks`` /
    ``warm_hits`` stats counting cells when payloads are shape-batches.
    """
    if n_jobs == 1 or len(payloads) == 1:
        fn = _TASK_FNS[kind]
        return [fn(p) for p in payloads]
    if warm:
        from .pool import get_warm_pool

        pool = get_warm_pool(n_jobs, start_method=_pool_start_method())
        return pool.run(kind, payloads, instruments=instruments, weights=weights)
    ctx = multiprocessing.get_context(_pool_start_method())
    with ctx.Pool(min(n_jobs, len(payloads))) as pool:
        return pool.map(_TASK_FNS[kind], payloads)


def _lookup(config: SimulationConfig, store) -> Tuple[Optional[SimulationSummary], str]:
    """Parent-side lookup chain: legacy cache, then result store."""
    from .cache import cache_lookup

    hit = cache_lookup(config)
    if hit is not None:
        return hit, "cache"
    if store is not None:
        hit = store.get(config)
        if hit is not None:
            return hit, "store"
    return None, "run"


def _store_fresh(
    config: SimulationConfig,
    summary: SimulationSummary,
    store,
    source: str = "run",
) -> None:
    """Persist a freshly computed cell into every enabled layer;
    ``source`` records how the cell was produced (``"run"`` serial,
    ``"batch"`` through the batched engine) in the store blob."""
    from .cache import cache_store

    cache_store(config, summary)
    if store is not None:
        store.put(config, summary, source=source)


def map_configs(
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
    instruments=None,
    spans=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
    warm: Optional[bool] = None,
    store=None,
) -> List[SimulationSummary]:
    """Run every configuration, in order, through cache + process pool.

    The result list is aligned with ``configs`` regardless of the order
    workers finish in, so the output is bit-identical to running the
    configurations serially.  Cache and store lookups/stores happen in
    the parent process; only misses are executed (in the pool when
    ``jobs > 1`` — the persistent warm pool when ``warm`` is true or
    ``REPRO_WARM_POOL=1``, else a fresh pool per call).  ``store``
    is a :class:`repro.experiments.store.ResultStore` (default: the
    one named by ``REPRO_STORE``, or none).

    With a ``spans`` tracer, each miss runs under a child tracer whose
    rows are absorbed under this call's ``executor.map`` span in miss
    order (deterministic id renumbering), and cache hits become
    ``executor.cache_hit`` events — the merged trace is identical in
    structure for any ``jobs`` value.

    With ``postmortem_dir``, every miss runs with the flight recorder
    armed and writes ``<postmortem_dir>/cell-<grid index>`` bundles on
    failure or monitor violation — the same grid-order discipline as
    the span merge, so a crashing cell lands at the same path however
    the pool schedules it.
    """
    obs = instruments if instruments is not None else NULL_INSTRUMENTS
    sp = spans if spans is not None else NULL_TRACER
    n_jobs = default_jobs() if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    use_warm = _warm_requested(warm)
    store = _resolve_store(store)

    results: List[Optional[SimulationSummary]] = [None] * len(configs)
    misses: List[int] = []
    store_hits = 0
    with obs.timer("executor.map"), sp.span(
        "executor.map", cells=len(configs), jobs=n_jobs
    ) as sweep_span:
        for i, cfg in enumerate(configs):
            hit, source = _lookup(cfg, store)
            if hit is not None:
                results[i] = hit
                store_hits += source == "store"
                if sp.enabled:
                    sp.event(
                        "executor.cache_hit" if source == "cache"
                        else "executor.store_hit",
                        cell=i, scheduler=cfg.scheduler, erp=cfg.erp, seed=cfg.seed,
                    )
            else:
                misses.append(i)
        obs.counter("executor.cells").inc(len(configs))
        obs.counter("executor.cache_hits").inc(
            len(configs) - len(misses) - store_hits
        )
        obs.counter("executor.store_hits").inc(store_hits)
        obs.counter("executor.cache_misses").inc(len(misses))
        sweep_span.set(cache_hits=len(configs) - len(misses))
        if misses:
            h_cell = obs.histogram("executor.cell_latency_s", DEFAULT_LATENCY_BUCKETS)
            t_fan = time.perf_counter()
            if postmortem_dir is not None:
                root = Path(postmortem_dir)
                kind = "recorded"
                payloads: List[Any] = [
                    (configs[i], str(root / f"cell-{i:04d}"), sp.enabled)
                    for i in misses
                ]
            elif sp.enabled:
                kind = "traced"
                payloads = [configs[i] for i in misses]
            else:
                kind = "run"
                payloads = [configs[i] for i in misses]
            if kind == "run" and _batch_requested():
                # Shape-batched execution: each payload is one chunk of
                # signature-compatible cells run through the batched
                # engine; summaries reassemble to the same grid slots.
                chunks, batch_payloads = _batch_payloads(configs, misses)
                outputs = _execute(
                    "batch", batch_payloads, n_jobs, use_warm, obs,
                    weights=[len(c) for c in chunks],
                )
                for chunk, summaries in zip(chunks, outputs):
                    for j, summary in zip(chunk, summaries):
                        i = misses[j]
                        h_cell.observe(time.perf_counter() - t_fan)
                        _store_fresh(configs[i], summary, store, source="batch")
                        results[i] = summary
            else:
                outputs = _execute(kind, payloads, n_jobs, use_warm, obs)
                for i, out in zip(misses, outputs):
                    h_cell.observe(time.perf_counter() - t_fan)
                    if kind == "run":
                        summary = out
                    else:
                        summary, rows = out
                        if sp.enabled and rows is not None:
                            sp.absorb(
                                rows, parent=sweep_span,
                                root_attrs={"cell": i, "cache": "miss"},
                            )
                    _store_fresh(configs[i], summary, store)
                    results[i] = summary
    return results  # type: ignore[return-value]


def iter_configs(
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
    warm: Optional[bool] = None,
    store=None,
    instruments=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
) -> Iterator[Tuple[int, SimulationSummary, str]]:
    """Stream per-cell results as they finish.

    Yields ``(index, summary, source)`` where ``index`` points into
    ``configs`` and ``source`` is ``"cache"``, ``"store"``, ``"run"``
    or ``"batch"`` (a fresh cell computed through the batched engine
    under ``REPRO_BATCH=1``).  Cache/store hits are yielded first (in
    index order); misses follow in *completion* order — callers that
    need the serial sequence reassemble by index (:class:`GridJob`
    does).  Shape-batched misses finish a chunk at a time and are
    streamed per cell.  Fresh results are persisted to the enabled
    layers as they arrive, so a second identical submission is all
    hits.

    This is the streaming sibling of :func:`map_configs` (which should
    be preferred when span tracing is needed — streaming runs are not
    traced).  With ``postmortem_dir``, misses run with the flight
    recorder armed, same bundle layout as :func:`map_configs`.
    """
    obs = instruments if instruments is not None else NULL_INSTRUMENTS
    n_jobs = default_jobs() if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")
    use_warm = _warm_requested(warm)
    store = _resolve_store(store)

    misses: List[int] = []
    store_hits = 0
    for i, cfg in enumerate(configs):
        hit, source = _lookup(cfg, store)
        if hit is not None:
            store_hits += source == "store"
            yield i, hit, source
        else:
            misses.append(i)
    obs.counter("executor.cells").inc(len(configs))
    obs.counter("executor.cache_hits").inc(len(configs) - len(misses) - store_hits)
    obs.counter("executor.store_hits").inc(store_hits)
    obs.counter("executor.cache_misses").inc(len(misses))
    if not misses:
        return
    chunks: Optional[List[List[int]]] = None
    weights: Optional[List[int]] = None
    if postmortem_dir is not None:
        root = Path(postmortem_dir)
        kind = "recorded"
        payloads: List[Any] = [
            (configs[i], str(root / f"cell-{i:04d}"), False) for i in misses
        ]
    elif _batch_requested():
        kind = "batch"
        chunks, payloads = _batch_payloads(configs, misses)
        weights = [len(c) for c in chunks]
    else:
        kind = "run"
        payloads = [configs[i] for i in misses]

    # Per-cell latency from fan-out start to completion — the live
    # plane's p99 SLO substrate.  Only misses are timed (hits above
    # were answered from the cache/store in microseconds).
    h_cell = obs.histogram("executor.cell_latency_s", DEFAULT_LATENCY_BUCKETS)
    t_fan = time.perf_counter()

    def _finish(i: int, summary: SimulationSummary, source: str):
        h_cell.observe(time.perf_counter() - t_fan)
        _store_fresh(configs[i], summary, store, source=source)
        return i, summary, source

    def _emit(j: int, out: Any) -> Iterator[Tuple[int, SimulationSummary, str]]:
        """Per-cell results of payload ``j`` — one for plain kinds, the
        whole chunk for a shape-batch."""
        if kind == "batch":
            assert chunks is not None
            for jj, summary in zip(chunks[j], out):
                yield _finish(misses[jj], summary, "batch")
        else:
            yield _finish(misses[j], out if kind == "run" else out[0], "run")

    if n_jobs == 1 or len(payloads) == 1:
        fn = _TASK_FNS[kind]
        for j, payload in enumerate(payloads):
            yield from _emit(j, fn(payload))
    elif use_warm:
        from .pool import get_warm_pool

        pool = get_warm_pool(n_jobs, start_method=_pool_start_method())
        for j, out in pool.run_iter(kind, payloads, instruments=obs, weights=weights):
            yield from _emit(j, out)
    else:
        ctx = multiprocessing.get_context(_pool_start_method())
        tasks = [(j, kind, p) for j, p in enumerate(payloads)]
        with ctx.Pool(min(n_jobs, len(tasks))) as pool:
            for j, out in pool.imap_unordered(_run_indexed, tasks):
                yield from _emit(j, out)


@dataclass(frozen=True)
class CellResult:
    """One finished sweep cell, as streamed by :class:`GridJob`."""

    index: int
    key: CellKey
    summary: SimulationSummary
    source: str  # "cache" | "store" | "run" | "batch"


class GridJob:
    """A submitted sweep grid with streaming per-cell results.

    Iterate to receive :class:`CellResult` items *as cells finish*
    (hits first, then misses in completion order); call
    :meth:`results` for the grid-order reassembly — it drains any
    unconsumed remainder, so the mapping is bit-identical to the
    serial sweep no matter how much of the stream was observed.
    ``sources`` tallies cells by origin once consumed.
    """

    def __init__(
        self,
        keys: Sequence[CellKey],
        stream: Iterator[Tuple[int, SimulationSummary, str]],
    ) -> None:
        self.keys: List[CellKey] = list(keys)
        self.sources: Dict[str, int] = {}
        self._stream = stream
        self._cells: Dict[int, CellResult] = {}

    def __iter__(self) -> Iterator[CellResult]:
        for index, summary, source in self._stream:
            cell = CellResult(index, self.keys[index], summary, source)
            self._cells[index] = cell
            self.sources[source] = self.sources.get(source, 0) + 1
            yield cell

    def results(self) -> Dict[CellKey, SimulationSummary]:
        """All summaries keyed by cell, reassembled in grid order."""
        for _ in self:  # drain whatever the caller has not consumed yet
            pass
        missing = [i for i in range(len(self.keys)) if i not in self._cells]
        if missing:
            raise RuntimeError(f"grid stream ended with cells missing: {missing}")
        return {
            self.keys[i]: self._cells[i].summary for i in range(len(self.keys))
        }


def sweep_grid(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
) -> List[CellKey]:
    """The sweep's cell keys in canonical (serial) grid order:
    scheduler-major, then ERP, then seed."""
    return [
        (sched, float(erp), int(seed))
        for sched in schedulers
        for erp in erps
        for seed in scale.seeds
    ]


def grid_configs(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
    **overrides,
) -> Tuple[List[CellKey], List[SimulationConfig]]:
    """The grid's keys plus the exact configurations the serial
    :func:`repro.experiments.common.run_cell` loop would build."""
    keys = sweep_grid(scale, schedulers, erps)
    configs = [
        scale.base_config(scheduler=sched, erp=erp, **overrides).with_overrides(
            seed=seed
        )
        for sched, erp, seed in keys
    ]
    return keys, configs


def submit_grid(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
    jobs: Optional[int] = None,
    warm: Optional[bool] = None,
    store=None,
    instruments=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
    **overrides,
) -> GridJob:
    """Submit a whole ERP x scheduler sweep grid for streaming execution.

    Returns a :class:`GridJob`: iterate it for per-cell results as they
    finish, or call ``results()`` for the grid-order mapping —
    byte-identical to :func:`map_cells` for the same arguments.  This
    is the in-process form of what ``repro submit`` does over the
    service socket.
    """
    keys, configs = grid_configs(scale, schedulers, erps, **overrides)
    return GridJob(
        keys,
        iter_configs(
            configs, jobs=jobs, warm=warm, store=store,
            instruments=instruments, postmortem_dir=postmortem_dir,
        ),
    )


def map_cells(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
    jobs: Optional[int] = None,
    instruments=None,
    spans=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
    warm: Optional[bool] = None,
    store=None,
    **overrides,
) -> Dict[CellKey, SimulationSummary]:
    """Execute a whole ERP x scheduler sweep grid, one run per key.

    Builds the exact configurations the serial :func:`run_cell` loop
    would build (``scale.base_config(scheduler=..., erp=...)`` with the
    seed overridden), fans cache misses out over the pool, and returns
    the summaries keyed by ``(scheduler, erp, seed)``.  Grid order is
    preserved internally so a downstream reassembly that walks
    ``sweep_grid`` order is bit-identical to the serial sweep.
    """
    keys, configs = grid_configs(scale, schedulers, erps, **overrides)
    summaries = map_configs(
        configs, jobs=jobs, instruments=instruments, spans=spans,
        postmortem_dir=postmortem_dir, warm=warm, store=store,
    )
    return dict(zip(keys, summaries))
