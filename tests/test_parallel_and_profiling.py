"""Tests for the parallel seed runner and the profiling helpers."""

import time

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import default_processes, run_seeds
from repro.utils.profiling import Timer, profile_call


def quick_cfg():
    return SimulationConfig.small(sim_time_s=0.2 * 86400)


class TestParallelRunner:
    def test_parallel_matches_serial(self):
        cfg = quick_cfg()
        serial = run_seeds(cfg, [1, 2, 3], processes=1)
        parallel = run_seeds(cfg, [1, 2, 3], processes=3)
        assert [s.as_dict() for s in serial] == [p.as_dict() for p in parallel]

    def test_single_seed_stays_serial(self):
        cfg = quick_cfg()
        out = run_seeds(cfg, [7], processes=8)
        assert len(out) == 1

    def test_invalid_processes(self):
        with pytest.raises(ValueError):
            run_seeds(quick_cfg(), [1, 2], processes=0)

    def test_default_processes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCS", "3")
        assert default_processes() == 3
        monkeypatch.setenv("REPRO_PROCS", "zero")
        with pytest.raises(ValueError):
            default_processes()
        monkeypatch.setenv("REPRO_PROCS", "0")
        with pytest.raises(ValueError):
            default_processes()
        monkeypatch.delenv("REPRO_PROCS")
        assert default_processes() == 1


class TestTimer:
    def test_measures_elapsed(self):
        with Timer("nap") as t:
            time.sleep(0.02)
        assert t.elapsed_s >= 0.02
        assert "nap" in str(t)

    def test_running_repr(self):
        t = Timer("x")
        assert "running" in str(t)


class TestProfileCall:
    def test_returns_result_and_rows(self):
        def work(n):
            return sum(i * i for i in range(n))

        result, rows = profile_call(work, 10_000, top=5)
        assert result == sum(i * i for i in range(10_000))
        assert 1 <= len(rows) <= 5
        loc, ncalls, tottime, cumtime = rows[0]
        assert isinstance(loc, str) and ncalls >= 1
        assert cumtime >= tottime >= 0.0

    def test_rows_sorted_by_cumtime(self):
        _, rows = profile_call(lambda: [sorted(range(1000)) for _ in range(50)], top=10)
        cumtimes = [r[3] for r in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")).__next__())

    def test_validation(self):
        with pytest.raises(ValueError):
            profile_call(lambda: None, top=0)

    def test_profile_a_simulation(self):
        from repro.sim.runner import run_simulation

        summary, rows = profile_call(run_simulation, quick_cfg(), top=10)
        assert summary.sim_time_s > 0
        assert rows
