"""Ablation A3 — 2-opt post-pass on the schedulers' routes.

How much route length does a classical 2-opt improvement recover on top
of the paper's heuristics?  Small numbers justify the paper's choice to
stop at insertion; large ones would indicate routing left on the table.
"""

import numpy as np

from repro.core.insertion import build_insertion_sequence
from repro.core.requests import RechargeRequest, aggregate_by_cluster
from repro.geometry.points import distances_from
from repro.tsp.tour import open_tour_length
from repro.tsp.two_opt import two_opt
from repro.utils.tables import format_table

from _shared import emit


def _greedy_chain(positions, demands, start, em):
    order, pos = [], start
    remaining = list(range(len(positions)))
    while remaining:
        sub = positions[remaining]
        profits = demands[remaining] - em * distances_from(pos, sub)
        k = int(np.argmax(profits))
        order.append(remaining.pop(k))
        pos = positions[order[-1]]
    return order


def _route_len(start, positions, order):
    pts = np.vstack([start, positions[order]])
    return open_tour_length(pts, list(range(len(pts))))


def bench_ablation_two_opt(benchmark):
    em = 5.6

    def run():
        rows = []
        for name in ("greedy", "insertion"):
            before_l, after_l = [], []
            for seed in range(10):
                rng = np.random.default_rng(seed)
                n = 15
                positions = rng.uniform(0, 200, size=(n, 2))
                demands = rng.uniform(1000, 2000, size=n)
                start = np.array([100.0, 100.0])
                if name == "greedy":
                    order = _greedy_chain(positions, demands, start, em)
                else:
                    reqs = [RechargeRequest(i, positions[i], float(demands[i])) for i in range(n)]
                    order = build_insertion_sequence(
                        aggregate_by_cluster(reqs), start, 1e12, em
                    )
                before = _route_len(start, positions, order)
                # 2-opt over the full path including the fixed start.
                pts = np.vstack([start, positions[order]])
                improved = two_opt(pts, list(range(len(pts))))
                after = open_tour_length(pts, improved)
                before_l.append(before)
                after_l.append(after)
            saved = 100.0 * (np.mean(before_l) - np.mean(after_l)) / np.mean(before_l)
            rows.append([name, float(np.mean(before_l)), float(np.mean(after_l)), float(saved)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["planner", "route len (m)", "after 2-opt (m)", "saved (%)"],
        rows,
        precision=1,
        title="Ablation A3 - 2-opt post-pass on planner routes (15 nodes, 10 seeds)",
    )
    emit("ablation_two_opt", table)
    # 2-opt never lengthens a route.
    assert all(row[2] <= row[1] + 1e-6 for row in rows)
