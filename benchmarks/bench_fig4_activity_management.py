"""Fig. 4 — impact of sensor activity management on RV moving cost.

Regenerates the 12-bar comparison: {No ERC, With ERC} x {Full time,
With RR} for each recharging scheme, in MJ of RV traveling energy.
"""

from repro.experiments import SCHEMES, activity_saving_percent, format_fig4

from _shared import emit, get_fig4


def bench_fig4_activity_management(benchmark):
    result = benchmark.pedantic(get_fig4, rounds=1, iterations=1)
    table = format_fig4(result)
    savings = activity_saving_percent(result)
    lines = [table, "", "Joint-scheme saving vs 'No ERC - Full time' (paper: ~16%):"]
    for s in SCHEMES:
        lines.append(f"  {s}: {savings[s]:.1f}%")
    emit("fig4_activity_management", "\n".join(lines))
    # Shape: the joint scheme (ERC + round robin) never costs more RV
    # energy than the prior-work baseline (full time, no ERC).
    for s in SCHEMES:
        assert result["With ERC - With RR"][s] <= result["No ERC - Full time"][s] * 1.05
