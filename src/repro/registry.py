"""Named-component registries: the single source of truth for
pluggable simulation pieces.

Schedulers, activation schemes, ERC policies, clustering algorithms and
target-mobility models all register here by name, each with an optional
*schema* describing the configuration knobs its factory consumes.  The
registries replace the if-chains that used to live in
``repro.sim.runner.make_scheduler`` and the name tuples in
``repro.sim.config`` — config validation, the runner, the CLI help
text, the experiment drivers and the benchmarks all consult the same
tables, so a new component is a single registration call away from
being selectable everywhere::

    from repro.registry import SCHEDULERS

    @SCHEDULERS.register("my-scheme", schema={"fleet_size": "RV count"})
    def _build(fleet_size):
        return MyScheduler()

    cfg = SimulationConfig.small(scheduler="my-scheme")  # now valid
    run_simulation(cfg)                                  # uses MyScheduler

Registration is idempotent only when ``replace=True`` is passed;
accidental double registration of the same name raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from .core.activation import FullTimeActivator, RoundRobinActivator
from .core.clustering import balanced_clustering, nearest_target_clustering
from .core.combined import CombinedScheduler
from .core.erc import AdaptiveEnergyRequestController, EnergyRequestController
from .core.extensions import (
    DeadlineAwareScheduler,
    FCFSScheduler,
    NearestFirstScheduler,
    TwoOptInsertionScheduler,
)
from .core.greedy import GreedyScheduler
from .core.insertion import InsertionScheduler
from .core.partition import PartitionScheduler
from .mobility.targets import TargetProcess
from .mobility.waypoint import RandomWaypointProcess

__all__ = [
    "ACTIVATORS",
    "CLUSTERINGS",
    "ComponentSpec",
    "ERC_POLICIES",
    "EXPORTERS",
    "MOBILITY_MODELS",
    "Registry",
    "SCHEDULERS",
    "erc_policy_name",
]


@dataclass(frozen=True)
class ComponentSpec:
    """One registered component.

    Attributes:
        name: the registry key (what a config string selects).
        factory: callable building a component instance.
        schema: mapping of factory keyword -> human description; the
            "config schema" a caller may pass to :meth:`Registry.build`.
        doc: one-line description (defaults to the factory's docstring).
    """

    name: str
    factory: Callable[..., Any]
    schema: Mapping[str, str] = field(default_factory=dict)
    doc: str = ""


class Registry:
    """A named factory table for one kind of pluggable component.

    Iteration and :meth:`names` preserve registration order, so the
    built-in (paper) components always list before extensions.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._specs: Dict[str, ComponentSpec] = {}

    # -- registration ------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        schema: Optional[Mapping[str, str]] = None,
        doc: str = "",
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``reg.register("x", build_x)``) or as a
        decorator (``@reg.register("x")``).  Raises ``ValueError`` on a
        duplicate name unless ``replace=True``.
        """

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if not name or not isinstance(name, str):
                raise ValueError(f"{self.kind} name must be a non-empty string")
            if name in self._specs and not replace:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override"
                )
            lines = (doc or fn.__doc__ or "").strip().splitlines()
            self._specs[name] = ComponentSpec(
                name=name,
                factory=fn,
                schema=dict(schema or {}),
                doc=lines[0] if lines else "",
            )
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests); raises on unknown."""
        if name not in self._specs:
            raise self.unknown(name)
        del self._specs[name]

    # -- lookup ------------------------------------------------------

    def spec(self, name: str) -> ComponentSpec:
        """The :class:`ComponentSpec` registered under ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise self.unknown(name) from None

    def get(self, name: str) -> Callable[..., Any]:
        """The raw factory registered under ``name``."""
        return self.spec(name).factory

    def build(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.spec(name).factory(**kwargs)

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._specs)

    def unknown(self, name: str) -> ValueError:
        """The error raised (or to raise) for an unknown name.

        The message always lists the currently registered names, so it
        can never drift from the registry contents.
        """
        return ValueError(
            f"unknown {self.kind} {name!r}; registered: {', '.join(self._specs)}"
        )

    def check(self, name: str) -> str:
        """Validate ``name`` is registered; returns it for chaining."""
        if name not in self._specs:
            raise self.unknown(name)
        return name

    # -- container protocol -----------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self._specs)})"


# ---------------------------------------------------------------------
# The domain registries
# ---------------------------------------------------------------------

#: Recharge schedulers; factories take ``fleet_size`` (the RV count).
SCHEDULERS = Registry("scheduler")

#: Sensor activation schemes; factories take ``cluster_set``.
ACTIVATORS = Registry("activation scheme")

#: Energy Request Control policies; factories take ``config``.
ERC_POLICIES = Registry("ERC policy")

#: Clustering algorithms; the factory *is* the algorithm
#: ``f(sensor_positions, target_positions, sensing_range_m)``.
CLUSTERINGS = Registry("clustering algorithm")

#: Target mobility models; factories take ``field``, ``config``, ``rng``.
MOBILITY_MODELS = Registry("target mobility model")

#: Telemetry exporters; factories take no arguments and return objects
#: with ``export(out_dir, bundle) -> List[Path]``.  The built-ins
#: (``jsonl``, ``prometheus``, ``csv``) register on import of
#: :mod:`repro.obs.exporters` (pulled in by the ``repro`` package).
EXPORTERS = Registry("telemetry exporter")


def erc_policy_name(adaptive_erp: bool) -> str:
    """The registered ERC-policy name a configuration selects."""
    return "adaptive" if adaptive_erp else "static"


# -- built-in schedulers (paper first, then extensions) ---------------

_FLEET_SCHEMA = {"fleet_size": "number of recharging vehicles"}

SCHEDULERS.register(
    "greedy",
    lambda fleet_size: GreedyScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Online Algorithm 2: each RV chases its max-profit node.",
)
SCHEDULERS.register(
    "insertion",
    lambda fleet_size: InsertionScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Online Algorithm 3: profit-ordered route insertion (single RV).",
)
SCHEDULERS.register(
    "partition",
    # An empty fleet never reaches assign(), so a 1-partition planner
    # is inert — but construction must not blow up for n_rvs = 0.
    lambda fleet_size: PartitionScheduler(max(fleet_size, 1)),
    schema=_FLEET_SCHEMA,
    doc="Partition-Scheme: K-means split, one insertion route per part.",
)
SCHEDULERS.register(
    "combined",
    lambda fleet_size: CombinedScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Combined-Scheme: sequential global insertion over the fleet.",
)
SCHEDULERS.register(
    "fcfs",
    lambda fleet_size: FCFSScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Extension: serve requests strictly in release order.",
)
SCHEDULERS.register(
    "nearest",
    lambda fleet_size: NearestFirstScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Extension: each RV repeatedly serves the nearest request.",
)
SCHEDULERS.register(
    "insertion+2opt",
    lambda fleet_size: TwoOptInsertionScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Extension: Algorithm 3 plus a 2-opt post-pass per route.",
)
SCHEDULERS.register(
    "deadline",
    lambda fleet_size: DeadlineAwareScheduler(),
    schema=_FLEET_SCHEMA,
    doc="Extension: insertion scheduling with a starvation guard.",
)

# -- built-in activation schemes --------------------------------------

ACTIVATORS.register(
    "round_robin",
    lambda cluster_set: RoundRobinActivator(cluster_set),
    schema={"cluster_set": "the current ClusterSet"},
    doc="The paper's scheme: one member monitors per rotation slot.",
)
ACTIVATORS.register(
    "full_time",
    lambda cluster_set: FullTimeActivator(cluster_set),
    schema={"cluster_set": "the current ClusterSet"},
    doc="Prior-work baseline: every alive member monitors continuously.",
)

# -- built-in ERC policies --------------------------------------------

ERC_POLICIES.register(
    "static",
    lambda config: EnergyRequestController(config.erp),
    schema={"config": "SimulationConfig (reads erp)"},
    doc="Fixed Energy Request Percentage (the paper's ERC).",
)
ERC_POLICIES.register(
    "adaptive",
    lambda config: AdaptiveEnergyRequestController(initial_erp=config.erp),
    schema={"config": "SimulationConfig (reads erp as the AIMD start)"},
    doc="AIMD-tuned ERP (beyond the paper; see repro.core.erc).",
)

# -- built-in clustering algorithms -----------------------------------

CLUSTERINGS.register(
    "balanced",
    balanced_clustering,
    schema={
        "sensor_positions": "(n, 2) alive-sensor coordinates",
        "target_positions": "(m, 2) target coordinates",
        "sensing_range_m": "detection radius",
    },
)
CLUSTERINGS.register(
    "nearest_target",
    nearest_target_clustering,
    schema={
        "sensor_positions": "(n, 2) alive-sensor coordinates",
        "target_positions": "(m, 2) target coordinates",
        "sensing_range_m": "detection radius",
    },
)

# -- built-in target mobility models ----------------------------------

MOBILITY_MODELS.register(
    "jump",
    lambda field, config, rng: TargetProcess(
        field, config.n_targets, config.target_period_s, rng
    ),
    schema={"field": "the sensing Field", "config": "SimulationConfig", "rng": "Generator"},
    doc="The paper's model: targets teleport every dwell period.",
)
MOBILITY_MODELS.register(
    "waypoint",
    lambda field, config, rng: RandomWaypointProcess(
        field,
        config.n_targets,
        config.target_period_s,
        rng,
        speed_mps=config.target_speed_mps,
    ),
    schema={"field": "the sensing Field", "config": "SimulationConfig", "rng": "Generator"},
    doc="Random-waypoint motion with per-leg speed (extension).",
)
