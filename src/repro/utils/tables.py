"""Plain-text table rendering for the experiment harness.

The benchmark scripts print the same rows/series the paper's figures
plot; this module renders them as aligned ASCII tables so the output of
``pytest benchmarks/`` reads like the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, float, int]


def _fmt(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row cells; floats are formatted to ``precision`` digits.
        precision: decimal places for float cells.
        title: optional title line above the table.
    """
    str_rows: List[List[str]] = [[_fmt(c, precision) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[Cell],
    series: dict,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render one figure's line series as a table: x column + one column
    per named series (exactly how the paper's ERP-sweep figures read)."""
    headers = [x_name] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, precision=precision, title=title)
