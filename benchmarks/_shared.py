"""Shared state for the benchmark suite.

The ERP sweep behind Figs. 5, 6(a-d) and 7(a-b) is expensive (18
simulations per seed at the bench scale), so it is computed once per
pytest session and shared by every panel's benchmark.  Each benchmark
still *prints and persists* its own figure table under
``benchmarks/results/``: the ASCII table as ``<name>.txt`` and a
machine-readable ``BENCH_<name>.json`` companion carrying the scale and
the shared cProfile phase timings.

Scale selection: set ``REPRO_SCALE`` to ``smoke`` (CI), ``bench``
(default) or ``paper`` (the EXPERIMENTS.md numbers).

Profiling: set ``REPRO_BENCH_PROFILE=1`` and the shared sweeps run
under :func:`repro.utils.profiling.profile_call`; every
``BENCH_*.json`` then includes a ``"profile"`` block with per-phase
cumulative timings (clustering / dispatch / scheduler assign / energy
advance — the same phases ``repro run --telemetry`` timers report) plus
the overall hottest functions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments import current_scale, run_fig4, run_fig6
from repro.obs.manifest import git_revision
from repro.utils.profiling import profile_call

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "") not in ("", "0")

#: Phase-defining functions whose cumulative time is lifted out of the
#: cProfile rows — mirrors the `repro run --telemetry` phase timers.
_PHASE_MARKERS = {
    "clustering": "(rebuild)",
    "dispatch": "(dispatch)",
    "scheduler_assign": "(assign)",
    "energy_advance": "(advance)",
    "energy_recompute": "(recompute)",
    "gate_check": "(check)",
}

_sweep_cache: Optional[Dict] = None
_fig4_cache: Optional[Dict] = None
_profiles: Dict[str, List[Tuple[str, int, float, float]]] = {}


def _compute(label: str, fn: Callable[[], Dict]) -> Dict:
    """Run a shared computation, optionally under the cProfile hook."""
    if not PROFILE:
        return fn()
    result, rows = profile_call(fn, top=200)
    _profiles[label] = rows
    return result


def get_sweep() -> Dict:
    """The seed-averaged ERP x scheme sweep (computed once)."""
    global _sweep_cache
    if _sweep_cache is None:
        _sweep_cache = _compute("fig6_sweep", lambda: run_fig6(current_scale()))
    return _sweep_cache


def get_fig4() -> Dict:
    """The 12-cell activity-management comparison (computed once)."""
    global _fig4_cache
    if _fig4_cache is None:
        _fig4_cache = _compute("fig4", lambda: run_fig4(current_scale()))
    return _fig4_cache


def _phase_timings(rows: List[Tuple[str, int, float, float]]) -> Dict[str, Dict[str, float]]:
    """Per-phase cumulative seconds extracted from cProfile rows."""
    phases: Dict[str, Dict[str, float]] = {}
    for phase, marker in _PHASE_MARKERS.items():
        for location, ncalls, _tottime, cumtime in rows:
            if location.endswith(marker) and "/repro/" in location.replace("\\", "/"):
                phases[phase] = {"ncalls": ncalls, "cumtime_s": cumtime}
                break
    return phases


def _profile_payload() -> Dict[str, Any]:
    """The ``"profile"`` block for BENCH json files (empty when off)."""
    out: Dict[str, Any] = {}
    for label, rows in _profiles.items():
        out[label] = {
            "phases": _phase_timings(rows),
            "top": [
                {"function": loc, "ncalls": n, "tottime_s": tot, "cumtime_s": cum}
                for loc, n, tot, cum in rows[:15]
            ],
        }
    return out


def emit(name: str, table: str, extra: Optional[Dict[str, Any]] = None) -> None:
    """Print a figure table and persist it under benchmarks/results/.

    Writes the human table as ``<name>.txt`` and a machine-readable
    ``BENCH_<name>.json`` (table, scale, and — with
    ``REPRO_BENCH_PROFILE=1`` — the shared per-phase timings).
    ``extra`` merges additional JSON-serializable fields into the
    payload (the wall-clock benchmarks record speedups and worker
    counts this way).

    Every call also appends a summary row (UTC timestamp, git revision,
    scale, and any ``speedup*``, ``t_*`` or ``overhead*`` fields from
    ``extra``) to the file's ``"history"`` list, preserved across runs
    — so perf trends are machine-readable without scraping old CI logs,
    and ``repro drift BENCH_<name>.json`` can diff the last two rows.
    The list is capped at ``REPRO_BENCH_HISTORY_MAX`` rows (default
    200, newest kept), so long-lived checkouts don't grow the json
    files without bound.
    """
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    json_path = RESULTS_DIR / f"BENCH_{name}.json"
    payload: Dict[str, Any] = {
        "name": name,
        "scale": os.environ.get("REPRO_SCALE", "bench"),
        "table": table,
        "profiled": PROFILE,
    }
    if extra:
        payload.update(extra)
    if PROFILE:
        payload["profile"] = _profile_payload()
    payload["history"] = _previous_history(json_path)
    payload["history"].append(_history_row(payload))
    payload["history"] = payload["history"][-history_max():]
    json_path.write_text(json.dumps(payload, indent=2) + "\n")


def history_max() -> int:
    """Cap on ``"history"`` rows per ``BENCH_*.json``
    (``REPRO_BENCH_HISTORY_MAX``, default 200; oldest rows trimmed)."""
    value = os.environ.get("REPRO_BENCH_HISTORY_MAX", "").strip()
    if not value:
        return 200
    try:
        n = int(value)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BENCH_HISTORY_MAX must be an integer, got {value!r}"
        ) from exc
    if n < 1:
        raise ValueError("REPRO_BENCH_HISTORY_MAX must be >= 1")
    return n


def _previous_history(json_path: pathlib.Path) -> List[Dict[str, Any]]:
    """The ``"history"`` rows of an earlier ``BENCH_*.json``, if any."""
    try:
        previous = json.loads(json_path.read_text())
    except (OSError, ValueError):
        return []
    history = previous.get("history", [])
    return history if isinstance(history, list) else []


def _history_row(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One machine-readable summary row for the history trail."""
    row: Dict[str, Any] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(pathlib.Path(__file__).parent),
        "scale": payload["scale"],
    }
    for key, value in payload.items():
        if (key.startswith("speedup") or key == "speedups"
                or key.startswith("t_") or key.startswith("overhead")):
            row[key] = value
    return row
