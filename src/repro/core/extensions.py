"""Scheduler extensions beyond the paper's four algorithms.

The paper's related work and future-work directions motivate three
additions, built on the same :class:`~repro.core.scheduling.Scheduler`
interface so they drop into the simulator and the benchmarks:

* :class:`FCFSScheduler` — first-come-first-served: requests are served
  strictly in release order.  The classic fairness baseline.
* :class:`NearestFirstScheduler` — each RV repeatedly serves its
  nearest pending request, ignoring demands.  The pure-distance
  counterpart of the paper's profit-greedy baseline.
* :class:`TwoOptInsertionScheduler` — Algorithm 3 followed by a 2-opt
  improvement pass over the planned waypoints (ablation A3, online).
* :class:`DeadlineAwareScheduler` — insertion scheduling with a
  starvation guard in the spirit of the capacity/deadline-constrained
  scheduling of Wang et al. [10]: requests older than ``urgency_age_s``
  preempt the profit objective and are planned first.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..geometry.points import distance
from ..tsp.tour import open_tour_length
from ..tsp.two_opt import two_opt
from .insertion import InsertionScheduler, plan_single_rv_chained
from .requests import RechargeNodeList, RechargeRequest
from .scheduling import PlannedRoute, RVView

__all__ = [
    "FCFSScheduler",
    "NearestFirstScheduler",
    "TwoOptInsertionScheduler",
    "DeadlineAwareScheduler",
]


def _chain_route(picked: List[RechargeRequest], rv: RVView) -> PlannedRoute:
    waypoints = np.vstack([rv.position] + [r.position for r in picked])
    seg = np.diff(waypoints, axis=0)
    travel = float(np.hypot(seg[:, 0], seg[:, 1]).sum())
    demand = float(sum(r.demand_j for r in picked))
    return PlannedRoute(
        node_ids=tuple(r.node_id for r in picked),
        waypoints=waypoints,
        travel_m=travel,
        demand_j=demand,
        profit_j=demand - rv.em_j_per_m * travel,
    )


class FCFSScheduler:
    """Serve requests strictly in release order, chained per RV."""

    name = "fcfs"

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        plans: Dict[int, PlannedRoute] = {}
        queue = sorted(requests.snapshot(), key=lambda r: (r.release_time_s, r.node_id))
        for rv in idle_rvs:
            picked: List[RechargeRequest] = []
            position = rv.position
            budget = rv.budget_j
            while queue:
                nxt = queue[0]
                cost = distance(position, nxt.position) * rv.em_j_per_m + rv.delivery_cost(
                    nxt.demand_j
                )
                if cost > budget + 1e-9:
                    break
                queue.pop(0)
                picked.append(nxt)
                budget -= cost
                position = nxt.position
            if picked:
                plans[rv.rv_id] = _chain_route(picked, rv)
                requests.remove_many(p.node_id for p in picked)
        return plans


class NearestFirstScheduler:
    """Each RV repeatedly serves the nearest pending request."""

    name = "nearest"

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        plans: Dict[int, PlannedRoute] = {}
        for rv in idle_rvs:
            picked: List[RechargeRequest] = []
            position = rv.position
            budget = rv.budget_j
            while True:
                snapshot = requests.snapshot()
                if not snapshot:
                    break
                dists = [distance(position, r.position) for r in snapshot]
                nxt = snapshot[int(np.argmin(dists))]
                cost = min(dists) * rv.em_j_per_m + rv.delivery_cost(nxt.demand_j)
                if cost > budget + 1e-9:
                    break
                requests.remove(nxt.node_id)
                picked.append(nxt)
                budget -= cost
                position = nxt.position
            if picked:
                plans[rv.rv_id] = _chain_route(picked, rv)
        return plans


class TwoOptInsertionScheduler(InsertionScheduler):
    """Algorithm 3 plus a 2-opt post-pass on each planned route.

    The RV's start stays fixed; the interior visiting order (and the
    final stop) may be reordered whenever that shortens the path.
    """

    name = "insertion+2opt"

    def __init__(self, max_rounds: int = 25) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = max_rounds

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        em_by_rv = {v.rv_id: v.em_j_per_m for v in idle_rvs}
        plans = super().assign(requests, idle_rvs, rng)
        improved: Dict[int, PlannedRoute] = {}
        for rv_id, plan in plans.items():
            if len(plan) < 3:
                improved[rv_id] = plan
                continue
            pts = plan.waypoints  # row 0 is the RV position (stays pinned)
            order = two_opt(pts, list(range(len(pts))), max_rounds=self.max_rounds)
            new_nodes = tuple(plan.node_ids[i - 1] for i in order[1:])
            new_wp = pts[order]
            travel = open_tour_length(new_wp, list(range(len(new_wp))))
            improved[rv_id] = PlannedRoute(
                node_ids=new_nodes,
                waypoints=new_wp,
                travel_m=travel,
                demand_j=plan.demand_j,
                profit_j=plan.demand_j - em_by_rv[rv_id] * travel,
            )
        return improved


class DeadlineAwareScheduler:
    """Insertion scheduling with a starvation guard.

    Requests that have waited longer than ``urgency_age_s`` become
    *urgent*: while any exist, planning considers only them, so aged
    nodes cannot be perpetually out-bid by fresher, more profitable
    ones.  The world feeds the current time via :meth:`observe_time`.
    """

    name = "deadline"

    def __init__(self, urgency_age_s: float = 6 * 3600.0) -> None:
        if urgency_age_s <= 0:
            raise ValueError("urgency_age_s must be positive")
        self.urgency_age_s = urgency_age_s
        self.now_s = 0.0

    def observe_time(self, now_s: float) -> None:
        """Called by the world before each scheduling round."""
        self.now_s = float(now_s)

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        plans: Dict[int, PlannedRoute] = {}
        for rv in idle_rvs:
            snapshot = requests.snapshot()
            if not snapshot:
                break
            urgent = [
                r for r in snapshot if self.now_s - r.release_time_s >= self.urgency_age_s
            ]
            pool = urgent if urgent else snapshot
            plan = plan_single_rv_chained(list(pool), rv)
            if plan is None or len(plan) == 0:
                continue
            plans[rv.rv_id] = plan
            requests.remove_many(plan.node_ids)
        return plans
