"""Fig. 7(a) — total energy recharged into the network vs ERP.

Paper shape: declines slightly with ERP (fewer nodes on the list) and
the Combined-Scheme recharges the most thanks to its global view.
"""

import numpy as np

from repro.experiments import ERP_GRID
from repro.experiments.fig7_profit import format_fig7_panel, panel_a

from _shared import emit, get_sweep


def bench_fig7a_energy_recharged(benchmark):
    series = benchmark.pedantic(lambda: panel_a(get_sweep()), rounds=1, iterations=1)
    emit("fig7a_energy_recharged", format_fig7_panel("a", series, ERP_GRID))
    means = {s: float(np.mean(v)) for s, v in series.items()}
    # Shape: all schemes deliver the same order of magnitude; combined
    # is not the weakest deliverer.
    assert means["combined"] >= min(means.values())
    assert max(means.values()) <= 1.5 * min(means.values())
