"""Tests for the per-category network energy breakdown."""

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


def make(**overrides):
    defaults = dict(
        n_sensors=40,
        n_targets=3,
        n_rvs=1,
        side_length_m=60.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=400.0,
        initial_charge_range=(0.6, 0.9),
        dispatch_period_s=1800.0,
        seed=12,
    )
    defaults.update(overrides)
    return World(SimulationConfig(**defaults))


class TestEnergyBreakdown:
    def test_all_categories_present(self):
        w = make()
        w.run()
        bd = w.energy_breakdown()
        assert set(bd) == {"idle", "sensing", "relay", "leakage", "notifications"}
        assert all(v >= 0 for v in bd.values())
        assert bd["notifications"] > 0  # round robin hands off constantly

    def test_sensing_dominates_idle_per_node(self):
        """With a PIR at 10 mA active vs ~0.5 mW idle, the per-node
        sensing draw dwarfs idle — the breakdown must reflect scale."""
        w = make()
        w.run()
        bd = w.energy_breakdown()
        # ~3 active sensors at 30 mW vs 40 idle at ~0.5 mW.
        assert bd["sensing"] > bd["idle"]

    def test_leakage_zero_by_default(self):
        w = make()
        w.run()
        assert w.energy_breakdown()["leakage"] == 0.0

    def test_leakage_accumulates_when_enabled(self):
        w = make(self_discharge_fraction_per_day=0.05)
        w.run()
        assert w.energy_breakdown()["leakage"] > 0.0

    def test_breakdown_bounds_total_drain(self):
        """Total categorized energy >= energy actually withdrawn from
        batteries net of recharges (clamping at empty only loses energy
        from the categories' upper bound)."""
        w = make()
        initial = w.bank.levels_j.sum()
        s = w.run()
        final = w.bank.levels_j.sum()
        consumed = initial - final + s.delivered_energy_j
        total_categorized = sum(w.energy_breakdown().values())
        assert total_categorized >= consumed - 1e-6

    def test_full_time_sensing_share_larger(self):
        rr = make(seed=3)
        rr.run()
        ft = make(seed=3, activation="full_time")
        ft.run()
        assert ft.energy_breakdown()["sensing"] > rr.energy_breakdown()["sensing"]
