"""Run manifests: the provenance record written next to results.

A :class:`RunManifest` answers "what exactly produced these numbers?"
— the full configuration and its digest, the seed, the package version,
the git revision of the working tree (best-effort, read straight from
``.git`` without spawning a process), wall-clock cost, the instrument
snapshot and the exporter files.  ``manifest.json`` is written alongside
the telemetry exports, so archived runs stay self-describing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["RunManifest", "config_digest", "git_revision"]

MANIFEST_FILENAME = "manifest.json"


def config_digest(config: Dict[str, Any]) -> str:
    """A stable SHA-256 digest of a configuration dict.

    Keys are sorted so the digest depends on the configuration's
    *content*, not on dict ordering; two runs with equal digests and
    equal seeds are replays of each other.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def git_revision(start: Union[str, Path, None] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a repository.

    Reads ``.git/HEAD`` (and the ref it points to) directly — no
    subprocess, no git dependency — walking up from ``start``.
    """
    path = Path(start) if start is not None else Path.cwd()
    for candidate in [path, *path.parents]:
        git_dir = candidate / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = head.split(None, 1)[1]
                ref_file = git_dir / ref
                if ref_file.is_file():
                    return ref_file.read_text().strip()
                packed = git_dir / "packed-refs"
                if packed.is_file():
                    for line in packed.read_text().splitlines():
                        if line.endswith(" " + ref):
                            return line.split()[0]
                return None
            return head or None
        except OSError:
            return None
    return None


@dataclass(frozen=True)
class RunManifest:
    """Provenance + outcome of one telemetry-enabled run."""

    created_utc: str
    repro_version: str
    git_rev: Optional[str]
    seed: int
    config: Dict[str, Any]
    config_digest: str
    wall_time_s: float
    summary: Dict[str, float] = field(default_factory=dict)
    instruments: Dict[str, Any] = field(default_factory=dict)
    exporters: List[str] = field(default_factory=list)
    files: Dict[str, List[str]] = field(default_factory=dict)
    #: Which engine knobs produced the run (REPRO_SOA / REPRO_VECTORIZE
    #: / ...) — see :func:`repro.sim.soa.engine_provenance`.  Lets a
    #: drift report distinguish "the code changed" from "the engine
    #: selection changed".  Empty for pre-SoA manifests.
    engine: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        config: Dict[str, Any],
        seed: int,
        wall_time_s: float,
        summary: Optional[Dict[str, float]] = None,
        instruments: Optional[Dict[str, Any]] = None,
        exporters: Optional[List[str]] = None,
        files: Optional[Dict[str, List[str]]] = None,
        engine: Optional[Dict[str, Any]] = None,
    ) -> "RunManifest":
        """Stamp a manifest for ``config``: digest, version, git rev, time."""
        from .. import __version__

        return cls(
            created_utc=datetime.now(timezone.utc).isoformat(),
            repro_version=__version__,
            git_rev=git_revision(),
            seed=seed,
            config=dict(config),
            config_digest=config_digest(config),
            wall_time_s=wall_time_s,
            summary=dict(summary or {}),
            instruments=dict(instruments or {}),
            exporters=list(exporters or []),
            files=dict(files or {}),
            engine=dict(engine or {}),
        )

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def write(self, path: Union[str, Path]) -> Path:
        """Write the manifest as JSON; returns the path written.

        A directory path gets the conventional ``manifest.json`` name.
        """
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest from a JSON file (or a telemetry directory)."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_FILENAME
        return cls.from_dict(json.loads(path.read_text()))
