"""Mobile entities: targets and recharging vehicles."""

from .targets import TargetProcess
from .vehicles import RechargingVehicle, RVStats
from .waypoint import RandomWaypointProcess

__all__ = ["RandomWaypointProcess", "RechargingVehicle", "RVStats", "TargetProcess"]
