"""Failure-injection and degenerate-configuration tests.

The simulation must stay well-defined when the deployment is hostile:
disconnected networks, starved fleets, clusters that die wholesale,
sorties that cannot fit a single demand.
"""

import numpy as np
import pytest

from repro.energy.recharge import ChargeModel
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


def run_world(**overrides):
    defaults = dict(
        n_sensors=40,
        n_targets=3,
        n_rvs=1,
        side_length_m=60.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=400.0,
        initial_charge_range=(0.5, 0.8),
        dispatch_period_s=1800.0,
        seed=8,
    )
    defaults.update(overrides)
    w = World(SimulationConfig(**defaults))
    return w, w.run()


class TestDegenerateTopologies:
    def test_sparse_disconnected_network(self):
        """Short comm range leaves most sensors unroutable — the world
        must still run; disconnected sensors just don't relay."""
        w, s = run_world(comm_range_m=3.0)
        assert s.sim_time_s > 0
        assert np.isfinite(s.avg_coverage_ratio)

    def test_single_sensor(self):
        w, s = run_world(n_sensors=1, n_targets=1)
        assert 0.0 <= s.avg_coverage_ratio <= 1.0

    def test_no_sensors(self):
        w, s = run_world(n_sensors=0, n_targets=2)
        assert s.avg_nonfunctional_fraction == 0.0
        assert s.n_requests == 0

    def test_more_targets_than_sensors(self):
        w, s = run_world(n_sensors=5, n_targets=20)
        assert s.sim_time_s > 0

    def test_tiny_field(self):
        w, s = run_world(side_length_m=5.0)
        assert s.n_requests >= 0


class TestStarvedFleet:
    def test_sortie_smaller_than_single_demand(self):
        """Cr below one node's demand: nothing can ever be scheduled,
        nodes deplete, and the run still terminates cleanly."""
        w, s = run_world(rv_capacity_j=50.0, sim_time_s=1 * DAY_S)
        assert s.n_recharges == 0
        assert s.avg_nonfunctional_fraction >= 0.0

    def test_absurdly_slow_charging(self):
        w, s = run_world(charge_model=ChargeModel(power_w=1e-3), sim_time_s=0.5 * DAY_S)
        # Few (if any) charges complete; accounting must stay consistent.
        assert s.delivered_energy_j >= 0.0
        assert s.objective_j == pytest.approx(s.delivered_energy_j - s.traveling_energy_j)

    def test_lossy_wireless_transfer(self):
        w, s = run_world(charge_model=ChargeModel(power_w=2.0, efficiency=0.5))
        # The RV budget is debited twice the delivered energy.
        if s.n_recharges > 0:
            assert s.delivered_energy_j > 0

    def test_everything_dies_without_rvs(self):
        w, s = run_world(n_rvs=0, sim_time_s=4 * DAY_S)
        assert s.n_recharges == 0
        # With a 400 J battery at >= idle power, four days kill sensors.
        assert s.avg_nonfunctional_fraction > 0.0
        # Clusters of dead sensors lose their targets.
        assert s.avg_coverage_ratio < 1.0


class TestWholeClusterDeath:
    def test_cluster_death_then_revival(self):
        """High ERP + tiny batteries force whole-cluster deaths; RVs
        must revive nodes and coverage must recover."""
        w, s = run_world(
            erp=1.0,
            battery_capacity_j=150.0,
            sim_time_s=2 * DAY_S,
            target_period_s=2 * DAY_S,
            n_rvs=2,
        )
        assert s.n_recharges > 0
        # Some depletion happened but the system did not collapse.
        assert s.avg_coverage_ratio > 0.3

    def test_dead_sensors_excluded_from_new_clusters(self):
        w = World(
            SimulationConfig(
                n_sensors=30,
                n_targets=2,
                n_rvs=0,
                side_length_m=40.0,
                sim_time_s=3 * DAY_S,
                battery_capacity_j=150.0,
                initial_charge_range=(0.3, 0.5),
                seed=1,
            )
        )
        w.sim.run_until(2.5 * DAY_S)
        w._advance_energy()
        w.targets.relocate()
        w._rebuild_clusters()
        dead = ~w.bank.alive_mask()
        for c in w.cluster_set:
            assert not np.any(dead[c.members])


class TestDispatchModes:
    def test_dispatch_on_idle(self):
        w, s = run_world(dispatch_on_idle=True)
        assert s.n_recharges > 0

    def test_long_dispatch_period_delays_service(self):
        _, fast = run_world(dispatch_period_s=900.0, seed=3)
        _, slow = run_world(dispatch_period_s=4 * 3600.0, seed=3)
        if fast.n_recharges and slow.n_recharges:
            assert slow.mean_request_latency_s >= fast.mean_request_latency_s * 0.8


class TestExtremeERP:
    @pytest.mark.parametrize("erp", [0.0, 0.5, 1.0])
    def test_erp_extremes_run(self, erp):
        w, s = run_world(erp=erp)
        assert s.sim_time_s > 0

    def test_full_time_high_erp(self):
        w, s = run_world(activation="full_time", erp=1.0)
        assert s.n_requests >= 0
