"""Battery models.

Two flavours live here:

* :class:`Battery` — a scalar battery used by the recharging vehicles.
* :class:`BatteryBank` — a vectorized bank of N identical sensor
  batteries backed by a single NumPy array, so the simulator can drain
  and query the whole network at once.

The paper equips sensors with two AAA Panasonic Ni-MH cells behind a
3 V regulator [15].  We model the pack as a linear energy reservoir of
capacity ``Ec`` Joules with a recharge threshold ``Eth`` (Table II sets
``Eth = 50%`` of ``Ec``).  Energy demand of a node — the quantity the
schedulers maximize — is ``Ec - level`` (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["Battery", "BatteryBank", "DEFAULT_SENSOR_CAPACITY_J"]

#: Two AAA Ni-MH cells (~750 mAh each, in series behind a 3 V supply):
#: 0.75 Ah * 3600 s/h * 3 V ~= 8.1 kJ of usable pack energy.
DEFAULT_SENSOR_CAPACITY_J = 8100.0


@dataclass
class Battery:
    """A single linear battery with capacity ``capacity_j`` Joules."""

    capacity_j: float
    level_j: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("capacity_j must be positive")
        if self.level_j is None:
            self.level_j = self.capacity_j
        if not 0.0 <= self.level_j <= self.capacity_j:
            raise ValueError("level_j must lie in [0, capacity_j]")

    @property
    def demand_j(self) -> float:
        """Energy needed to refill: ``capacity - level``."""
        return self.capacity_j - self.level_j

    @property
    def fraction(self) -> float:
        """State of charge in ``[0, 1]``."""
        return self.level_j / self.capacity_j

    def is_depleted(self) -> bool:
        return self.level_j <= 0.0

    def drain(self, amount_j: float) -> float:
        """Remove up to ``amount_j``; returns the energy actually drawn.

        Draining clamps at empty rather than going negative — a depleted
        node simply stops operating (paper: "nonfunctional").
        """
        if amount_j < 0:
            raise ValueError("amount_j must be non-negative")
        drawn = min(amount_j, self.level_j)
        self.level_j -= drawn
        return drawn

    def charge(self, amount_j: float) -> float:
        """Add up to ``amount_j``; returns the energy actually stored."""
        if amount_j < 0:
            raise ValueError("amount_j must be non-negative")
        stored = min(amount_j, self.capacity_j - self.level_j)
        self.level_j += stored
        return stored

    def refill(self) -> float:
        """Charge to full; returns the energy added."""
        added = self.capacity_j - self.level_j
        self.level_j = self.capacity_j
        return added


class BatteryBank:
    """N identical sensor batteries stored as one float64 vector.

    All mutating operations are vectorized; indexing accepts anything
    NumPy fancy-indexing accepts.  Levels are clamped to
    ``[0, capacity]`` — sensors neither overcharge nor hold debt.

    Args:
        n: number of batteries.
        capacity_j: per-battery capacity in Joules.
        threshold_fraction: recharge threshold ``Eth`` as a fraction of
            capacity (Table II: 0.5).
        initial_fraction: initial state of charge (default full).
    """

    def __init__(
        self,
        n: int,
        capacity_j: float = DEFAULT_SENSOR_CAPACITY_J,
        threshold_fraction: float = 0.5,
        initial_fraction: float = 1.0,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if capacity_j <= 0:
            raise ValueError("capacity_j must be positive")
        if not 0.0 <= threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must lie in [0, 1]")
        if not 0.0 <= initial_fraction <= 1.0:
            raise ValueError("initial_fraction must lie in [0, 1]")
        self.capacity_j = float(capacity_j)
        self.threshold_fraction = float(threshold_fraction)
        self.levels_j = np.full(n, capacity_j * initial_fraction, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.levels_j)

    @property
    def threshold_j(self) -> float:
        """Absolute recharge threshold ``Eth`` in Joules."""
        return self.capacity_j * self.threshold_fraction

    @property
    def demands_j(self) -> np.ndarray:
        """Per-node energy demand ``d_i = Ec - level_i`` (Section IV-A)."""
        return self.capacity_j - self.levels_j

    @property
    def fractions(self) -> np.ndarray:
        """Per-node state of charge in ``[0, 1]``."""
        return self.levels_j / self.capacity_j

    def depleted_mask(self) -> np.ndarray:
        """Nodes with no energy left ("nonfunctional" in the paper)."""
        return self.levels_j <= 0.0

    def alive_mask(self) -> np.ndarray:
        """Nodes still holding energy."""
        return self.levels_j > 0.0

    def below_threshold_mask(self) -> np.ndarray:
        """Nodes whose energy has fallen below ``Eth``."""
        return self.levels_j < self.threshold_j

    def drain_rates(
        self,
        rates_w: np.ndarray,
        dt_s: float,
        scratch: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every battery by ``dt_s`` seconds at per-node draw
        ``rates_w`` (Watts), clamping at empty.

        This is the simulator's analytic piecewise-linear energy step:
        between events the power vector is constant, so one vectorized
        multiply-subtract advances the entire network.  ``scratch``, a
        caller-owned float64 buffer of bank shape, receives the
        ``rates * dt`` product so the steady-state advance allocates
        nothing (the SoA tick engine passes its preallocated scratch);
        the arithmetic is identical either way.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        rates_w = np.asarray(rates_w, dtype=np.float64)
        if rates_w.shape != self.levels_j.shape:
            raise ValueError(f"rates shape {rates_w.shape} != bank shape {self.levels_j.shape}")
        if np.any(rates_w < 0):
            raise ValueError("power draws must be non-negative")
        if scratch is not None and scratch.shape == self.levels_j.shape:
            drained = np.multiply(rates_w, dt_s, out=scratch)
        else:
            drained = rates_w * dt_s
        np.subtract(self.levels_j, drained, out=self.levels_j)
        np.clip(self.levels_j, 0.0, self.capacity_j, out=self.levels_j)

    def drain_energy(self, idx, amount_j: float) -> None:
        """Subtract a lump ``amount_j`` from the nodes in ``idx``
        (e.g. a notification packet), clamping at empty."""
        if amount_j < 0:
            raise ValueError("amount_j must be non-negative")
        self.levels_j[idx] = np.maximum(self.levels_j[idx] - amount_j, 0.0)

    def charge_to_full(self, idx) -> float:
        """Refill the nodes in ``idx``; returns total energy delivered."""
        before = self.levels_j[idx]
        delivered = float(np.sum(self.capacity_j - before))
        self.levels_j[idx] = self.capacity_j
        return delivered

    def time_to_level(self, idx: int, level_j: float, rate_w: float) -> float:
        """Seconds until node ``idx`` crosses ``level_j`` draining at
        ``rate_w`` Watts; ``inf`` if it never will."""
        if rate_w <= 0:
            return float("inf")
        gap = self.levels_j[idx] - level_j
        if gap <= 0:
            return 0.0
        return float(gap / rate_w)
