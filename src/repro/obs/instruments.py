"""Lightweight run-time instruments: counters, gauges, histograms, timers.

The simulation components record what they do — dispatch rounds, ERC
releases, re-clusterings, battery depletions — and how long the hot
phases take, through a small set of instruments owned by one
:class:`Instruments` registry per run.  Instrumentation follows the
same opt-in contract as :class:`repro.sim.trace.TraceRecorder`: the
default :class:`NullInstruments` hands out shared no-op singletons, so
a run without telemetry pays a single attribute load per touch point
and nothing else.

Instruments are identified by dotted names (``fleet.dispatch``,
``gate.requests_released``); exporters (:mod:`repro.obs.exporters`)
translate those names into their own conventions.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instruments",
    "NullInstruments",
    "NULL_INSTRUMENTS",
    "PhaseTimer",
]


class Counter:
    """A monotonically increasing total (events, Joules, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that can move both ways (backlog size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary of observed values (count/total/min/max).

    Keeps O(1) state rather than the raw samples: per-sample series
    belong in the trace recorder, which timestamps them.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        """The JSON-friendly view used by snapshots and exporters."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class PhaseTimer(Histogram):
    """A wall-clock stopwatch histogram usable as a context manager.

    Re-entrant (nested ``with`` blocks on the same timer each record
    their own duration), so a phase that indirectly re-enters itself
    through the event engine still books correctly.
    """

    __slots__ = ("_starts",)

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._starts: List[float] = []

    def __enter__(self) -> "PhaseTimer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.observe(time.perf_counter() - self._starts.pop())


class Instruments:
    """The per-run instrument registry.

    ``counter`` / ``gauge`` / ``histogram`` / ``timer`` get-or-create by
    name, so components can look their instruments up at construction
    and share totals with dynamically named ones (``fleet.rv0.sorties``).
    A name is bound to the first instrument kind that claimed it;
    re-requesting it as a different kind raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: type) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = kind(name)
        elif type(inst) is not kind:
            raise ValueError(
                f"instrument {name!r} is a {type(inst).__name__}, not a {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> PhaseTimer:
        return self._get(name, PhaseTimer)

    def names(self) -> List[str]:
        """All instrument names, in creation order."""
        return list(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-friendly dump of every instrument, grouped by kind.

        Timer durations are reported in seconds under ``timers``;
        creation order is preserved inside each group.
        """
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }
        for name, inst in self._instruments.items():
            if isinstance(inst, PhaseTimer):
                s = inst.summary()
                out["timers"][name] = {
                    "count": s["count"],
                    "total_s": s["total"],
                    "min_s": s["min"],
                    "max_s": s["max"],
                    "mean_s": s["mean"],
                }
            elif isinstance(inst, Histogram):
                out["histograms"][name] = inst.summary()
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["counters"][name] = inst.value
        return out


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class _NullTimer(_NullHistogram):
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class NullInstruments:
    """The zero-overhead fast path (mirrors ``trace.NullRecorder``).

    Every accessor returns a shared no-op singleton, so instrumented
    code needs no conditionals: ``with self._t_dispatch:`` costs two
    empty method calls when telemetry is off.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}


#: The shared default; components fall back to it when no instruments
#: are attached (one instance is enough — it holds no state).
NULL_INSTRUMENTS = NullInstruments()
