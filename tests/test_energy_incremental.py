"""The incremental rate-recomputation fast path (EnergyAccounting).

Contract under test: with the fast path on (the default), every
simulated trajectory — rates, breakdowns, summaries — is *bit-identical*
to the full-recompute baseline, the goldens stay untouched, and the
env knobs (``REPRO_INCREMENTAL``, ``REPRO_DEBUG_INCREMENTAL``) behave.
"""

import numpy as np
import pytest

from repro.obs import Instruments
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.world import World


def _cfg(**overrides):
    base = dict(sim_time_s=3 * DAY_S, seed=7, scheduler="combined", erp=0.6)
    base.update(overrides)
    return SimulationConfig.experiment(**base)


def _run(monkeypatch, incremental: str, **overrides):
    monkeypatch.setenv("REPRO_INCREMENTAL", incremental)
    return run_simulation(_cfg(**overrides)).as_dict()


@pytest.mark.parametrize("scheduler", ["greedy", "partition", "combined"])
def test_incremental_matches_full_exactly(monkeypatch, scheduler):
    full = _run(monkeypatch, "0", scheduler=scheduler)
    fast = _run(monkeypatch, "1", scheduler=scheduler)
    assert fast == full  # exact float equality, not approx


def test_incremental_matches_full_with_rotation_and_relocation(monkeypatch):
    # Shorter target period -> more rotations + relocations (cluster
    # rebuilds), the events the dirty-set diffing must absorb.
    from repro.sim.config import HOUR_S

    full = _run(monkeypatch, "0", target_period_s=3 * HOUR_S)
    fast = _run(monkeypatch, "1", target_period_s=3 * HOUR_S)
    assert fast == full


def test_debug_assert_mode_passes(monkeypatch):
    # REPRO_DEBUG_INCREMENTAL=1 re-runs the full pass after every
    # incremental one and raises on any divergence; a clean run is the
    # strongest per-recompute equality check we have.
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    monkeypatch.setenv("REPRO_DEBUG_INCREMENTAL", "1")
    summary = run_simulation(_cfg())
    assert summary.sim_time_s == pytest.approx(3 * DAY_S)


def test_env_knob_disables_incremental(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "0")
    world = World(_cfg())
    assert not world.energy.incremental_enabled


def test_leakage_forces_full_recompute(monkeypatch):
    # Leakage re-prices every alive sensor from its charge level, so
    # the fast path must refuse to engage.
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    world = World(_cfg(self_discharge_fraction_per_day=0.01))
    assert not world.energy.incremental_enabled


def test_recompute_path_counters(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    obs = Instruments()
    world = World(_cfg(), instruments=obs)
    world.run()
    snap = obs.snapshot()
    counters = snap["counters"]
    # The constructor's priming pass is always full; steady state runs
    # incremental.
    assert counters["energy.recompute.full"] >= 1
    assert counters["energy.recompute.incremental"] > 0
    assert counters["energy.recompute.incremental"] > counters["energy.recompute.full"]


def test_force_full_recomputes_identically(monkeypatch):
    monkeypatch.setenv("REPRO_INCREMENTAL", "1")
    world = World(_cfg())
    world.energy.apply_handoffs(world.clusters.rotate())
    world.energy.recompute()
    fast_rates = world.energy.rates.copy()
    world.energy.recompute(force_full=True)
    assert np.array_equal(world.energy.rates, fast_rates)
