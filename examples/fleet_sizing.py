#!/usr/bin/env python
"""Fleet sizing: how many recharging vehicles does a deployment need?

Sweeps the number of RVs (1 to 4) for the Partition-Scheme and the
greedy baseline and prints coverage, nonfunctional sensors, traveling
energy and the recharging cost per scheme — the planning question an
operator actually faces before buying vehicles.

Run:  python examples/fleet_sizing.py
"""

from repro import SimulationConfig, run_simulation
from repro.sim import DAY_S
from repro.utils.tables import format_table


def main() -> None:
    rows = []
    for scheduler in ("greedy", "partition"):
        for m in (1, 2, 3, 4):
            cfg = SimulationConfig.small(
                n_rvs=m,
                scheduler=scheduler,
                erp=0.4,
                sim_time_s=2 * DAY_S,
                seed=5,
            )
            s = run_simulation(cfg)
            rows.append(
                [
                    scheduler,
                    m,
                    100 * s.avg_coverage_ratio,
                    100 * s.avg_nonfunctional_fraction,
                    s.traveling_energy_j / 1000.0,
                    s.recharging_cost_m_per_sensor,
                    s.mean_request_latency_s / 3600.0,
                ]
            )
    print(
        format_table(
            ["scheme", "RVs", "coverage %", "nonfunc %", "travel kJ", "cost m/sensor", "latency h"],
            rows,
            precision=2,
            title="Fleet sizing on the small scenario (2 simulated days)",
        )
    )
    print(
        "\nReading: add RVs until coverage stops improving; the partition "
        "scheme stretches a small fleet further because each RV stays in "
        "its own region."
    )


if __name__ == "__main__":
    main()
