"""Tests for the deterministic triangular-lattice deployment."""

import numpy as np
import pytest

from repro.geometry.coverage import covered_fraction_grid
from repro.geometry.field import Field, hexagon_covering_bound


class TestTriangularLattice:
    def test_full_coverage(self):
        f = Field(100.0)
        pts = f.deploy_triangular_lattice(8.0)
        assert covered_fraction_grid(pts, 100.0, 8.0, resolution=120) == 1.0

    def test_points_inside_field(self):
        f = Field(60.0)
        pts = f.deploy_triangular_lattice(7.0)
        assert f.contains(pts).all()

    def test_count_near_hexagon_bound(self):
        """The lattice uses close to the theoretical minimum — within
        ~2x even with boundary padding."""
        f = Field(200.0)
        pts = f.deploy_triangular_lattice(8.0)
        bound = hexagon_covering_bound(f.area, 8.0)
        assert bound <= len(pts) <= 2 * bound

    def test_fewer_sensors_with_larger_range(self):
        f = Field(100.0)
        n_small = len(f.deploy_triangular_lattice(5.0))
        n_large = len(f.deploy_triangular_lattice(10.0))
        assert n_large < n_small

    def test_deterministic(self):
        f = Field(50.0)
        a = f.deploy_triangular_lattice(6.0)
        b = f.deploy_triangular_lattice(6.0)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            Field(50.0).deploy_triangular_lattice(0.0)

    def test_beats_random_deployment_economy(self, rng):
        """Section II-B's trade-off: to reach (near-)full coverage a
        random deployment needs far more sensors than the lattice."""
        f = Field(100.0)
        lattice = f.deploy_triangular_lattice(8.0)
        # A random deployment of the same size leaves holes.
        random_pts = f.deploy_uniform(len(lattice), rng)
        frac_lattice = covered_fraction_grid(lattice, 100.0, 8.0, resolution=100)
        frac_random = covered_fraction_grid(random_pts, 100.0, 8.0, resolution=100)
        assert frac_lattice == 1.0
        assert frac_random < 1.0
