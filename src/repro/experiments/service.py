"""Local sweep service: many clients, one warm compute pool.

``repro serve`` turns the cell executor into a long-lived process that
listens on a unix domain socket; ``repro submit`` (or
:class:`SweepClient`) connects, submits a sweep grid, and streams
per-cell results back as they finish.  The value is amortization and
sharing: the service keeps one :class:`repro.experiments.pool.WarmPool`
and one :class:`repro.experiments.store.ResultStore` alive across
submissions, so every client benefits from every other client's
completed cells and nobody pays pool start-up twice.

Wire protocol — newline-delimited JSON (JSONL), one request object per
line, answered by one or more response lines:

* ``{"op": "ping"}`` → ``{"ok": true, "version": ..., "pid": ...,
  "jobs": ...}``
* ``{"op": "stats"}`` → pool/store/instrument totals
* ``{"op": "submit_grid", "days": D, "seeds": [...], "schedulers":
  [...], "erps": [...], "overrides": {...}}`` → a stream of
  ``{"cell": i, "key": [scheduler, erp, seed], "source":
  "cache"|"store"|"run", "summary": {...}}`` lines in completion
  order, terminated by ``{"done": true, "cells": N, "sources": {...}}``
* ``{"op": "submit", "configs": [<config dict>, ...]}`` — same stream
  for explicit configuration dicts (:mod:`repro.sim.serialization`)
* ``{"op": "shutdown"}`` → ``{"ok": true}``, then the server exits its
  accept loop
* any failure → ``{"error": "..."}``

Determinism: the stream arrives in completion order, but every cell
carries its grid index, and the client reassembles
``results()`` in canonical grid order — so a served sweep is
byte-identical to the serial executor (floats survive the JSON hop
exactly: ``repr`` round-trips float64).  Summary payloads are small;
the zero-copy shipping happens on the service's *pool* boundary, not
on the client socket.

Connections are handled sequentially (one grid at a time keeps the
pool undivided); between connections the service reaps an idle pool.
This is a local, trusted-user endpoint — filesystem permissions on the
socket path are the access control.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..obs.instruments import DEFAULT_LATENCY_BUCKETS, Instruments
from ..sim.metrics import SimulationSummary
from ..sim.serialization import config_from_dict, config_to_dict
from .cache import summary_from_dict
from .common import ExperimentScale
from .executor import CellKey, CellResult, default_jobs, grid_configs, iter_configs
from .store import ResultStore

__all__ = ["RemoteGrid", "ServiceError", "SweepClient", "SweepService"]

#: Bump when the wire format changes incompatibly.
PROTOCOL_VERSION = 1


class ServiceError(RuntimeError):
    """An error reported by the sweep service (or a protocol breach)."""


def _send(wfile, payload: Dict[str, Any]) -> None:
    wfile.write(json.dumps(payload) + "\n")
    wfile.flush()


class SweepService:
    """The serving side of ``repro serve`` (see module docs).

    ``store_dir`` materializes a :class:`ResultStore` under that path;
    without it the ``REPRO_STORE`` environment opt-in applies (and with
    neither, the service still amortizes the warm pool).  With
    ``postmortem_dir``, each submission's misses run with the flight
    recorder armed and crashing cells flush
    ``<postmortem_dir>/request-<n>/cell-<grid index>`` bundles.

    Live telemetry plane (``repro.obs.live``): pass ``live_port``
    (``0`` = ephemeral) — or set ``REPRO_LIVE`` — and the service
    embeds an HTTP listener on 127.0.0.1 exposing ``/metrics``
    (Prometheus exposition), ``/healthz`` (per-worker state with
    ok/degraded/unhealthy thresholds) and ``/statusz`` (one JSON blob:
    in-flight job, latency histograms, pool/store totals, per-worker
    rows, batch occupancy).  The service's instrument registry then
    *is* the plane's :class:`~repro.obs.live.MetricsBus`, the warm
    pool streams worker stat deltas into it, and ``REPRO_SLO`` rules
    (or ``slo=``) are evaluated at request boundaries through
    :meth:`~repro.obs.monitors.MonitorSet.check_slo` — violations
    count, span, and fail fast under ``REPRO_STRICT_MONITORS``.  With
    the plane off (the default) none of this exists: no bus, no
    threads, no sockets.
    """

    def __init__(
        self,
        socket_path,
        jobs: Optional[int] = None,
        warm: bool = True,
        store: Optional[ResultStore] = None,
        store_dir=None,
        idle_timeout_s: Optional[float] = None,
        postmortem_dir=None,
        instruments: Optional[Instruments] = None,
        live_port: Optional[int] = None,
        live_interval_s: Optional[float] = None,
        slo: Optional[str] = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.warm = bool(warm)
        self.idle_timeout_s = idle_timeout_s
        self.postmortem_dir = None if postmortem_dir is None else Path(postmortem_dir)

        # Only touch repro.obs.live (and its http.server import) when
        # the plane could actually be armed — the null default imports
        # nothing and allocates nothing.
        if live_port is None and os.environ.get("REPRO_LIVE", "").strip():
            from ..obs.live import live_port_from_env

            live_port = live_port_from_env()
        self.bus = None
        self.live = None
        self._slo_evaluator = None
        if live_port is not None:
            from ..obs.live import MetricsBus

            self.bus = MetricsBus()
            # One registry for everything: executor/pool/store counters
            # recorded by the accept thread and worker deltas absorbed
            # by the bus land in the same place the scraper reads.
            self.instruments = self.bus.instruments
        else:
            self.instruments = Instruments() if instruments is None else instruments
        if store is not None:
            self.store: Optional[ResultStore] = store
        elif store_dir is not None:
            self.store = ResultStore(store_dir, instruments=self.instruments)
        else:
            self.store = ResultStore.from_env(instruments=self.instruments)
        self.requests_served = 0
        self._stop = False
        #: Progress of the request being served right now (/statusz).
        self._current: Optional[Dict[str, Any]] = None

        if self.bus is not None:
            from ..obs.live import (
                LiveServer,
                SloEvaluator,
                live_interval_from_env,
                parse_slo_rules,
            )

            slo_spec = os.environ.get("REPRO_SLO", "") if slo is None else slo
            rules = parse_slo_rules(slo_spec)
            if rules:
                from ..obs.monitors import MonitorSet
                from ..obs.spans import SpanTracer

                monitors = MonitorSet(instruments=self.instruments, spans=SpanTracer())
                self._slo_evaluator = SloEvaluator(rules, monitors)
            if live_interval_s is None:
                live_interval_s = live_interval_from_env()
            self.live = LiveServer(
                self.bus,
                port=live_port,
                status_fn=self._statusz,
                health_fn=self._healthz,
                sample_fn=self._sample,
                interval_s=live_interval_s,
            )
            if self.warm:
                # Arm worker stat streaming before any worker spawns so
                # every worker's replies carry instrument deltas.
                from .pool import get_warm_pool

                get_warm_pool(self.jobs).attach_bus(self.bus)

    # -- lifecycle ----------------------------------------------------

    def serve_forever(self, max_requests: Optional[int] = None) -> int:
        """Accept and serve connections until a ``shutdown`` request
        arrives (or ``max_requests`` connections were handled); returns
        the number of requests served."""
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            if os.path.exists(self.socket_path):  # stale socket from a dead server
                os.unlink(self.socket_path)
            server.bind(self.socket_path)
            server.listen(8)
            server.settimeout(0.5)
            while not self._stop and (
                max_requests is None or self.requests_served < max_requests
            ):
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    self._maybe_reap()
                    continue
                with conn:
                    self._handle(conn)
                self.requests_served += 1
                # SLOs are checked here — in the accept thread, at a
                # request boundary — so a strict violation raises where
                # the service can fail fast, never inside a scrape.
                if self._slo_evaluator is not None:
                    self._slo_evaluator.evaluate(self.bus)
        finally:
            server.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self.close_live()
        return self.requests_served

    def close_live(self) -> None:
        """Tear the live HTTP plane down (idempotent; no-op when off)."""
        if self.live is not None:
            self.live.close()
            self.live = None

    def _maybe_reap(self) -> None:
        """Let an idle warm pool release its workers between clients."""
        if self.idle_timeout_s is None:
            return
        from .pool import _default_pool

        if _default_pool is not None:
            _default_pool.idle_timeout_s = self.idle_timeout_s
            _default_pool.reap_if_idle()

    # -- request handling ---------------------------------------------

    def _handle(self, conn: socket.socket) -> None:
        """Serve exactly one request on this connection.

        One-request-per-connection keeps the protocol stateless: the
        server never blocks waiting for a second request a client will
        not send, and clients know EOF always follows the response.
        """
        rfile = conn.makefile("r", encoding="utf-8")
        wfile = conn.makefile("w", encoding="utf-8")
        try:
            line = rfile.readline().strip()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                _send(wfile, {"error": f"bad request line: {exc}"})
                return
            self._dispatch(request, wfile)
        except BrokenPipeError:  # client went away mid-stream; nothing to do
            pass
        finally:
            try:
                wfile.close()
                rfile.close()
            except OSError:
                pass

    def _dispatch(self, request: Dict[str, Any], wfile) -> None:
        """Answer one request (errors are reported, never fatal)."""
        op = request.get("op")
        try:
            if op == "ping":
                from .. import __version__

                _send(wfile, {
                    "ok": True, "op": "ping", "protocol": PROTOCOL_VERSION,
                    "version": __version__, "pid": os.getpid(), "jobs": self.jobs,
                })
            elif op == "stats":
                _send(wfile, {"ok": True, "op": "stats", **self.describe()})
            elif op == "shutdown":
                _send(wfile, {"ok": True, "op": "shutdown"})
                self._stop = True
            elif op in ("submit", "submit_grid"):
                self._submit(request, wfile)
            else:
                _send(wfile, {"error": f"unknown op {op!r}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # report, keep serving other clients
            try:
                _send(wfile, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def describe(self) -> Dict[str, Any]:
        """Pool/store/instrument totals for the ``stats`` op."""
        from .pool import _default_pool

        out: Dict[str, Any] = {
            "jobs": self.jobs,
            "warm": self.warm,
            "requests_served": self.requests_served,
            "counters": self.instruments.snapshot()["counters"],
        }
        if _default_pool is not None and not _default_pool._closed:
            out["pool"] = {
                "workers_alive": _default_pool.workers_alive,
                **_default_pool.stats,
            }
        if self.store is not None:
            out["store"] = self.store.describe()
        return out

    # -- live plane sources -------------------------------------------

    def _healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: pool liveness with thresholds.

        ``idle`` — no pool yet (or reaped); ``ok`` — every slot live;
        ``degraded`` — some but not all slots live; ``unhealthy`` —
        workers expected but none alive (served with HTTP 503).
        Status is a pure function of *current* liveness, so a respawn
        flips degraded back to ok on the next scrape.
        """
        from .pool import _default_pool

        pool = _default_pool
        out: Dict[str, Any] = {
            "jobs": self.jobs,
            "requests_served": self.requests_served,
            "inflight": self._current is not None,
        }
        if pool is None or pool._closed or not pool._workers:
            out["status"] = "idle"
            return out
        health = pool.health()
        alive = health["workers_alive"]
        if alive == 0:
            out["status"] = "unhealthy"
        elif alive < pool.jobs:
            out["status"] = "degraded"
        else:
            out["status"] = "ok"
        out.update(health)
        return out

    def _statusz(self) -> Dict[str, Any]:
        """The ``/statusz`` payload: one JSON blob of live state."""
        snapshot = self.bus.snapshot() if self.bus is not None else {}
        current = self._current
        if current is not None:
            # Shallow-copy down to the sources tally: the accept thread
            # mutates it while scrape threads serialize the copy.
            current = {**current, "sources": dict(current["sources"])}
        out: Dict[str, Any] = {
            "service": self.describe(),
            "current": current,
            "histograms": snapshot.get("histograms", {}),
            "gauges": snapshot.get("gauges", {}),
            "health": self._healthz(),
        }
        if self.bus is not None:
            out["workers"] = {
                str(wid): row for wid, row in self.bus.worker_rows().items()
            }
        if self._slo_evaluator is not None:
            out["slo"] = self._slo_evaluator.last_results
        return out

    def _sample(self) -> None:
        """Periodic gauge refresh (runs on the live sampler thread)."""
        from .pool import _default_pool

        obs = self.instruments
        pool = _default_pool
        obs.gauge("service.workers_alive").set(
            pool.workers_alive if pool is not None and not pool._closed else 0
        )
        obs.gauge("service.requests_served").set(self.requests_served)
        if self.store is not None:
            try:
                obs.gauge("store.entries").set(len(self.store))
                obs.gauge("store.bytes").set(self.store.total_bytes())
            except OSError:  # pragma: no cover - store dir racing eviction
                pass

    def _submit(self, request: Dict[str, Any], wfile) -> None:
        keys: Optional[List[CellKey]] = None
        if request["op"] == "submit_grid":
            scale = ExperimentScale(
                "client",
                days=float(request.get("days", 1.0)),
                seeds=tuple(int(s) for s in request["seeds"]),
            )
            keys, configs = grid_configs(
                scale,
                [str(s) for s in request["schedulers"]],
                [float(e) for e in request["erps"]],
                **(request.get("overrides") or {}),
            )
        else:
            configs = [config_from_dict(d) for d in request["configs"]]
        postmortem = None
        if self.postmortem_dir is not None:
            postmortem = self.postmortem_dir / f"request-{self.requests_served:03d}"
        sources: Dict[str, int] = {}
        obs = self.instruments
        obs.counter("service.requests").inc()
        obs.gauge("service.inflight").set(1)
        self._current = {
            "op": request["op"], "cells": len(configs), "completed": 0,
            "sources": sources,
        }
        try:
            with obs.timer("service.request_s", DEFAULT_LATENCY_BUCKETS):
                for index, summary, source in iter_configs(
                    configs,
                    jobs=self.jobs,
                    warm=self.warm,
                    store=self.store,
                    instruments=obs,
                    postmortem_dir=postmortem,
                ):
                    sources[source] = sources.get(source, 0) + 1
                    self._current["completed"] += 1
                    row: Dict[str, Any] = {
                        "cell": index, "source": source, "summary": summary.as_dict(),
                    }
                    if keys is not None:
                        row["key"] = list(keys[index])
                    _send(wfile, row)
            _send(wfile, {"done": True, "cells": len(configs), "sources": sources})
        finally:
            self._current = None
            obs.gauge("service.inflight").set(0)


class RemoteGrid:
    """Client-side streaming handle over a served grid submission.

    Mirrors :class:`repro.experiments.executor.GridJob`: iterate for
    :class:`CellResult` items as the service finishes them, or call
    :meth:`results` for the grid-order reassembly.  ``sources`` and
    ``done`` carry the terminal tallies once the stream is consumed.
    """

    def __init__(self, keys: Sequence[CellKey], lines: Iterator[Dict[str, Any]]):
        self.keys: List[CellKey] = list(keys)
        self.sources: Dict[str, int] = {}
        self.done: Optional[Dict[str, Any]] = None
        self._lines = lines
        self._cells: Dict[int, CellResult] = {}

    def _close_lines(self) -> None:
        close = getattr(self._lines, "close", None)
        if close is not None:
            close()

    def __iter__(self) -> Iterator[CellResult]:
        for row in self._lines:
            if "error" in row:
                self._close_lines()
                raise ServiceError(row["error"])
            if row.get("done"):
                self.done = row
                self._close_lines()  # release the connection promptly
                return
            index = int(row["cell"])
            cell = CellResult(
                index, self.keys[index],
                summary_from_dict(row["summary"]), row["source"],
            )
            self._cells[index] = cell
            self.sources[cell.source] = self.sources.get(cell.source, 0) + 1
            yield cell

    def results(self) -> Dict[CellKey, SimulationSummary]:
        """All summaries keyed by cell, reassembled in grid order."""
        for _ in self:
            pass
        missing = [i for i in range(len(self.keys)) if i not in self._cells]
        if missing:
            raise ServiceError(f"service stream ended with cells missing: {missing}")
        return {self.keys[i]: self._cells[i].summary for i in range(len(self.keys))}


class SweepClient:
    """The submitting side of ``repro submit`` (see module docs)."""

    def __init__(self, socket_path, timeout_s: Optional[float] = None) -> None:
        self.socket_path = str(socket_path)
        self.timeout_s = timeout_s

    def _request_lines(self, payload: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """One request, streamed responses (connection per request)."""
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout_s is not None:
            conn.settimeout(self.timeout_s)
        try:
            conn.connect(self.socket_path)
            wfile = conn.makefile("w", encoding="utf-8")
            _send(wfile, payload)
            rfile = conn.makefile("r", encoding="utf-8")
            for line in rfile:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def _request_one(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        for row in self._request_lines(payload):
            if "error" in row:
                raise ServiceError(row["error"])
            return row
        raise ServiceError("service closed the connection without answering")

    def ping(self) -> Dict[str, Any]:
        """Round-trip a ping; raises on protocol mismatch."""
        answer = self._request_one({"op": "ping"})
        if answer.get("protocol") != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol mismatch: server speaks {answer.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return answer

    def stats(self) -> Dict[str, Any]:
        """The service's pool/store/instrument totals."""
        return self._request_one({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to exit its accept loop."""
        return self._request_one({"op": "shutdown"})

    def submit_grid(
        self,
        scale: ExperimentScale,
        schedulers: Sequence[str],
        erps: Sequence[float],
        **overrides,
    ) -> RemoteGrid:
        """Submit a sweep grid; returns the streaming
        :class:`RemoteGrid` handle (results are bit-identical to a
        local :func:`repro.experiments.executor.map_cells`)."""
        keys, _configs = grid_configs(scale, schedulers, erps, **overrides)
        lines = self._request_lines({
            "op": "submit_grid",
            "days": scale.days,
            "seeds": list(scale.seeds),
            "schedulers": list(schedulers),
            "erps": [float(e) for e in erps],
            "overrides": overrides,
        })
        return RemoteGrid(keys, lines)

    def submit_configs(self, configs) -> RemoteGrid:
        """Submit explicit configurations; keys degrade to
        ``(scheduler, erp, seed)`` extracted per config."""
        keys = [(c.scheduler, float(c.erp), int(c.seed)) for c in configs]
        lines = self._request_lines({
            "op": "submit",
            "configs": [config_to_dict(c) for c in configs],
        })
        return RemoteGrid(keys, lines)
