"""Tests for the structured trace recorder and its World integration."""

import numpy as np
import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.trace import EventKind, NullRecorder, TraceRecorder
from repro.sim.world import World


def traced_world(**overrides):
    defaults = dict(
        n_sensors=40,
        n_targets=3,
        n_rvs=1,
        side_length_m=60.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=400.0,
        initial_charge_range=(0.5, 0.8),
        dispatch_period_s=1800.0,
        seed=42,
    )
    defaults.update(overrides)
    trace = TraceRecorder()
    world = World(SimulationConfig(**defaults), trace=trace)
    return world, trace


class TestTraceRecorder:
    def test_emit_and_query(self):
        t = TraceRecorder()
        t.emit(1.0, EventKind.NODE_RECHARGED, 5, 100.0)
        t.emit(2.0, EventKind.SENSOR_DEPLETED, 6)
        assert t.count(EventKind.NODE_RECHARGED) == 1
        assert t.of_kind(EventKind.SENSOR_DEPLETED)[0].subject == 6
        assert list(t.between(0.5, 1.5))[0].kind is EventKind.NODE_RECHARGED

    def test_series(self):
        t = TraceRecorder()
        t.sample_series(0.0, "x", 1.0)
        t.sample_series(5.0, "x", 2.0)
        times, values = t.series_arrays("x")
        assert times.tolist() == [0.0, 5.0]
        assert values.tolist() == [1.0, 2.0]
        with pytest.raises(KeyError):
            t.series_arrays("missing")

    def test_request_latencies_matching(self):
        t = TraceRecorder()
        t.emit(0.0, EventKind.REQUEST_RELEASED, 1)
        t.emit(10.0, EventKind.NODE_RECHARGED, 1, 50.0)
        t.emit(12.0, EventKind.NODE_RECHARGED, 2, 50.0)  # never requested
        lats = t.request_latencies()
        assert lats == [(1, 10.0)]

    def test_null_recorder_is_noop(self):
        n = NullRecorder()
        n.emit(0.0, EventKind.ROTATION)
        n.sample_series(0.0, "x", 1.0)
        assert not n.enabled


class TestWorldTracing:
    def test_recharge_events_match_metrics(self):
        world, trace = traced_world()
        summary = world.run()
        assert trace.count(EventKind.NODE_RECHARGED) == summary.n_recharges
        assert trace.count(EventKind.REQUEST_RELEASED) == summary.n_requests

    def test_relocations_traced(self):
        world, trace = traced_world()
        world.run()
        expected = int(world.cfg.sim_time_s // world.cfg.target_period_s)
        assert trace.count(EventKind.TARGETS_RELOCATED) == expected

    def test_events_time_ordered(self):
        world, trace = traced_world()
        world.run()
        times = [e.time_s for e in trace.events]
        assert times == sorted(times)

    def test_series_sampled(self):
        world, trace = traced_world()
        world.run()
        for name in ("coverage", "nonfunctional", "operational", "backlog"):
            times, values = trace.series_arrays(name)
            assert len(times) > 10
            assert np.all(np.diff(times) >= 0)

    def test_rv_trail_matches_recharges(self):
        world, trace = traced_world()
        world.run()
        trail = trace.rv_trail(0)
        recharged = trace.of_kind(EventKind.NODE_RECHARGED)
        assert len(trail) == len(recharged)

    def test_latencies_match_summary(self):
        world, trace = traced_world()
        summary = world.run()
        lats = [l for _, l in trace.request_latencies()]
        if lats:
            assert np.mean(lats) == pytest.approx(summary.mean_request_latency_s, rel=1e-6)

    def test_summary_counts(self):
        world, trace = traced_world()
        world.run()
        counts = trace.summary_counts()
        assert counts["node_recharged"] == trace.count(EventKind.NODE_RECHARGED)

    def test_tracing_does_not_change_results(self):
        """A traced run and an untraced run are bit-identical."""
        world_t, _ = traced_world(seed=5)
        s1 = world_t.run()
        cfg = world_t.cfg
        s2 = World(cfg).run()
        assert s1.as_dict() == s2.as_dict()
