"""Energy Request Control (Section III-B).

The **Energy Request Percentage** (ERP, the paper's ``K``) is the
maximum allowable fraction of a cluster that may sit below the recharge
threshold *without* sending requests.  Once at least
``max(ceil(nc * K), 1)`` members of an ``nc``-sensor cluster are below
threshold, the whole backlog is released at once, so one RV trip into
the cluster serves every needy member.

``K = 0`` degenerates to the classic immediate-request policy of the
prior work (any node below threshold requests right away) — that is the
paper's "No ERC" configuration.  Unclustered sensors always behave like
singleton clusters and request immediately.

The controller also captures the paper's worst-case traveling-energy
analysis: with ERC the RV travels ``2 * nc / max(nc * K, 1) * dist``
instead of ``2 * nc * dist`` to keep a cluster alive.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .clustering import ClusterSet

__all__ = [
    "AdaptiveEnergyRequestController",
    "EnergyRequestController",
    "erc_travel_energy_bound",
    "release_count_needed",
]


def release_count_needed(cluster_size: int, erp: float) -> int:
    """Members below threshold required before the cluster requests.

    ``max(ceil(nc * K), 1)`` — at least one node must be needy for any
    request to make sense, and ``K = 0`` releases on the first.
    """
    if cluster_size < 0:
        raise ValueError("cluster_size must be non-negative")
    if not 0.0 <= erp <= 1.0:
        raise ValueError("erp must lie in [0, 1]")
    return max(int(np.ceil(cluster_size * erp)), 1)


def erc_travel_energy_bound(
    cluster_size: int,
    dist_m: float,
    em_j_per_m: float,
    erp: float,
) -> float:
    """Worst-case RV traveling energy to serve one cluster's cycle.

    The paper's Section III-B estimate: without ERC each of the ``nc``
    members may trigger its own round trip (``2 * nc * dist * em``);
    with ERC trips amortize over ``max(nc * K, 1)`` members.
    """
    if dist_m < 0 or em_j_per_m < 0:
        raise ValueError("distance and energy rate must be non-negative")
    batch = max(cluster_size * erp, 1.0)
    return 2.0 * cluster_size / batch * dist_m * em_j_per_m


class EnergyRequestController:
    """Per-cluster gate between "below threshold" and "request sent".

    Args:
        erp: the Energy Request Percentage ``K`` in ``[0, 1]``.

    The controller is stateless w.r.t. the cluster epoch: call
    :meth:`nodes_to_release` with the current cluster set and masks, and
    it answers which sensors may send requests *now*.  Tracking which
    sensors already requested is the caller's job (the request gate —
    :class:`repro.sim.components.gate.RequestGate` — keeps that mask;
    a sensor leaves it when an RV refills it).

    The per-cluster loop in :meth:`nodes_to_release` is the **retained
    bit-exact reference** for the array scan
    (:func:`repro.sim.soa.erc_release_scan`) the SoA tick engine uses;
    subclasses that override it automatically get this reference path.
    """

    def __init__(self, erp: float) -> None:
        if not 0.0 <= erp <= 1.0:
            raise ValueError("erp must lie in [0, 1]")
        self.erp = float(erp)

    def nodes_to_release(
        self,
        cluster_set: ClusterSet,
        below_threshold: np.ndarray,
        already_requested: np.ndarray,
    ) -> List[int]:
        """Sensors allowed to send their recharge request now.

        Args:
            cluster_set: current clustering.
            below_threshold: boolean per sensor, battery below ``Eth``.
            already_requested: boolean per sensor, request already on
                the base station's list (these never re-release).

        Returns:
            Sorted sensor ids to add to the recharge node list.  For a
            cluster, either every needy non-listed member releases (the
            gate opened) or none does.  Unclustered needy sensors always
            release.
        """
        below = np.asarray(below_threshold, dtype=bool)
        listed = np.asarray(already_requested, dtype=bool)
        if below.shape != (cluster_set.n_sensors,) or listed.shape != (cluster_set.n_sensors,):
            raise ValueError("masks must have one entry per sensor")
        release: List[int] = []
        for c in cluster_set:
            if c.size == 0:
                continue
            needy = c.members[below[c.members]]
            # The ERP gate counts every member below threshold,
            # including those already on the list (they "have fallen
            # below the threshold" in the paper's definition).
            if len(needy) >= release_count_needed(c.size, self.erp):
                release.extend(int(s) for s in needy if not listed[s])
        unclustered = ~cluster_set.clustered_mask()
        release.extend(int(s) for s in np.flatnonzero(unclustered & below & ~listed))
        return sorted(release)


class AdaptiveEnergyRequestController(EnergyRequestController):
    """ERP with closed-loop tuning (beyond the paper).

    The paper leaves picking ``K`` to offline sweeps ("finding an
    appropriate ERP value is important in practice").  This controller
    automates the knee search online: while no sensor dies, ``K`` creeps
    up (harvesting travel savings); any depletion knocks it down
    multiplicatively (protecting coverage).  An AIMD loop, evaluated
    every ``adjust_period_s``.

    Args:
        initial_erp: starting ``K``.
        adjust_period_s: evaluation cadence.
        step_up: additive increase per quiet period.
        backoff: multiplicative decrease factor applied on deaths.
        erp_min / erp_max: clamp bounds for ``K``.
    """

    def __init__(
        self,
        initial_erp: float = 0.4,
        adjust_period_s: float = 12 * 3600.0,
        step_up: float = 0.05,
        backoff: float = 0.5,
        erp_min: float = 0.0,
        erp_max: float = 1.0,
    ) -> None:
        super().__init__(initial_erp)
        if adjust_period_s <= 0:
            raise ValueError("adjust_period_s must be positive")
        if step_up < 0 or not 0.0 < backoff <= 1.0:
            raise ValueError("invalid AIMD parameters")
        if not 0.0 <= erp_min <= erp_max <= 1.0:
            raise ValueError("erp bounds must satisfy 0 <= min <= max <= 1")
        self.adjust_period_s = float(adjust_period_s)
        self.step_up = float(step_up)
        self.backoff = float(backoff)
        self.erp_min = float(erp_min)
        self.erp_max = float(erp_max)
        self._deaths_since_adjust = 0
        self._last_adjust_s = 0.0
        self.history = [(0.0, self.erp)]

    def observe_deaths(self, count: int) -> None:
        """Report sensor depletions (called by the world)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._deaths_since_adjust += count

    def maybe_adjust(self, now_s: float) -> bool:
        """Run one AIMD step if the adjustment period elapsed.

        Returns True when ``erp`` changed.
        """
        if now_s - self._last_adjust_s < self.adjust_period_s:
            return False
        self._last_adjust_s = now_s
        old = self.erp
        if self._deaths_since_adjust > 0:
            self.erp = max(self.erp_min, self.erp * self.backoff)
        else:
            self.erp = min(self.erp_max, self.erp + self.step_up)
        self._deaths_since_adjust = 0
        if self.erp != old:
            self.history.append((now_s, self.erp))
        return self.erp != old
