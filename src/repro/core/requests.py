"""Recharge requests and the base station's recharge node list.

Section II-A: sensors whose battery falls below the threshold send a
recharge request to the base station, which maintains a *recharge node
list* ``R`` and computes recharge schedules against it.  With Energy
Request Control (Section III-B) requests are released per cluster, so a
single RV visit can serve the whole cluster; to support that, the list
can *aggregate* co-clustered requests into one super-node whose demand
is the cluster's total (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..tsp.nearest_neighbor import nearest_neighbor_order

__all__ = ["RechargeRequest", "RechargeNodeList", "AggregatedRequest", "aggregate_by_cluster"]

#: Cluster id used for sensors that are not part of any target cluster.
UNCLUSTERED = -1


@dataclass(frozen=True)
class RechargeRequest:
    """One pending request.

    Attributes:
        node_id: the sensor's index in the network.
        position: ``(2,)`` sensor coordinates.
        demand_j: energy demand ``d_i = Ec - level`` at release time.
        cluster_id: the cluster the sensor belonged to when the request
            was released, or ``-1`` if unclustered.
        release_time_s: simulation time at which the request entered the
            list (used for latency metrics).
    """

    node_id: int
    position: np.ndarray
    demand_j: float
    cluster_id: int = UNCLUSTERED
    release_time_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position", np.asarray(self.position, dtype=np.float64).reshape(2)
        )
        if self.demand_j < 0:
            raise ValueError("demand_j must be non-negative")


class RechargeNodeList:
    """The base station's ordered, de-duplicated request list ``R``.

    Requests keep insertion order (the order they were released), which
    makes simulations reproducible.  Adding a node that is already
    listed refreshes its demand in place instead of duplicating it.
    """

    def __init__(self, requests: Iterable[RechargeRequest] = ()) -> None:
        self._by_node: Dict[int, RechargeRequest] = {}
        for r in requests:
            self.add(r)

    def __len__(self) -> int:
        return len(self._by_node)

    def __iter__(self) -> Iterator[RechargeRequest]:
        return iter(self._by_node.values())

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._by_node

    def add(self, request: RechargeRequest) -> None:
        """Insert or refresh a request."""
        self._by_node[request.node_id] = request

    def remove(self, node_id: int) -> Optional[RechargeRequest]:
        """Drop the request for ``node_id`` if present; returns it."""
        return self._by_node.pop(node_id, None)

    def remove_many(self, node_ids: Iterable[int]) -> None:
        for nid in node_ids:
            self._by_node.pop(nid, None)

    def get(self, node_id: int) -> Optional[RechargeRequest]:
        return self._by_node.get(node_id)

    def clear(self) -> None:
        self._by_node.clear()

    @property
    def node_ids(self) -> np.ndarray:
        """Listed node ids in insertion order."""
        return np.fromiter(self._by_node.keys(), dtype=np.intp, count=len(self._by_node))

    def positions(self) -> np.ndarray:
        """``(n, 2)`` positions in insertion order."""
        if not self._by_node:
            return np.empty((0, 2), dtype=np.float64)
        return np.vstack([r.position for r in self._by_node.values()])

    def demands(self) -> np.ndarray:
        """``(n,)`` demands in insertion order."""
        return np.fromiter(
            (r.demand_j for r in self._by_node.values()),
            dtype=np.float64,
            count=len(self._by_node),
        )

    def cluster_ids(self) -> np.ndarray:
        """``(n,)`` cluster ids in insertion order."""
        return np.fromiter(
            (r.cluster_id for r in self._by_node.values()),
            dtype=np.int64,
            count=len(self._by_node),
        )

    def snapshot(self) -> List[RechargeRequest]:
        """A stable list copy of the current requests."""
        return list(self._by_node.values())


@dataclass(frozen=True)
class AggregatedRequest:
    """A scheduling super-node: one cluster's pending requests as a unit.

    Section IV-C: "all energy demands from sensors inside a cluster are
    replaced by an aggregated cluster energy demand", and the RV serves
    every listed member in one visit, touring them nearest-neighbour.

    Attributes:
        position: representative position (member centroid; cluster
            diameter is at most twice the sensing range, so the
            approximation error is meters against a field of hundreds).
        demand_j: total demand of the members.
        members: the underlying requests, in released order.
        cluster_id: originating cluster, or ``-1`` for a singleton.
    """

    position: np.ndarray
    demand_j: float
    members: tuple
    cluster_id: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position", np.asarray(self.position, dtype=np.float64).reshape(2)
        )
        # Tour memo: the insertion trimming loop re-expands the same
        # stops from the same entry points several times per plan; the
        # stacked member array is also kept stable so the shared
        # distance cache (keyed on array identity) hits across tours.
        object.__setattr__(self, "_member_pts", None)
        object.__setattr__(self, "_tour_memo", {})

    def member_ids(self) -> List[int]:
        return [r.node_id for r in self.members]

    def member_positions(self) -> np.ndarray:
        """``(nc, 2)`` member coordinates, stacked once per instance."""
        if self._member_pts is None:
            object.__setattr__(
                self, "_member_pts", np.vstack([r.position for r in self.members])
            )
        return self._member_pts

    def visit_order_from(self, entry: np.ndarray) -> List[int]:
        """Member node ids in nearest-neighbour order from ``entry``.

        This is the paper's O(nc^2) intra-cluster tour.  Tours are
        memoized per entry point (requests are immutable), so repeated
        expansion during budget trimming re-measures nothing.
        """
        entry = np.asarray(entry, dtype=np.float64).reshape(2)
        key = entry.tobytes()
        hit = self._tour_memo.get(key)
        if hit is None:
            order = nearest_neighbor_order(self.member_positions(), start=entry)
            ids = self.member_ids()
            hit = [ids[i] for i in order]
            self._tour_memo[key] = hit
        return list(hit)


def aggregate_by_cluster(requests: Iterable[RechargeRequest]) -> List[AggregatedRequest]:
    """Fold a request list into per-cluster super-nodes.

    Unclustered requests become singletons.  Order follows first
    appearance in the input, keeping scheduling deterministic.
    """
    groups: Dict[int, List[RechargeRequest]] = {}
    order: List[int] = []
    singleton_key = UNCLUSTERED  # each unclustered node gets its own key
    next_singleton = -2
    for r in requests:
        if r.cluster_id == UNCLUSTERED:
            key = next_singleton
            next_singleton -= 1
        else:
            key = r.cluster_id
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(r)
    del singleton_key
    result = []
    for key in order:
        members = tuple(groups[key])
        pts = np.vstack([m.position for m in members])
        result.append(
            AggregatedRequest(
                position=pts.mean(axis=0),
                demand_j=float(sum(m.demand_j for m in members)),
                members=members,
                cluster_id=members[0].cluster_id,
            )
        )
    return result
