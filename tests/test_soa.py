"""The structure-of-arrays tick engine (repro.sim.soa).

Three layers of evidence that ``REPRO_SOA=1`` is a pure speedup:

* kernel parity — every array kernel (rotation, ERC scan, relay
  accumulation) reproduces its object-walking reference bit-for-bit on
  randomized inputs;
* engine equivalence — whole runs and random tick sequences produce
  identical snapshots and summaries under ``REPRO_SOA=0`` vs ``1``
  (including a hypothesis property test);
* allocation discipline — the ``sim.soa.alloc`` counter stays flat
  across steady-state ticks, proving the preallocated scratch is
  actually reused.
"""

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activation import FullTimeActivator, RoundRobinActivator
from repro.core.clustering import Cluster, ClusterSet
from repro.core.erc import AdaptiveEnergyRequestController, EnergyRequestController
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.serialization import snapshot_arrays
from repro.sim.soa import (
    SoAFullTimeActivator,
    SoARoundRobinActivator,
    StateArrays,
    _shadow_compare,
    debug_soa,
    engine_provenance,
    erc_release_scan,
    erc_scan_applicable,
    first_alive_slots,
    pack_clusters,
    relay_accumulate,
    relay_levels,
    soa_enabled,
    wrap_activator,
)
from repro.sim.world import World


def random_cluster_set(rng, n_sensors, n_clusters):
    """Random disjoint clusters (possibly empty) over ``n_sensors``."""
    perm = rng.permutation(n_sensors)
    cuts = sorted(rng.integers(0, n_sensors + 1, size=n_clusters - 1).tolist()) if n_clusters > 1 else []
    chunks = np.split(perm, cuts)
    clusters = [
        Cluster(i, np.sort(chunk)) for i, chunk in enumerate(chunks[:n_clusters])
    ]
    while len(clusters) < n_clusters:
        clusters.append(Cluster(len(clusters), np.array([], dtype=np.int64)))
    return ClusterSet(clusters, n_sensors)


SMALL_CONFIG = dict(
    n_sensors=40,
    n_targets=6,
    n_rvs=2,
    side_length_m=60.0,
    sim_time_s=6 * 3600.0,
    tick_s=600.0,
    dispatch_period_s=1800.0,
    battery_capacity_j=300.0,
    initial_charge_range=(0.5, 0.8),
    seed=7,
)


class TestKnobs:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOA", raising=False)
        monkeypatch.delenv("REPRO_DEBUG_SOA", raising=False)
        assert soa_enabled()
        assert not debug_soa()

    def test_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "0")
        assert not soa_enabled()
        monkeypatch.setenv("REPRO_DEBUG_SOA", "1")
        assert debug_soa()

    def test_engine_provenance_keys(self):
        prov = engine_provenance()
        assert set(prov) == {
            "soa", "soa_debug", "vectorize", "incremental", "batch", "batch_debug",
        }
        assert all(isinstance(v, bool) for v in prov.values())


class TestRotationParity:
    """Array rotation == reference rotation, slot for slot."""

    @pytest.mark.parametrize("seed", range(6))
    def test_round_robin_long_random_walk(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        m = int(rng.integers(1, 8))
        cs = random_cluster_set(rng, n, m)
        arrays = StateArrays(n, 0)
        ref = RoundRobinActivator(cs)
        soa = SoARoundRobinActivator(cs, arrays)
        for _ in range(40):
            alive = rng.random(n) > rng.uniform(0.0, 0.6)
            assert np.array_equal(
                soa.active_sensor_per_cluster(alive),
                ref.active_sensor_per_cluster(alive),
            )
            assert np.array_equal(soa.active_mask(alive), ref.active_mask(alive))
            assert np.array_equal(soa.covered_mask(alive), ref.covered_mask(alive))
            assert np.array_equal(soa.rotate(alive), ref.rotate(alive))
            assert np.array_equal(arrays.ptr, ref._ptr)

    @pytest.mark.parametrize("seed", range(4))
    def test_full_time_parity(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(5, 50))
        cs = random_cluster_set(rng, n, int(rng.integers(1, 6)))
        arrays = StateArrays(n, 0)
        ref = FullTimeActivator(cs)
        soa = SoAFullTimeActivator(cs, arrays)
        for _ in range(10):
            alive = rng.random(n) > 0.3
            assert np.array_equal(soa.active_mask(alive), ref.active_mask(alive))
            assert np.array_equal(
                soa.active_sensor_per_cluster(alive),
                ref.active_sensor_per_cluster(alive),
            )
            assert np.array_equal(soa.covered_mask(alive), ref.covered_mask(alive))
        assert soa.rotate(rng.random(n) > 0.5).shape == (0, 2)

    def test_all_dead_cluster_keeps_pointer(self):
        cs = ClusterSet([Cluster(0, np.array([0, 1, 2]))], 3)
        arrays = StateArrays(3, 0)
        soa = SoARoundRobinActivator(cs, arrays)
        ref = RoundRobinActivator(cs)
        alive = np.ones(3, dtype=bool)
        soa.rotate(alive)
        ref.rotate(alive)
        dead = np.zeros(3, dtype=bool)
        assert np.array_equal(soa.rotate(dead), ref.rotate(dead))
        assert np.array_equal(arrays.ptr, ref._ptr)

    def test_wrap_activator_dispatch(self):
        cs = ClusterSet([Cluster(0, np.array([0, 1]))], 2)
        arrays = StateArrays(2, 0)
        assert isinstance(
            wrap_activator(RoundRobinActivator(cs), arrays), SoARoundRobinActivator
        )
        assert isinstance(
            wrap_activator(FullTimeActivator(cs), arrays), SoAFullTimeActivator
        )
        ref = RoundRobinActivator(cs)
        assert wrap_activator(ref, None) is ref

        class PluginActivator(RoundRobinActivator):
            pass

        plugin = PluginActivator(cs)
        assert wrap_activator(plugin, arrays) is plugin

    def test_first_alive_slots_matches_scan(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            n = int(rng.integers(4, 40))
            cs = random_cluster_set(rng, n, int(rng.integers(1, 6)))
            arrays = StateArrays(n, 0)
            pack_clusters(cs, arrays)
            ref = RoundRobinActivator(cs)
            alive = rng.random(n) > 0.4
            start = np.array(
                [rng.integers(0, max(c.size, 1)) for c in cs], dtype=np.int64
            )
            got = first_alive_slots(arrays.members, arrays.sizes, start, alive)
            want = np.array(
                [
                    s if (s := ref._first_alive_from(c.cluster_id, int(start[c.cluster_id]), alive)) is not None else -1
                    for c in cs
                ],
                dtype=np.int64,
            )
            assert np.array_equal(got, want)


class TestErcScanParity:
    @pytest.mark.parametrize("erp", [0.0, 0.3, 0.5, 1.0])
    def test_random_masks(self, erp):
        rng = np.random.default_rng(int(erp * 10) + 1)
        erc = EnergyRequestController(erp)
        for _ in range(25):
            n = int(rng.integers(3, 50))
            cs = random_cluster_set(rng, n, int(rng.integers(1, 7)))
            below = rng.random(n) > 0.5
            listed = (rng.random(n) > 0.7) & below
            want = erc.nodes_to_release(cs, below, listed)
            got = erc_release_scan(cs.membership, cs.sizes(), below, listed, erp)
            assert got == want
            # With the preallocated scratch path too.
            arrays = StateArrays(n, 0)
            pack_clusters(cs, arrays)
            got_scratch = erc_release_scan(
                cs.membership, arrays.sizes, below, listed, erp, arrays=arrays
            )
            assert got_scratch == want

    def test_zero_cluster_epoch(self):
        cs = ClusterSet([], 5)
        below = np.array([True, False, True, False, False])
        listed = np.array([True, False, False, False, False])
        want = EnergyRequestController(0.5).nodes_to_release(cs, below, listed)
        got = erc_release_scan(cs.membership, cs.sizes(), below, listed, 0.5)
        assert got == want == [2]

    def test_applicability_gate(self):
        assert erc_scan_applicable(EnergyRequestController(0.5))
        assert erc_scan_applicable(AdaptiveEnergyRequestController())

        class CustomPolicy(EnergyRequestController):
            def nodes_to_release(self, cluster_set, below, listed):
                return []

        assert not erc_scan_applicable(CustomPolicy(0.5))


class TestRelayParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_level_accumulation_matches_walk(self, seed):
        from repro.geometry.field import Field
        from repro.network.routing import RoutingTree
        from repro.network.topology import Topology

        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 80))
        fld = Field(50.0)
        pos = fld.deploy_uniform(n, rng)
        topo = Topology(pos, 18.0, base_station=fld.base_station)
        tree = RoutingTree(topo)
        order = np.argsort(tree.dist, kind="stable")[::-1]
        levels = relay_levels(tree.parent, tree.dist, tree.base, n)
        for _ in range(5):
            origins = np.zeros(n, dtype=bool)
            origins[rng.random(n) > 0.5] = True
            origins &= np.isfinite(tree.dist[:n])
            cnt = np.zeros(n + 1, dtype=np.int64)
            cnt[:n][origins] = 1
            relay_accumulate(cnt, tree.parent, levels)
            ref = np.zeros(n + 1, dtype=np.int64)
            ref[:n][origins] = 1
            for v in order:
                if v == tree.base or ref[v] == 0:
                    continue
                p = tree.parent[v]
                if p >= 0:
                    ref[p] += ref[v]
            assert np.array_equal(cnt, ref)


@contextlib.contextmanager
def soa_env(value):
    """Set ``REPRO_SOA`` for the block (hypothesis-safe: no fixture)."""
    old = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_SOA", None)
        else:
            os.environ["REPRO_SOA"] = old


class TestEngineEquivalence:
    def run_snapshotted(self, soa, checkpoints, **overrides):
        with soa_env(soa):
            cfg = SimulationConfig(**{**SMALL_CONFIG, **overrides})
            world = World(cfg)
            snaps = []
            for t in checkpoints:
                world.sim.run_until(t)
                world._advance_energy()
                snaps.append(snapshot_arrays(world.state))
            return snaps

    @staticmethod
    def assert_snaps_equal(a, b, context):
        for snap_a, snap_b in zip(a, b):
            assert set(snap_a) == set(snap_b)
            for key in snap_a:
                assert np.array_equal(snap_a[key], snap_b[key]), (
                    f"{key} diverged between REPRO_SOA=0 and 1 ({context})"
                )

    @pytest.mark.parametrize("activation", ["round_robin", "full_time"])
    def test_whole_run_snapshots_identical(self, activation):
        checkpoints = [3600.0, 3 * 3600.0, 6 * 3600.0]
        ref = self.run_snapshotted("0", checkpoints, activation=activation)
        soa = self.run_snapshotted("1", checkpoints, activation=activation)
        self.assert_snaps_equal(ref, soa, activation)

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_sensors=st.integers(8, 40),
        ticks=st.lists(st.integers(1, 9), min_size=1, max_size=6),
        activation=st.sampled_from(["round_robin", "full_time"]),
        erp=st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_tick_sequences_identical(
        self, seed, n_sensors, ticks, activation, erp
    ):
        # Random checkpoint times (multiples of a half-tick, so events
        # and checkpoint boundaries interleave in interesting ways).
        times, t = [], 0.0
        for step in ticks:
            t += step * 300.0
            times.append(t)
        overrides = dict(
            seed=seed, n_sensors=n_sensors, activation=activation, erp=erp,
            sim_time_s=times[-1],
        )
        ref = self.run_snapshotted("0", times, **overrides)
        soa = self.run_snapshotted("1", times, **overrides)
        self.assert_snaps_equal(ref, soa, f"seed={seed}")

    def test_summaries_identical_with_leakage_and_adaptive(self, monkeypatch):
        cfg = SimulationConfig(
            **{
                **SMALL_CONFIG,
                "self_discharge_fraction_per_day": 0.05,
                "adaptive_erp": True,
            }
        )
        monkeypatch.setenv("REPRO_SOA", "0")
        ref = run_simulation(cfg).as_dict()
        monkeypatch.setenv("REPRO_SOA", "1")
        soa = run_simulation(cfg).as_dict()
        assert ref == soa


class TestShadowDebug:
    def test_debug_mode_runs_clean(self, monkeypatch):
        """REPRO_DEBUG_SOA runs both engines and must not trip."""
        monkeypatch.setenv("REPRO_SOA", "1")
        monkeypatch.setenv("REPRO_DEBUG_SOA", "1")
        summary = run_simulation(SimulationConfig(**SMALL_CONFIG)).as_dict()
        monkeypatch.delenv("REPRO_DEBUG_SOA")
        assert summary == run_simulation(SimulationConfig(**SMALL_CONFIG)).as_dict()

    def test_shadow_compare_raises_on_divergence(self):
        with pytest.raises(AssertionError, match="diverged"):
            _shadow_compare("unit", np.array([1, 2]), np.array([1, 3]))


class TestAllocationDiscipline:
    def test_alloc_counter_flat_across_ticks(self):
        """Steady-state ticks reuse the preallocated scratch: after the
        warm-up tick, `sim.soa.alloc` must not move until the next
        cluster epoch can resize the member matrix."""
        from repro.obs.instruments import Instruments

        instruments = Instruments()
        cfg = SimulationConfig(**{**SMALL_CONFIG, "target_period_s": 10 * 3600.0})
        world = World(cfg, instruments=instruments)
        counter = instruments.counter("sim.soa.alloc")
        world.sim.run_until(2 * cfg.tick_s)  # warm-up: lazy scratch exists now
        allocs_after_warmup = counter.value
        world.sim.run_until(9 * 3600.0)  # many ticks, no relocation epoch
        assert counter.value == allocs_after_warmup, (
            "SoA scratch was reallocated during steady-state ticks"
        )

    def test_state_arrays_alias_canonical_buffers(self):
        world = World(SimulationConfig(**SMALL_CONFIG))
        s = world.state
        assert s.arrays is not None
        assert s.arrays.levels_j is s.bank.levels_j
        assert s.arrays.positions is s.sensor_pos
        assert s.arrays.requested is s.requested
        assert s.arrays.cluster_id is s.cluster_set.membership
        assert s.arrays.rv_returning is world.fleet.returning
        world.sim.run_until(3600.0)
        # Aliases must survive recomputes and rebuilds within the epoch.
        assert s.arrays.rates_w is world.energy.rates
        assert s.arrays.levels_j is s.bank.levels_j

    def test_rv_block_write_through(self):
        world = World(SimulationConfig(**SMALL_CONFIG))
        world.sim.run_until(6 * 3600.0)
        world._advance_energy()
        a = world.state.arrays
        for rv in world.fleet.rvs:
            assert np.array_equal(a.rv_pos[rv.rv_id], rv.position)
            assert a.rv_level_j[rv.rv_id] == rv.battery.level_j
            assert a.rv_busy[rv.rv_id] == rv.busy

    def test_reference_engine_builds_no_arrays(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOA", "0")
        world = World(SimulationConfig(**SMALL_CONFIG))
        assert world.state.arrays is None
        assert isinstance(world.state.activator, (RoundRobinActivator, FullTimeActivator))


class TestProvenance:
    def test_manifest_records_engine(self, tmp_path, monkeypatch):
        from repro.sim.runner import run_with_telemetry

        monkeypatch.setenv("REPRO_SOA", "1")
        cfg = SimulationConfig(**{**SMALL_CONFIG, "sim_time_s": 3600.0})
        _, manifest = run_with_telemetry(cfg, tmp_path)
        assert manifest.engine["soa"] is True
        # And it round-trips through the JSON on disk.
        from repro.obs.manifest import RunManifest

        loaded = RunManifest.load(tmp_path)
        assert loaded.engine == manifest.engine

    def test_manifest_from_dict_tolerates_missing_engine(self):
        from repro.obs.manifest import RunManifest

        m = RunManifest.create(config={"n_sensors": 1}, seed=0, wall_time_s=0.0)
        data = m.as_dict()
        data.pop("engine")
        assert RunManifest.from_dict(data).engine == {}

    def test_cli_no_soa_sets_env(self, monkeypatch):
        from repro.cli import build_parser

        monkeypatch.delenv("REPRO_SOA", raising=False)
        parser = build_parser()
        args = parser.parse_args(["run", "--no-soa"])
        assert args.soa is False
        args = parser.parse_args(["run", "--soa"])
        assert args.soa is True
        args = parser.parse_args(["run"])
        assert args.soa is None
