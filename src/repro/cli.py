"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run one simulation and print (or JSON-dump) the summary;
  ``--telemetry DIR`` archives a manifest + instrument exports,
  ``--profile`` prints the cProfile hot spots.
* ``estimate`` — closed-form deployment estimates, no simulation.
* ``map`` — run part of a simulation and draw the field (ASCII or SVG).
* ``figure`` — regenerate one paper figure's table.
* ``report`` — render an archived telemetry directory as tables.
* ``drift`` — diff two telemetry/manifest directories (or a benchmark
  history file) for metric drift; exit 1 when anything drifted.
* ``postmortem`` — render a flight-recorder bundle (written by
  ``run --postmortem DIR`` or flushed automatically on a crash or
  monitor violation) as a human-readable incident report.
* ``replay`` — restore a bundle's checkpoint and re-execute it
  deterministically, diffing every replayed tick against the recorded
  state digests; exit 1 on divergence.
* ``serve`` — run the long-lived sweep service on a unix socket: a
  persistent warm worker pool plus an optional content-addressed
  result store shared by every client; ``--live-port`` (or
  ``REPRO_LIVE``) adds the HTTP telemetry plane (``/metrics``,
  ``/healthz``, ``/statusz``) and ``--slo`` arms request-boundary
  objective checks.
* ``submit`` — submit an ERP x scheduler grid to a running service and
  stream per-cell results (table or JSON, reassembled in grid order).
* ``top`` — live terminal dashboard streaming a serving instance's
  ``/statusz`` (per-worker utilization, throughput, latency, SLOs).

Every simulation command accepts ``--preset {small,experiment,paper}``
plus individual overrides, or ``--config file.json`` (see
:mod:`repro.sim.serialization`).  Global flags: ``--version`` and
``--log-level`` (configures stdlib ``logging`` for every subcommand).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import List, Optional

from . import __version__
from .analysis.estimators import DeploymentModel
from .registry import ACTIVATORS, EXPORTERS, SCHEDULERS
from .sim.config import DAY_S, SimulationConfig
from .sim.runner import run_simulation, run_with_telemetry
from .sim.serialization import config_from_dict, config_to_dict
from .utils.tables import format_table

__all__ = ["main", "build_parser"]

LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

_PRESETS = {
    "small": SimulationConfig.small,
    "experiment": SimulationConfig.experiment,
    "paper": SimulationConfig.paper,
}


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--preset", choices=sorted(_PRESETS), default="small",
                   help="base configuration preset (default: small)")
    p.add_argument("--config", metavar="FILE", help="JSON config file (overrides --preset)")
    # Help text comes from the live registries, so plugin registrations
    # (and future built-ins) show up without editing the CLI.
    p.add_argument("--scheduler", help=" | ".join(SCHEDULERS.names()))
    p.add_argument("--activation", choices=ACTIVATORS.names())
    p.add_argument("--erp", type=float, help="Energy Request Percentage in [0, 1]")
    p.add_argument("--days", type=float, help="simulated horizon in days")
    p.add_argument("--seed", type=int)
    p.add_argument("--rvs", type=int, dest="n_rvs", help="number of recharging vehicles")
    p.add_argument("--sensors", type=int, dest="n_sensors")
    p.add_argument("--targets", type=int, dest="n_targets")


def _build_config(args: argparse.Namespace) -> SimulationConfig:
    if args.config:
        with open(args.config) as f:
            cfg = config_from_dict(json.load(f))
    else:
        cfg = _PRESETS[args.preset]()
    overrides = {}
    for key in ("scheduler", "activation", "erp", "seed", "n_rvs", "n_sensors", "n_targets"):
        value = getattr(args, key, None)
        if value is not None:
            overrides[key] = value
    if getattr(args, "days", None) is not None:
        overrides["sim_time_s"] = args.days * DAY_S
    return cfg.with_overrides(**overrides) if overrides else cfg


def _apply_batch(args: argparse.Namespace) -> None:
    """Publish ``--batch`` as ``REPRO_BATCH`` for the sim/experiment
    layers (the executor groups compatible cells into shape-batches;
    ``repro run --batch`` routes through the batched engine at B=1).
    Both engines are bit-exact, so this only changes speed — and the
    recorded engine provenance."""
    if getattr(args, "batch", None) is not None:
        os.environ["REPRO_BATCH"] = "1" if args.batch else "0"


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "soa", None) is not None:
        # Publish the engine selection where SimulationState (and the
        # run manifest's engine provenance) will read it.  Both engines
        # are bit-exact, so this only changes speed — and which engine
        # the manifest records.
        os.environ["REPRO_SOA"] = "1" if args.soa else "0"
    _apply_batch(args)
    cfg = _build_config(args)
    manifest = None

    def _run():
        nonlocal manifest
        if args.telemetry:
            exporters = None
            if args.exporters:
                exporters = [e.strip() for e in args.exporters.split(",") if e.strip()]
            summary, manifest = run_with_telemetry(
                cfg, args.telemetry, exporters,
                # An explicit --postmortem arms the recorder even
                # without REPRO_BLACKBOX; the bundle lands at DIR.
                blackbox=True if args.postmortem else None,
                postmortem=args.postmortem,
            )
            return summary
        if args.postmortem:
            from .sim.runner import run_recorded

            return run_recorded(cfg, args.postmortem, strict=args.strict_monitors)
        from .sim.soa import batch_enabled

        if batch_enabled():
            # A single-cell batch: the batched kernels produce the run
            # (bit-identical to run_simulation; REPRO_DEBUG_BATCH arms
            # the serial shadow twin).
            from .sim.runner import run_batch

            return run_batch([cfg])[0]
        return run_simulation(cfg)

    from .obs import InvariantViolation

    try:
        if args.profile:
            from .utils.profiling import profile_call

            summary, hot_rows = profile_call(_run, top=args.profile_top)
        else:
            summary, hot_rows = _run(), None
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        if args.postmortem:
            print(f"postmortem bundle written to {args.postmortem} "
                  f"(inspect with `repro postmortem`, re-execute with "
                  f"`repro replay`)", file=sys.stderr)
        return 1
    if args.json:
        payload = {"config": config_to_dict(cfg), "summary": summary.as_dict()}
        if manifest is not None:
            payload["telemetry_dir"] = args.telemetry
        print(json.dumps(payload, indent=2))
    else:
        rows = [[k, v] for k, v in summary.as_dict().items()]
        print(format_table(["metric", "value"], rows, precision=4,
                           title=f"{cfg.scheduler} / {cfg.activation} / ERP {cfg.erp}"))
        if manifest is not None:
            print(f"\ntelemetry written to {args.telemetry} "
                  f"({', '.join(manifest.exporters)}; manifest.json)")
    if hot_rows is not None:
        prof = [[loc, ncalls, tot, cum] for loc, ncalls, tot, cum in hot_rows]
        print("\n" + format_table(
            ["function", "ncalls", "tottime s", "cumtime s"], prof,
            precision=4, title=f"cProfile: top {len(prof)} by cumulative time",
        ))
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from .obs.drift import (
        diff_metrics,
        format_drift,
        load_history_pair,
        load_metrics,
    )

    try:
        if args.b is None:
            a, b = load_history_pair(args.a)
            label_a, label_b = "previous", "latest"
        else:
            a, b = load_metrics(args.a), load_metrics(args.b)
            label_a, label_b = args.a, args.b
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"drift: {exc}", file=sys.stderr)
        return 2
    rows = diff_metrics(a, b, rtol=args.rtol, atol=args.atol,
                        ignore=args.ignore)
    print(format_drift(rows, label_a=label_a, label_b=label_b,
                       show_ok=args.all, rtol=args.rtol, atol=args.atol))
    return 1 if any(r["status"] != "ok" for r in rows) else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import format_report, load_report

    try:
        data = load_report(args.directory)
    except FileNotFoundError:
        print(f"no telemetry manifest found under {args.directory!r} "
              f"(expected manifest.json; run `repro run --telemetry DIR` first)",
              file=sys.stderr)
        return 2
    print(format_report(data))
    return 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    from .obs.blackbox import format_postmortem, load_bundle

    try:
        bundle = load_bundle(args.bundle)
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"postmortem: {exc}", file=sys.stderr)
        return 2
    print(format_postmortem(bundle, max_records=args.records))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .obs.blackbox import load_bundle
    from .sim.replay import format_replay, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
        result = replay_bundle(bundle, to_tick=args.to_tick, engine=args.engine)
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    print(format_replay(result))
    return 0 if result.ok else 1


def _cmd_estimate(args: argparse.Namespace) -> int:
    cfg = _build_config(args)
    model = DeploymentModel.from_config(cfg)
    rows = [
        ["expected cluster size", model.cluster_size],
        ["target coverage probability", model.target_coverage_probability],
        ["member power draw (mW)", model.member_power_w * 1000],
        ["recharge requests / day", model.requests_per_day],
        ["fleet lower bound (RVs)", model.fleet_lower_bound(cfg.charge_model.power_w,
                                                            cfg.rv_speed_mps)],
    ]
    print(format_table(["estimate", "value"], rows, precision=3,
                       title="Closed-form deployment estimates (no simulation)"))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from .sim.world import World
    from .viz.ascii import render_field
    from .viz.svg import field_svg, write_svg

    cfg = _build_config(args)
    world = World(cfg)
    horizon = min(args.at_hours * 3600.0, cfg.sim_time_s)
    world.sim.run_until(horizon)
    world._advance_energy()
    snap = world.snapshot()
    if args.svg:
        write_svg(args.svg, field_svg(snap, cfg.side_length_m,
                                      sensing_range=cfg.sensing_range_m,
                                      title=f"t = {horizon / 3600:.1f} h"))
        print(f"wrote {args.svg}")
    else:
        print(render_field(snap, cfg.side_length_m))
    return 0


def _jobs_type(value: str) -> int:
    """Parse a ``--jobs`` argument: a positive integer, or ``auto``
    for ``os.cpu_count()``."""
    if value.strip().lower() == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return jobs


def _apply_jobs(args: argparse.Namespace) -> None:
    """Publish ``--jobs`` as ``REPRO_JOBS`` for the experiment layer.

    The executor consults the environment at each fan-out, so setting
    it here makes every figure/sweep/ablation path under this command
    parallel without threading a parameter through each driver.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        if jobs < 1:
            raise SystemExit("--jobs must be >= 1")
        os.environ["REPRO_JOBS"] = str(jobs)


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import (
        current_scale,
        format_fig4,
        format_fig5,
        format_fig7_panel,
        format_panel,
        run_fig4,
        run_fig5,
        run_fig6,
    )
    from .experiments.fig6_schemes import panel_a, panel_b, panel_c, panel_d
    from .experiments.fig7_profit import panel_a as f7a
    from .experiments.fig7_profit import panel_b as f7b

    _apply_jobs(args)
    scale = current_scale()
    fig = args.id
    if fig == "4":
        print(format_fig4(run_fig4(scale)))
    elif fig == "5":
        print(format_fig5(run_fig5(scale)))
    elif fig in ("6a", "6b", "6c", "6d"):
        sweep = run_fig6(scale)
        panel = {"6a": panel_a, "6b": panel_b, "6c": panel_c, "6d": panel_d}[fig]
        print(format_panel(fig[-1], panel(sweep)))
    elif fig in ("7a", "7b"):
        sweep = run_fig6(scale)
        panel = f7a if fig == "7a" else f7b
        print(format_fig7_panel(fig[-1], panel(sweep)))
    else:
        print(f"unknown figure {fig!r}; choose 4, 5, 6a-6d, 7a, 7b", file=sys.stderr)
        return 2
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.executor import map_configs
    from .utils.stats import mean_std

    _apply_jobs(args)
    _apply_batch(args)
    base = _build_config(args)
    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    erps = [float(x) for x in args.erps.split(",") if x.strip()]
    seeds = [int(x) for x in args.seeds.split(",") if x.strip()]
    metric = args.metric
    # One flat grid through the cell executor: cache lookups up front,
    # misses fanned out over the pool, results reassembled in order.
    grid = [(erp, sched) for erp in erps for sched in schedulers]
    configs = [
        base.with_overrides(scheduler=sched, erp=erp, seed=seed)
        for erp, sched in grid
        for seed in seeds
    ]
    summaries = map_configs(configs, jobs=getattr(args, "jobs", None))
    headers = ["ERP"] + schedulers
    rows = []
    for i, erp in enumerate(erps):
        row: list = [erp]
        for j in range(len(schedulers)):
            start = (i * len(schedulers) + j) * len(seeds)
            values = [s.as_dict()[metric] for s in summaries[start : start + len(seeds)]]
            m, sd = mean_std(values)
            row.append(f"{m:.4g} +/- {sd:.2g}")
        rows.append(row)
    print(
        format_table(
            headers,
            rows,
            title=f"{metric} vs ERP ({base.sim_time_s / 86400:.1f} days, seeds {seeds})",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .experiments.service import SweepService

    _apply_batch(args)
    try:
        service = SweepService(
            args.socket,
            jobs=args.jobs,
            warm=not args.cold,
            store_dir=args.store,
            idle_timeout_s=args.idle_timeout,
            postmortem_dir=args.postmortem,
            live_port=args.live_port,
            slo=args.slo,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    store_note = f", store {args.store}" if args.store else ""
    live_note = ""
    if service.live is not None:
        live_note = f", live {service.live.url}"
    print(
        f"repro sweep service listening on {args.socket} "
        f"(jobs={service.jobs}{store_note}{live_note})",
        flush=True,
    )
    try:
        served = service.serve_forever(max_requests=args.max_requests)
    except KeyboardInterrupt:
        served = service.requests_served
    print(f"sweep service stopped after {served} request(s)")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    url = args.url if args.url else f"http://{args.host}:{args.port}"
    return run_top(
        url.rstrip("/"),
        interval_s=args.interval,
        frames=args.frames,
        plain=args.plain,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentScale
    from .experiments.service import ServiceError, SweepClient
    from .utils.stats import mean_std

    schedulers = [s.strip() for s in args.schedulers.split(",") if s.strip()]
    erps = [float(x) for x in args.erps.split(",") if x.strip()]
    seeds = [int(x) for x in args.seeds.split(",") if x.strip()]
    scale = ExperimentScale("submit", days=args.days, seeds=tuple(seeds))
    client = SweepClient(args.socket, timeout_s=args.timeout)
    try:
        grid = client.submit_grid(scale, schedulers, erps)
        for cell in grid:
            if not args.quiet:
                sched, erp, seed = cell.key
                print(
                    f"cell {cell.index + 1}/{len(grid.keys)}: {sched} "
                    f"erp={erp:g} seed={seed} [{cell.source}]",
                    file=sys.stderr,
                )
        results = grid.results()
    except (ServiceError, OSError) as exc:
        print(f"submit: {exc} (is `repro serve --socket {args.socket}` running?)",
              file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "results": {
                f"{sched}:{erp:g}:{seed}": summary.as_dict()
                for (sched, erp, seed), summary in results.items()
            },
            "sources": grid.sources,
        }
        print(json.dumps(payload, indent=2))
        return 0
    metric = args.metric
    headers = ["ERP"] + schedulers
    rows = []
    for erp in erps:
        row: list = [erp]
        for sched in schedulers:
            values = [
                results[(sched, float(erp), int(seed))].as_dict()[metric]
                for seed in seeds
            ]
            m, sd = mean_std(values)
            row.append(f"{m:.4g} +/- {sd:.2g}")
        rows.append(row)
    sources = ", ".join(f"{k}: {v}" for k, v in sorted(grid.sources.items()))
    print(format_table(
        headers, rows,
        title=f"{metric} vs ERP ({args.days:g} days, seeds {seeds}; {sources})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WRSN joint charging & activity management (ICPP 2015 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, metavar="LEVEL",
        help=f"configure stdlib logging for all subcommands ({'|'.join(LOG_LEVELS)})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one simulation")
    _add_config_args(p_run)
    p_run.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    p_run.add_argument(
        "--telemetry", metavar="DIR",
        help="archive a run manifest + instrument exports into DIR",
    )
    p_run.add_argument(
        "--exporters", metavar="NAMES",
        help=f"comma-separated telemetry exporters (default: all; "
             f"registered: {', '.join(EXPORTERS.names())})",
    )
    p_run.add_argument(
        "--soa", action=argparse.BooleanOptionalAction, default=None,
        help="select the structure-of-arrays tick engine (--no-soa runs "
             "the object-walking reference; default: REPRO_SOA, else on)",
    )
    p_run.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="run through the batched multi-world engine (B=1 here; "
             "bit-identical summary; default: REPRO_BATCH, else off)",
    )
    p_run.add_argument(
        "--postmortem", metavar="DIR",
        help="arm the flight recorder and write a postmortem bundle to "
             "DIR (guaranteed without --telemetry; with --telemetry, "
             "flushed on failure, violation, or run end)",
    )
    p_run.add_argument(
        "--strict-monitors", action=argparse.BooleanOptionalAction, default=None,
        help="make invariant violations raise (default: REPRO_STRICT_MONITORS)",
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    p_run.add_argument(
        "--profile-top", type=int, default=15, metavar="N",
        help="rows in the cProfile table (default: 15)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser("report", help="render an archived telemetry directory")
    p_report.add_argument("directory", help="directory written by `repro run --telemetry`")
    p_report.set_defaults(func=_cmd_report)

    p_drift = sub.add_parser(
        "drift", help="compare two telemetry runs (or benchmark history) for metric drift"
    )
    p_drift.add_argument(
        "a", help="telemetry directory, BENCH_*.json, or — with no second "
                  "argument — a benchmark file whose last two history rows are compared",
    )
    p_drift.add_argument(
        "b", nargs="?", default=None,
        help="second telemetry directory or BENCH_*.json to compare against",
    )
    p_drift.add_argument(
        "--rtol", type=float, default=0.05, metavar="R",
        help="relative drift tolerance (default: 0.05)",
    )
    p_drift.add_argument(
        "--atol", type=float, default=1e-9, metavar="A",
        help="absolute drift tolerance (default: 1e-9)",
    )
    p_drift.add_argument(
        "--all", action="store_true",
        help="also list metrics within tolerance (default: drifted/missing only)",
    )
    p_drift.add_argument(
        "--ignore", action="append", default=[], metavar="GLOB",
        help="drop metrics matching this fnmatch pattern from the "
             "comparison (repeatable); use for metrics that only exist "
             "on one side by design, e.g. counter.sim.soa.*",
    )
    p_drift.set_defaults(func=_cmd_drift)

    p_pm = sub.add_parser(
        "postmortem", help="render a flight-recorder bundle as an incident report"
    )
    p_pm.add_argument("bundle", help="bundle directory (holds blackbox.json)")
    p_pm.add_argument(
        "--records", type=int, default=12, metavar="N",
        help="flight records to show from the tail of the ring (default: 12)",
    )
    p_pm.set_defaults(func=_cmd_postmortem)

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a bundle deterministically and diff against its digests",
    )
    p_replay.add_argument("bundle", help="bundle directory (holds blackbox.json)")
    p_replay.add_argument(
        "--to-tick", type=int, default=None, metavar="T",
        help="replay up to record seq T (default: the bundle's last record)",
    )
    p_replay.add_argument(
        "--engine", choices=("soa", "ref"), default=None,
        help="force the tick engine for the replay (default: the "
             "session's REPRO_SOA setting); replaying a bundle recorded "
             "on the other engine doubles as a bit-exactness audit",
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_est = sub.add_parser("estimate", help="closed-form deployment estimates")
    _add_config_args(p_est)
    p_est.set_defaults(func=_cmd_estimate)

    p_map = sub.add_parser("map", help="draw the field state")
    _add_config_args(p_map)
    p_map.add_argument("--at-hours", type=float, default=6.0,
                       help="simulated hours before taking the snapshot")
    p_map.add_argument("--svg", metavar="FILE", help="write an SVG instead of ASCII")
    p_map.set_defaults(func=_cmd_map)

    p_fig = sub.add_parser("figure", help="regenerate one paper figure (REPRO_SCALE applies)")
    p_fig.add_argument("id", help="4, 5, 6a, 6b, 6c, 6d, 7a or 7b")
    p_fig.add_argument(
        "--jobs", type=_jobs_type, metavar="N",
        help="worker processes for the sweep cells "
             "(N or 'auto'; default: REPRO_JOBS, else 1)",
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_sweep = sub.add_parser("sweep", help="custom ERP x scheduler sweep")
    _add_config_args(p_sweep)
    p_sweep.add_argument(
        "--schedulers", default="greedy,partition,combined",
        help="comma-separated scheduler names",
    )
    p_sweep.add_argument(
        "--erps", default="0,0.2,0.4,0.6,0.8,1.0", help="comma-separated ERP values"
    )
    p_sweep.add_argument(
        "--metric", default="traveling_energy_j",
        help="summary metric to tabulate (see SimulationSummary.as_dict)",
    )
    p_sweep.add_argument(
        "--seeds", default="1,2", help="comma-separated seeds (mean +/- std reported)"
    )
    p_sweep.add_argument(
        "--jobs", type=_jobs_type, metavar="N",
        help="worker processes for the sweep cells "
             "(N or 'auto'; default: REPRO_JOBS, else 1)",
    )
    p_sweep.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="group compatible cells into lockstep shape-batches "
             "(bit-identical per cell; default: REPRO_BATCH, else off)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived sweep service on a unix socket"
    )
    p_serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on (created; removed on exit)",
    )
    p_serve.add_argument(
        "--jobs", type=_jobs_type, metavar="N",
        help="warm-pool worker processes (N or 'auto'; "
             "default: REPRO_JOBS, else 1)",
    )
    p_serve.add_argument(
        "--store", metavar="DIR",
        help="content-addressed result store directory shared by all "
             "clients (default: REPRO_STORE, else no store)",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, metavar="S",
        help="release warm-pool workers after S idle seconds "
             "(default: keep them until shutdown)",
    )
    p_serve.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=None,
        help="execute submitted grids as lockstep shape-batches "
             "(bit-identical per cell; cells report source 'batch'; "
             "default: REPRO_BATCH, else off)",
    )
    p_serve.add_argument(
        "--postmortem", metavar="DIR",
        help="arm the flight recorder for every miss; crashing cells "
             "flush DIR/request-<n>/cell-<grid index> bundles",
    )
    p_serve.add_argument(
        "--max-requests", type=int, metavar="N",
        help="exit after N connections (default: serve until shutdown)",
    )
    p_serve.add_argument(
        "--live-port", type=int, metavar="PORT",
        help="arm the live telemetry plane: HTTP /metrics, /healthz and "
             "/statusz on 127.0.0.1:PORT (0 = pick a free port; "
             "default: REPRO_LIVE, else off)",
    )
    p_serve.add_argument(
        "--slo", metavar="RULES",
        help="';'-separated SLO rules checked at request boundaries, "
             "e.g. 'executor.cell_latency_s:p99<=0.5;pool.respawns:rate<=0.1' "
             "(default: REPRO_SLO; violations count into monitors.violations "
             "and raise under REPRO_STRICT_MONITORS)",
    )
    p_serve.set_defaults(func=_cmd_serve, cold=False)

    p_top = sub.add_parser(
        "top", help="live dashboard over a serving `repro serve --live-port`"
    )
    p_top.add_argument(
        "--url", metavar="URL",
        help="live plane base URL (e.g. http://127.0.0.1:9100); "
             "overrides --host/--port",
    )
    p_top.add_argument("--host", default="127.0.0.1", help="live plane host")
    p_top.add_argument(
        "--port", type=int, default=9100, help="live plane port (default 9100)"
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds (default 1.0)",
    )
    p_top.add_argument(
        "--frames", type=int, metavar="N",
        help="render N frames then exit (CI smoke; default: run until q/Ctrl-C)",
    )
    p_top.add_argument(
        "--plain", action="store_true",
        help="print frames to stdout instead of the curses UI",
    )
    p_top.set_defaults(func=_cmd_top)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep grid to a running `repro serve`"
    )
    p_submit.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket of the sweep service",
    )
    p_submit.add_argument(
        "--schedulers", default="greedy,partition,combined",
        help="comma-separated scheduler names",
    )
    p_submit.add_argument(
        "--erps", default="0,0.2,0.4,0.6,0.8,1.0", help="comma-separated ERP values"
    )
    p_submit.add_argument(
        "--seeds", default="1,2", help="comma-separated seeds (mean +/- std reported)"
    )
    p_submit.add_argument(
        "--days", type=float, default=1.0, help="simulated horizon in days per cell"
    )
    p_submit.add_argument(
        "--metric", default="traveling_energy_j",
        help="summary metric to tabulate (see SimulationSummary.as_dict)",
    )
    p_submit.add_argument(
        "--json", action="store_true",
        help="emit the full grid-ordered results as JSON instead of a table",
    )
    p_submit.add_argument(
        "--timeout", type=float, metavar="S",
        help="socket timeout in seconds (default: wait indefinitely)",
    )
    p_submit.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress lines on stderr",
    )
    p_submit.set_defaults(func=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        # force=True so an explicit --log-level wins even if the host
        # process (a test runner, a notebook) already configured logging.
        logging.basicConfig(
            level=getattr(logging, args.log_level),
            format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            force=True,
        )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
