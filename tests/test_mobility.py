"""Unit tests for repro.mobility (targets and vehicles)."""

import numpy as np
import pytest

from repro.geometry.field import Field
from repro.mobility.targets import TargetProcess
from repro.mobility.vehicles import RechargingVehicle


class TestTargetProcess:
    def test_initial_positions_inside(self, rng):
        f = Field(100.0)
        tp = TargetProcess(f, 10, 3600.0, rng)
        assert tp.positions.shape == (10, 2)
        assert f.contains(tp.positions).all()

    def test_relocate_changes_positions(self, rng):
        f = Field(100.0)
        tp = TargetProcess(f, 5, 3600.0, rng)
        before = tp.positions.copy()
        tp.relocate()
        assert tp.epoch == 1
        assert not np.allclose(before, tp.positions)

    def test_next_relocation_grid(self, rng):
        tp = TargetProcess(Field(10.0), 1, 100.0, rng)
        assert tp.next_relocation_after(0.0) == 100.0
        assert tp.next_relocation_after(99.9) == 100.0
        assert tp.next_relocation_after(100.0) == 200.0

    def test_zero_targets(self, rng):
        tp = TargetProcess(Field(10.0), 0, 100.0, rng)
        assert tp.positions.shape == (0, 2)
        tp.relocate()

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            TargetProcess(Field(10.0), -1, 100.0, rng)
        with pytest.raises(ValueError):
            TargetProcess(Field(10.0), 1, 0.0, rng)


class TestRechargingVehicle:
    def make_rv(self, **kw):
        args = dict(rv_id=0, depot=[0.0, 0.0], speed_mps=2.0,
                    moving_cost_j_per_m=5.0, capacity_j=1000.0)
        args.update(kw)
        return RechargingVehicle(**args)

    def test_starts_at_depot_full(self):
        rv = self.make_rv()
        assert rv.at_depot
        assert rv.battery.level_j == 1000.0

    def test_move_accounting(self):
        rv = self.make_rv()
        t = rv.move_to([3.0, 4.0])
        assert t == pytest.approx(2.5)  # 5 m at 2 m/s
        assert rv.stats.distance_m == pytest.approx(5.0)
        assert rv.stats.moving_energy_j == pytest.approx(25.0)
        assert rv.battery.level_j == pytest.approx(975.0)
        assert not rv.at_depot

    def test_travel_time_and_energy_estimates(self):
        rv = self.make_rv()
        assert rv.travel_time_to([3.0, 4.0]) == pytest.approx(2.5)
        assert rv.travel_energy_to([3.0, 4.0]) == pytest.approx(25.0)

    def test_deliver_debits_budget(self):
        rv = self.make_rv()
        rv.deliver(100.0)
        assert rv.battery.level_j == pytest.approx(900.0)
        assert rv.stats.delivered_energy_j == 100.0
        assert rv.stats.nodes_recharged == 1

    def test_deliver_with_efficiency(self):
        rv = self.make_rv()
        rv.deliver(100.0, efficiency=0.5)
        assert rv.battery.level_j == pytest.approx(800.0)
        assert rv.stats.delivered_energy_j == 100.0

    def test_can_afford(self):
        rv = self.make_rv()
        assert rv.can_afford(100.0, 400.0)  # 500 + 400 <= 1000
        assert not rv.can_afford(150.0, 400.0)  # 750 + 400 > 1000

    def test_return_to_depot_refills(self):
        rv = self.make_rv()
        rv.move_to([10.0, 0.0])
        rv.return_to_depot()
        assert rv.at_depot
        assert rv.battery.level_j == 1000.0
        assert rv.stats.depot_visits == 1
        assert rv.stats.distance_m == pytest.approx(20.0)

    def test_sortie_lifecycle(self):
        rv = self.make_rv()
        rv.begin_sortie([3, 1, 2])
        assert rv.busy
        assert rv.itinerary == [3, 1, 2]
        assert rv.stats.sorties == 1
        rv.end_sortie()
        assert not rv.busy
        assert rv.itinerary == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            self.make_rv(speed_mps=0.0)
        with pytest.raises(ValueError):
            self.make_rv(capacity_j=-1.0)
        with pytest.raises(ValueError):
            self.make_rv(moving_cost_j_per_m=-1.0)

    def test_deliver_validation(self):
        rv = self.make_rv()
        with pytest.raises(ValueError):
            rv.deliver(-1.0)
        with pytest.raises(ValueError):
            rv.deliver(1.0, efficiency=0.0)
