"""Ablation A2 — balanced clustering (Algorithm 1) vs nearest-target.

Static effect: cluster-size spread.  System effect: RV travel and
coverage under the combined scheduler.
"""

from repro.experiments import current_scale
from repro.experiments.ablation_clustering import format_ablation, run_ablation, static_balance

from _shared import emit


def bench_ablation_clustering(benchmark):
    def run():
        return static_balance(seeds=10), run_ablation(current_scale())

    static, dynamic = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_clustering", format_ablation(static, dynamic))
    # Algorithm 1's whole point: tighter cluster sizes than the baseline.
    assert static["balanced"] <= static["nearest_target"]
