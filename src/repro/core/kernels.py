"""Vectorized scheduling kernels and the shared distance cache.

Every scheduler decision in this library reduces to a handful of
numeric primitives — "profit of each candidate", "detour of inserting
node *n* into gap *s*", "nearest unvisited city", "closest centroid" —
evaluated thousands of times per scheduling event.  This module is the
single home for those primitives, each shipped as a **pair** of
implementations:

* a *vectorized* path (numpy broadcasts, masked argmax/argmin
  reductions, matrix slicing) — the default;
* a *reference* path (the plain per-element Python loop the vectorized
  code replaced) kept as the executable specification.

The two paths are **bit-identical**: the vectorized code performs the
same IEEE-754 operations, per element, in the same order as the scalar
loop (``np.hypot`` is sign-insensitive, elementwise ufuncs carry no
reduction-order freedom, and ties resolve to the lowest index on both
sides), so fixed-seed goldens do not move when the knob flips.

Knobs (mirroring the incremental-energy pattern of
``repro.sim.components.energy``):

* ``REPRO_VECTORIZE=0`` — run the reference loops everywhere.
* ``REPRO_DEBUG_VECTORIZE=1`` — run *both* paths on every kernel call
  and raise if a single bit differs (the belt-and-braces mode for
  anyone extending a kernel).

:class:`DistanceCache` memoizes the stop/stop pairwise matrix and the
stop/depot (origin) distance rows for one position array, so greedy,
insertion, partition, the nearest-neighbour tour and 2-opt measure each
leg once per scheduling event instead of once per use.
:func:`distance_cache_for` adds an identity-keyed registry (the
``kdtree_for`` pattern) so repeated planning over the *same* array —
the insertion trimming loop re-touring the same cluster members, the
greedy round chaining picks over one snapshot — shares one cache.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..geometry.points import as_points, distances_from, pairwise_distances

__all__ = [
    "DistanceCache",
    "KERNEL_CALLS",
    "debug_vectorize",
    "distance_cache_for",
    "greedy_pick",
    "insertion_eval",
    "kmeans_assign",
    "masked_argmax",
    "masked_argmax_2d",
    "masked_argmin",
    "profit_vector",
    "reset_kernel_calls",
    "uplink_etx_vector",
    "vectorize_enabled",
]


def vectorize_enabled() -> bool:
    """The ``REPRO_VECTORIZE`` opt-out (default: enabled)."""
    return os.environ.get("REPRO_VECTORIZE", "1") not in ("0", "false", "no")


def debug_vectorize() -> bool:
    """``REPRO_DEBUG_VECTORIZE=1``: run both paths, assert equality."""
    return os.environ.get("REPRO_DEBUG_VECTORIZE", "") not in ("", "0")


#: Cumulative kernel invocations per path, for observability: the fleet
#: component diffs these around each dispatch round and feeds the
#: ``scheduler.kernel.vectorized`` / ``...reference`` counters.
KERNEL_CALLS: Dict[str, int] = {"vectorized": 0, "reference": 0}


def reset_kernel_calls() -> None:
    """Zero the per-path invocation counters (tests and benchmarks)."""
    KERNEL_CALLS["vectorized"] = 0
    KERNEL_CALLS["reference"] = 0


def _dispatch(label, vectorized, reference, equal):
    """Run the selected path; in debug mode run both and compare."""
    if vectorize_enabled():
        out = vectorized()
        KERNEL_CALLS["vectorized"] += 1
        if debug_vectorize():
            ref = reference()
            if not equal(out, ref):
                raise AssertionError(
                    f"vectorized kernel {label!r} diverged from its reference "
                    f"path (REPRO_DEBUG_VECTORIZE): {out!r} != {ref!r}"
                )
        return out
    KERNEL_CALLS["reference"] += 1
    return reference()


# ----------------------------------------------------------------------
# distance cache
# ----------------------------------------------------------------------


class DistanceCache:
    """Memoized distance geometry over one ``(n, 2)`` stop array.

    The array is treated as immutable after construction (the repo-wide
    position contract; see :func:`repro.geometry.points.kdtree_for`).
    Everything is measured with ``np.hypot``, the library-wide metric,
    so a cached entry is bit-identical to a direct measurement.
    """

    __slots__ = ("points", "_pairwise", "_rows", "_origin_rows", "__weakref__")

    def __init__(self, points: np.ndarray) -> None:
        self.points = as_points(points)
        self._pairwise: Optional[np.ndarray] = None
        self._rows: Dict[int, np.ndarray] = {}
        self._origin_rows: "OrderedDict[bytes, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self.points)

    @property
    def pairwise(self) -> np.ndarray:
        """The full stop/stop distance matrix, computed at most once."""
        if self._pairwise is None:
            self._pairwise = pairwise_distances(self.points)
        return self._pairwise

    def row(self, i: int) -> np.ndarray:
        """Distances from stop ``i`` to every stop.

        Slices :attr:`pairwise` when the matrix already exists;
        otherwise measures (and memoizes) the single row, so a caller
        that only ever needs a few origins never pays the full matrix.
        """
        if self._pairwise is not None:
            return self._pairwise[i]
        hit = self._rows.get(i)
        if hit is None:
            hit = distances_from(self.points[i], self.points)
            self._rows[i] = hit
        return hit

    def from_point(self, origin: np.ndarray) -> np.ndarray:
        """Distances from an arbitrary origin (RV / depot) to every stop.

        Memoized on the origin's coordinate bytes — each depot or RV
        position is measured against the stop set once per cache.
        """
        origin = np.asarray(origin, dtype=np.float64).reshape(2)
        key = origin.tobytes()
        hit = self._origin_rows.get(key)
        if hit is None:
            hit = distances_from(origin, self.points)
            self._origin_rows[key] = hit
            while len(self._origin_rows) > 128:
                self._origin_rows.popitem(last=False)
        return hit


# Identity-keyed registry, mirroring geometry.points._TREE_CACHE: the
# weakref guards against id() reuse after eviction, the LRU cap bounds
# memory (each cache pins its matrix and its points array while held).
_CACHE_REGISTRY: "OrderedDict[int, Tuple[weakref.ref, DistanceCache]]" = OrderedDict()
_CACHE_REGISTRY_MAX = 32


def distance_cache_for(points: np.ndarray) -> DistanceCache:
    """The shared :class:`DistanceCache` for ``points``, by identity.

    Passing the *same array object* again returns the same cache, so
    schedulers that re-plan over one snapshot (the insertion trimming
    loop, chained greedy picks, repeated intra-cluster tours) reuse
    every distance already measured.  Arrays that are not canonical
    ``(n, 2)`` float64 get a fresh cache per call.
    """
    pts = as_points(points)
    key = id(pts)
    hit = _CACHE_REGISTRY.get(key)
    if hit is not None and hit[0]() is pts:
        _CACHE_REGISTRY.move_to_end(key)
        return hit[1]
    cache = DistanceCache(pts)

    def _evict(
        _ref: weakref.ref, _key: int = key, _registry: OrderedDict = _CACHE_REGISTRY
    ) -> None:
        _registry.pop(_key, None)

    _CACHE_REGISTRY[key] = (weakref.ref(pts, _evict), cache)
    _CACHE_REGISTRY.move_to_end(key)
    while len(_CACHE_REGISTRY) > _CACHE_REGISTRY_MAX:
        _CACHE_REGISTRY.popitem(last=False)
    return cache


# ----------------------------------------------------------------------
# profit / selection kernels
# ----------------------------------------------------------------------


def profit_vector(
    demands: np.ndarray, dists: np.ndarray, em_j_per_m: float
) -> np.ndarray:
    """Per-node one-shot profit ``d_i - em * dist_i`` (Eq. (2) pricing)."""
    demands = np.asarray(demands, dtype=np.float64)
    dists = np.asarray(dists, dtype=np.float64)

    def _vec() -> np.ndarray:
        return demands - em_j_per_m * dists

    def _ref() -> np.ndarray:
        out = np.empty(len(demands), dtype=np.float64)
        for i in range(len(demands)):
            out[i] = demands[i] - em_j_per_m * dists[i]
        return out

    return _dispatch("profit_vector", _vec, _ref, np.array_equal)


def greedy_pick(
    demands: np.ndarray,
    dists: np.ndarray,
    em_j_per_m: float,
    mask: Optional[np.ndarray] = None,
) -> Optional[int]:
    """Index of the max-profit node among ``mask`` (Algorithm 2, line 8).

    Ties resolve to the lowest index; ``None`` when nothing is selectable.
    """
    demands = np.asarray(demands, dtype=np.float64)
    dists = np.asarray(dists, dtype=np.float64)
    if len(demands) == 0 or (mask is not None and not np.any(mask)):
        return None

    def _vec() -> int:
        profits = demands - em_j_per_m * dists
        if mask is not None:
            profits = np.where(mask, profits, -np.inf)
        return int(np.argmax(profits))

    def _ref() -> int:
        best = -np.inf
        best_i = -1
        for i in range(len(demands)):
            if mask is not None and not mask[i]:
                continue
            p = demands[i] - em_j_per_m * dists[i]
            if p > best:
                best = p
                best_i = i
        return best_i

    return _dispatch("greedy_pick", _vec, _ref, lambda a, b: a == b)


def masked_argmax(values: np.ndarray, mask: np.ndarray) -> Optional[int]:
    """First index of the maximum of ``values`` where ``mask`` holds."""
    values = np.asarray(values, dtype=np.float64)
    if not np.any(mask):
        return None

    def _vec() -> int:
        return int(np.argmax(np.where(mask, values, -np.inf)))

    def _ref() -> int:
        best = -np.inf
        best_i = -1
        for i in range(len(values)):
            if mask[i] and values[i] > best:
                best = values[i]
                best_i = i
        return best_i

    return _dispatch("masked_argmax", _vec, _ref, lambda a, b: a == b)


def masked_argmax_2d(
    values: np.ndarray, mask: np.ndarray
) -> Optional[Tuple[int, int]]:
    """Row-major first ``(row, col)`` of the masked maximum, or ``None``."""
    values = np.asarray(values, dtype=np.float64)
    if not np.any(mask):
        return None

    def _vec() -> Tuple[int, int]:
        flat = int(np.argmax(np.where(mask, values, -np.inf)))
        r, c = np.unravel_index(flat, values.shape)
        return int(r), int(c)

    def _ref() -> Tuple[int, int]:
        best = -np.inf
        best_rc = (-1, -1)
        rows, cols = values.shape
        for r in range(rows):
            for c in range(cols):
                if mask[r, c] and values[r, c] > best:
                    best = values[r, c]
                    best_rc = (r, c)
        return best_rc

    return _dispatch("masked_argmax_2d", _vec, _ref, lambda a, b: a == b)


def masked_argmin(dists: np.ndarray, mask: Optional[np.ndarray] = None) -> Optional[int]:
    """First index of the minimum of ``dists`` where ``mask`` holds."""
    dists = np.asarray(dists, dtype=np.float64)
    if len(dists) == 0 or (mask is not None and not np.any(mask)):
        return None

    def _vec() -> int:
        d = dists if mask is None else np.where(mask, dists, np.inf)
        return int(np.argmin(d))

    def _ref() -> int:
        best = np.inf
        best_i = -1
        for i in range(len(dists)):
            if mask is not None and not mask[i]:
                continue
            if dists[i] < best:
                best = dists[i]
                best_i = i
        return best_i

    return _dispatch("masked_argmin", _vec, _ref, lambda a, b: a == b)


# ----------------------------------------------------------------------
# insertion kernel — Algorithm 3's p(s, n) evaluation
# ----------------------------------------------------------------------


def insertion_eval(
    dmat: np.ndarray,
    dist0: np.ndarray,
    demands: np.ndarray,
    route: Sequence[int],
    remaining: Sequence[int],
    em_j_per_m: float,
    charge_efficiency: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Profit difference and budget debit of every candidate insertion.

    Gap ``s`` runs waypoint ``s`` → waypoint ``s + 1`` of the route
    ``[rv] + route``; candidate ``n`` ranges over ``remaining``.  For
    each pair this evaluates the paper's
    ``p(s, n) = D(n) - em * delta_d(s)`` and the budget debit
    ``em * delta_d(s) + D(n) / efficiency``.

    Args:
        dmat: stop/stop distance matrix (``DistanceCache.pairwise``).
        dist0: RV-to-stop distances (``DistanceCache.from_point``).
        demands: per-stop demand vector.
        route: current visit order (stop indices), destination last.
        remaining: unscheduled stop indices.

    Returns:
        ``(p, extra_cost)`` — both of shape
        ``(len(route), len(remaining))``.
    """
    route = list(route)
    remaining = list(remaining)
    demands = np.asarray(demands, dtype=np.float64)

    def _vec() -> Tuple[np.ndarray, np.ndarray]:
        heads = route[:-1]  # gap-start stops beyond the RV itself
        if heads:
            d_ac = np.vstack([dist0[remaining], dmat[np.ix_(heads, remaining)]])
            d_ab = np.concatenate(([dist0[route[0]]], dmat[heads, route[1:]]))
        else:
            d_ac = dist0[remaining][None, :]
            d_ab = dist0[[route[0]]]
        d_cb = dmat[np.ix_(route, remaining)]
        detour = d_ac + d_cb - d_ab[:, None]  # (gaps, candidates)
        dem = demands[remaining]
        p = dem[None, :] - em_j_per_m * detour
        extra = em_j_per_m * detour + (dem / charge_efficiency)[None, :]
        return p, extra

    def _ref() -> Tuple[np.ndarray, np.ndarray]:
        k, r = len(route), len(remaining)
        p = np.empty((k, r), dtype=np.float64)
        extra = np.empty((k, r), dtype=np.float64)
        for s in range(k):
            d_ab = dist0[route[0]] if s == 0 else dmat[route[s - 1], route[s]]
            for c in range(r):
                n = remaining[c]
                d_ac = dist0[n] if s == 0 else dmat[route[s - 1], n]
                d_cb = dmat[route[s], n]
                detour = d_ac + d_cb - d_ab
                p[s, c] = demands[n] - em_j_per_m * detour
                extra[s, c] = em_j_per_m * detour + demands[n] / charge_efficiency
        return p, extra

    return _dispatch(
        "insertion_eval",
        _vec,
        _ref,
        lambda a, b: np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1]),
    )


# ----------------------------------------------------------------------
# K-means assignment kernel
# ----------------------------------------------------------------------


def kmeans_assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the squared-nearest centroid for every point (Lloyd step).

    Ties resolve to the lowest centroid index on both paths.
    """
    points = as_points(points)
    centroids = as_points(centroids)

    def _vec() -> np.ndarray:
        diff = points[:, None, :] - centroids[None, :, :]
        dist2 = diff[..., 0] ** 2 + diff[..., 1] ** 2
        return np.argmin(dist2, axis=1).astype(np.intp, copy=False)

    def _ref() -> np.ndarray:
        labels = np.empty(len(points), dtype=np.intp)
        for i in range(len(points)):
            best = np.inf
            best_j = -1
            for j in range(len(centroids)):
                d2 = (points[i, 0] - centroids[j, 0]) ** 2 + (
                    points[i, 1] - centroids[j, 1]
                ) ** 2
                if d2 < best:
                    best = d2
                    best_j = j
            labels[i] = best_j
        return labels

    return _dispatch("kmeans_assign", _vec, _ref, np.array_equal)


# ----------------------------------------------------------------------
# ETX uplink kernel (SimulationState.from_config)
# ----------------------------------------------------------------------


def uplink_etx_vector(
    points: np.ndarray,
    parent: np.ndarray,
    n_sensors: int,
    comm_range_m: float,
) -> np.ndarray:
    """Expected per-packet transmissions on each sensor's uplink.

    One batched :func:`~repro.network.linkquality.prr_from_distance`
    call over every parented sensor replaces the per-sensor 1-element
    arrays the scalar loop built; entries are bit-identical (all the
    PRR arithmetic is elementwise).
    """
    from ..network.linkquality import prr_from_distance

    points = np.asarray(points, dtype=np.float64)
    parent = np.asarray(parent)

    def _vec() -> np.ndarray:
        etx = np.ones(n_sensors, dtype=np.float64)
        vs = np.flatnonzero(parent[:n_sensors] >= 0)
        if vs.size:
            diff = points[vs] - points[parent[vs]]
            hops = np.hypot(diff[:, 0], diff[:, 1])
            prr = prr_from_distance(hops, comm_range_m)
            vals = np.ones_like(prr)
            np.divide(1.0, prr * prr, out=vals, where=prr > 0)
            etx[vs] = vals
        return etx

    def _ref() -> np.ndarray:
        etx = np.ones(n_sensors, dtype=np.float64)
        for v in range(n_sensors):
            p = parent[v]
            if p >= 0:
                hop = float(np.hypot(*(points[v] - points[p])))
                prr = float(prr_from_distance(np.array([hop]), comm_range_m)[0])
                etx[v] = 1.0 / (prr * prr) if prr > 0 else 1.0
        return etx

    return _dispatch("uplink_etx", _vec, _ref, np.array_equal)
