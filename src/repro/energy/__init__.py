"""Energy substrate: consumption models, batteries, wireless charging."""

from .battery import DEFAULT_SENSOR_CAPACITY_J, Battery, BatteryBank
from .consumption import (
    CC2480_RADIO,
    PAPER_NODE_POWER,
    PIR_DETECTOR,
    NodePowerModel,
    RadioModel,
    SensingModel,
)
from .recharge import ChargeModel

__all__ = [
    "Battery",
    "BatteryBank",
    "CC2480_RADIO",
    "ChargeModel",
    "DEFAULT_SENSOR_CAPACITY_J",
    "NodePowerModel",
    "PAPER_NODE_POWER",
    "PIR_DETECTOR",
    "RadioModel",
    "SensingModel",
]
