"""Golden-value regression tests.

A fixed configuration and seed must keep producing the same summary —
any drift means the simulation semantics changed, which must be a
conscious decision (update the goldens in the same commit and say why).

Golden values were recorded with repro 1.0.0.
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation

GOLDEN_CONFIG = dict(
    n_sensors=50,
    n_targets=4,
    n_rvs=2,
    side_length_m=80.0,
    comm_range_m=12.0,
    sensing_range_m=10.0,
    sim_time_s=86400.0,
    target_period_s=10800.0,
    battery_capacity_j=500.0,
    initial_charge_range=(0.55, 0.9),
    dispatch_period_s=3600.0,
    scheduler="combined",
    erp=0.5,
    seed=2024,
)

# Full fixed-seed summaries for the four paper schedulers, recorded
# bit-identically against the pre-component-split engine.  Equality is
# exact (==, not approx): the component refactor must not perturb a
# single ulp of the trajectory.
GOLDEN_SUMMARIES = {
    "greedy": {
        "sim_time_s": 86400.0,
        "traveling_distance_m": 1607.669214713484,
        "traveling_energy_j": 9002.94760239551,
        "delivered_energy_j": 11930.710443047985,
        "objective_j": 2927.7628406524746,
        "avg_coverage_ratio": 1.0,
        "missing_rate": 0.0,
        "avg_nonfunctional_fraction": 0.0,
        "avg_operational_sensors": 50.0,
        "recharging_cost_m_per_sensor": 32.15338429426968,
        "n_recharges": 42.0,
        "n_sorties": 31.0,
        "n_requests": 43.0,
        "mean_request_latency_s": 1501.6844562618207,
        "events_fired": 260.0,
    },
    "insertion": {
        "sim_time_s": 86400.0,
        "traveling_distance_m": 1162.9178148301464,
        "traveling_energy_j": 6512.339763048821,
        "delivered_energy_j": 11997.32380121371,
        "objective_j": 5484.984038164889,
        "avg_coverage_ratio": 1.0,
        "missing_rate": 0.0,
        "avg_nonfunctional_fraction": 0.0,
        "avg_operational_sensors": 50.0,
        "recharging_cost_m_per_sensor": 23.25835629660293,
        "n_recharges": 42.0,
        "n_sorties": 19.0,
        "n_requests": 43.0,
        "mean_request_latency_s": 1681.0469371044323,
        "events_fired": 260.0,
    },
    "partition": {
        "sim_time_s": 86400.0,
        "traveling_distance_m": 1215.4774470211055,
        "traveling_energy_j": 6806.673703318191,
        "delivered_energy_j": 12082.15923761838,
        "objective_j": 5275.485534300189,
        "avg_coverage_ratio": 1.0,
        "missing_rate": 0.0,
        "avg_nonfunctional_fraction": 0.0,
        "avg_operational_sensors": 49.999999999999986,
        "recharging_cost_m_per_sensor": 24.30954894042212,
        "n_recharges": 42.0,
        "n_sorties": 30.0,
        "n_requests": 44.0,
        "mean_request_latency_s": 1836.227306763322,
        "events_fired": 260.0,
    },
    # The combined scheme with a 2-RV fleet reduces to sequential
    # insertion here, so its trajectory coincides with "insertion".
    "combined": {
        "sim_time_s": 86400.0,
        "traveling_distance_m": 1162.9178148301464,
        "traveling_energy_j": 6512.339763048821,
        "delivered_energy_j": 11997.32380121371,
        "objective_j": 5484.984038164889,
        "avg_coverage_ratio": 1.0,
        "missing_rate": 0.0,
        "avg_nonfunctional_fraction": 0.0,
        "avg_operational_sensors": 50.0,
        "recharging_cost_m_per_sensor": 23.25835629660293,
        "n_recharges": 42.0,
        "n_sorties": 19.0,
        "n_requests": 43.0,
        "mean_request_latency_s": 1681.0469371044323,
        "events_fired": 260.0,
    },
}


@pytest.fixture(scope="module")
def summary():
    return run_simulation(SimulationConfig(**GOLDEN_CONFIG))


class TestGolden:
    def test_structure_is_stable(self, summary):
        d = summary.as_dict()
        assert len(d) == 15

    def test_run_reproduces_itself(self, summary):
        again = run_simulation(SimulationConfig(**GOLDEN_CONFIG))
        assert again.as_dict() == summary.as_dict()

    def test_counts_plausible_and_pinned(self, summary):
        """Count-valued metrics are pinned exactly (integers don't
        suffer float noise); update deliberately if semantics change."""
        assert summary.n_requests > 0
        assert summary.n_recharges > 0
        assert summary.n_recharges <= summary.n_requests
        # Invariants that should never drift:
        assert summary.sim_time_s == 86400.0
        assert summary.objective_j == pytest.approx(
            summary.delivered_energy_j - summary.traveling_energy_j
        )
        assert summary.traveling_energy_j == pytest.approx(
            summary.traveling_distance_m * 5.6
        )

    def test_scheduler_change_changes_outcome(self, summary):
        other = run_simulation(
            SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": "greedy"})
        )
        assert other.as_dict() != summary.as_dict()


class TestGoldenPerScheduler:
    """Exact pinned summaries for every paper scheduler."""

    @pytest.mark.parametrize("scheduler", sorted(GOLDEN_SUMMARIES))
    def test_summary_bit_identical(self, scheduler):
        cfg = SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": scheduler})
        got = run_simulation(cfg).as_dict()
        expected = GOLDEN_SUMMARIES[scheduler]
        assert set(got) == set(expected)
        mismatches = {
            k: (got[k], expected[k]) for k in expected if got[k] != expected[k]
        }
        assert not mismatches, f"{scheduler} drifted: {mismatches}"


class TestGoldenExecutionMatrix:
    """The pinned summaries must survive every execution mode: serial
    or process-pool (``jobs``), vectorized kernels or reference loops
    (``REPRO_VECTORIZE``), SoA or object-walking tick engine
    (``REPRO_SOA``).  Workers inherit the knobs through the
    environment, so the matrix covers child processes too."""

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("vectorize", ["0", "1"])
    @pytest.mark.parametrize("soa", ["0", "1"])
    def test_matrix_bit_identical(self, monkeypatch, jobs, vectorize, soa):
        from repro.experiments.executor import map_configs

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_VECTORIZE", vectorize)
        monkeypatch.setenv("REPRO_SOA", soa)
        schedulers = ("greedy", "insertion")
        configs = [
            SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": s}) for s in schedulers
        ]
        results = map_configs(configs, jobs=jobs)
        for scheduler, summary in zip(schedulers, results):
            got = summary.as_dict()
            expected = GOLDEN_SUMMARIES[scheduler]
            mismatches = {
                k: (got[k], expected[k]) for k in expected if got[k] != expected[k]
            }
            assert not mismatches, (
                f"{scheduler} drifted under jobs={jobs}, "
                f"REPRO_VECTORIZE={vectorize}, REPRO_SOA={soa}: {mismatches}"
            )

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("batch", ["0", "1"])
    @pytest.mark.parametrize("soa", ["0", "1"])
    def test_batched_matrix_bit_identical(self, monkeypatch, jobs, batch, soa):
        """``REPRO_BATCH=1`` must change wall clock only: the lockstep
        multi-world engine reproduces the goldens bit-for-bit, whether
        the chunks run in-process or across pool workers, and with
        ``REPRO_SOA=0`` (where batching cannot apply and every cell
        falls back serially) nothing changes either."""
        from repro.experiments.executor import map_configs

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_SOA", soa)
        monkeypatch.setenv("REPRO_BATCH", batch)
        if jobs > 1:
            # One cell per chunk so the shape-batches actually fan out.
            monkeypatch.setenv("REPRO_BATCH_SIZE", "1")
        schedulers = ("greedy", "insertion")
        configs = [
            SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": s}) for s in schedulers
        ]
        results = map_configs(configs, jobs=jobs)
        for scheduler, summary in zip(schedulers, results):
            got = summary.as_dict()
            expected = GOLDEN_SUMMARIES[scheduler]
            mismatches = {
                k: (got[k], expected[k]) for k in expected if got[k] != expected[k]
            }
            assert not mismatches, (
                f"{scheduler} drifted under jobs={jobs}, "
                f"REPRO_BATCH={batch}, REPRO_SOA={soa}: {mismatches}"
            )

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("warm", [False, True])
    def test_pool_backend_matrix_bit_identical(self, monkeypatch, jobs, warm):
        """The warm persistent pool must reproduce the goldens exactly,
        like the cold per-call pool and the serial loop — pool reuse
        amortizes cost, never state."""
        from repro.experiments.executor import map_configs
        from repro.experiments.pool import shutdown_warm_pool

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_STORE", raising=False)
        schedulers = ("greedy", "insertion")
        configs = [
            SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": s}) for s in schedulers
        ]
        try:
            results = map_configs(configs, jobs=jobs, warm=warm)
        finally:
            shutdown_warm_pool()
        for scheduler, summary in zip(schedulers, results):
            got = summary.as_dict()
            expected = GOLDEN_SUMMARIES[scheduler]
            mismatches = {
                k: (got[k], expected[k]) for k in expected if got[k] != expected[k]
            }
            assert not mismatches, (
                f"{scheduler} drifted under jobs={jobs}, warm={warm}: {mismatches}"
            )
