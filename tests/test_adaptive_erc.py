"""Tests for the adaptive-ERP controller and the RV depot dwell."""

import numpy as np
import pytest

from repro.core.clustering import Cluster, ClusterSet
from repro.core.erc import AdaptiveEnergyRequestController
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


class TestAdaptiveController:
    def make(self, **kw):
        args = dict(initial_erp=0.4, adjust_period_s=100.0, step_up=0.1, backoff=0.5)
        args.update(kw)
        return AdaptiveEnergyRequestController(**args)

    def test_quiet_periods_raise_erp(self):
        ctl = self.make()
        assert ctl.maybe_adjust(100.0)
        assert ctl.erp == pytest.approx(0.5)
        assert ctl.maybe_adjust(200.0)
        assert ctl.erp == pytest.approx(0.6)

    def test_deaths_back_off(self):
        ctl = self.make()
        ctl.observe_deaths(3)
        ctl.maybe_adjust(100.0)
        assert ctl.erp == pytest.approx(0.2)

    def test_counter_resets_after_adjust(self):
        ctl = self.make()
        ctl.observe_deaths(1)
        ctl.maybe_adjust(100.0)
        assert ctl.maybe_adjust(200.0)  # quiet now -> up again
        assert ctl.erp == pytest.approx(0.3)

    def test_no_adjust_before_period(self):
        ctl = self.make()
        assert not ctl.maybe_adjust(50.0)
        assert ctl.erp == pytest.approx(0.4)

    def test_clamping(self):
        ctl = self.make(initial_erp=0.95, step_up=0.2)
        ctl.maybe_adjust(100.0)
        assert ctl.erp == 1.0
        ctl2 = self.make(initial_erp=0.01, backoff=0.1)
        ctl2.observe_deaths(1)
        ctl2.maybe_adjust(100.0)
        assert ctl2.erp >= 0.0

    def test_history_recorded(self):
        ctl = self.make()
        ctl.maybe_adjust(100.0)
        ctl.observe_deaths(1)
        ctl.maybe_adjust(200.0)
        times = [t for t, _ in ctl.history]
        assert times == [0.0, 100.0, 200.0]

    def test_gate_still_works(self):
        ctl = self.make(initial_erp=1.0)
        cs = ClusterSet([Cluster(0, [0, 1])], n_sensors=2)
        below = np.array([True, False])
        assert ctl.nodes_to_release(cs, below, np.zeros(2, bool)) == []
        below[1] = True
        assert ctl.nodes_to_release(cs, below, np.zeros(2, bool)) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEnergyRequestController(adjust_period_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveEnergyRequestController(backoff=0.0)
        with pytest.raises(ValueError):
            AdaptiveEnergyRequestController(erp_min=0.5, erp_max=0.2)
        with pytest.raises(ValueError):
            self.make().observe_deaths(-1)


class TestAdaptiveInWorld:
    def test_adaptive_run(self):
        cfg = SimulationConfig.small(adaptive_erp=True, erp=0.2, sim_time_s=2 * DAY_S, seed=3)
        w = World(cfg)
        s = w.run()
        assert s.n_recharges > 0
        # With no deaths in the small healthy scenario, K climbed.
        assert w.erc.erp > 0.2

    def test_adaptive_flag_changes_outcome_only_via_erp(self):
        base = SimulationConfig.small(erp=0.2, sim_time_s=1 * DAY_S, seed=3)
        s_static = World(base).run()
        s_adaptive = World(base.with_overrides(adaptive_erp=True)).run()
        # Both must be valid runs; they may legitimately differ.
        for s in (s_static, s_adaptive):
            assert 0 <= s.avg_coverage_ratio <= 1


class TestDepotDwell:
    def test_dwell_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(rv_depot_dwell_s=-1.0)

    def test_dwell_slows_service(self):
        base = dict(
            n_sensors=40,
            n_targets=3,
            n_rvs=1,
            side_length_m=60.0,
            sim_time_s=1.5 * DAY_S,
            battery_capacity_j=400.0,
            initial_charge_range=(0.5, 0.8),
            dispatch_period_s=1800.0,
            rv_capacity_j=3000.0,  # force frequent depot returns
            seed=4,
        )
        fast = World(SimulationConfig(**base)).run()
        slow = World(SimulationConfig(rv_depot_dwell_s=2 * 3600.0, **base)).run()
        assert slow.n_recharges <= fast.n_recharges
