"""Tests for the experiment drivers (at a micro scale so they stay fast)."""

import numpy as np
import pytest

from repro.experiments.common import (
    ERP_GRID,
    SCHEMES,
    ExperimentScale,
    current_scale,
    run_cell,
    run_erp_sweep,
)
from repro.experiments.fig4_activity import (
    CASES,
    activity_saving_percent,
    format_fig4,
)
from repro.experiments.fig5_tradeoff import format_fig5, run_fig5
from repro.experiments.fig6_schemes import format_panel, panel_a, panel_b, panel_c, panel_d
from repro.experiments.fig7_profit import format_fig7_panel
from repro.experiments.fig7_profit import panel_a as fig7a
from repro.experiments.headline import format_headline

MICRO = ExperimentScale("micro", days=1.0, seeds=(1,))


def micro_cell(**overrides):
    defaults = dict(
        n_sensors=60,
        n_targets=3,
        side_length_m=80.0,
        battery_capacity_j=400.0,
        initial_charge_range=(0.5, 0.8),
        dispatch_period_s=1800.0,
    )
    defaults.update(overrides)
    return run_cell(MICRO, **defaults)


class TestCommon:
    def test_erp_grid_matches_paper_axis(self):
        assert ERP_GRID == (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
        assert SCHEMES == ("greedy", "partition", "combined")

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "galaxy")
        with pytest.raises(ValueError):
            current_scale()

    def test_run_cell_returns_summary_dict(self):
        cell = micro_cell(scheduler="greedy")
        assert "traveling_energy_j" in cell
        assert cell["sim_time_s"] == pytest.approx(86400.0)

    def test_run_erp_sweep_shapes(self):
        sweep = run_erp_sweep(
            MICRO,
            schedulers=("greedy",),
            erps=(0.0, 1.0),
            n_sensors=60,
            n_targets=3,
            side_length_m=80.0,
            battery_capacity_j=400.0,
            initial_charge_range=(0.5, 0.8),
            dispatch_period_s=1800.0,
        )
        assert set(sweep) == {"greedy"}
        assert len(sweep["greedy"]["traveling_energy_j"]) == 2


class TestFigureFormatters:
    def _fake_sweep(self):
        metrics = [
            "traveling_energy_j",
            "avg_coverage_ratio",
            "avg_nonfunctional_fraction",
            "recharging_cost_m_per_sensor",
            "delivered_energy_j",
            "objective_j",
            "traveling_distance_m",
        ]
        rng = np.random.default_rng(0)
        return {
            s: {m: list(rng.uniform(0.1, 1.0, size=len(ERP_GRID))) for m in metrics}
            for s in SCHEMES
        }

    def test_fig6_panels_extract_all_schemes(self):
        sweep = self._fake_sweep()
        for panel in (panel_a, panel_b, panel_c, panel_d):
            series = panel(sweep)
            assert set(series) == set(SCHEMES)
            assert all(len(v) == len(ERP_GRID) for v in series.values())

    def test_fig6_format_contains_title(self):
        sweep = self._fake_sweep()
        out = format_panel("a", panel_a(sweep))
        assert "Fig. 6(a)" in out

    def test_fig7_panels(self):
        sweep = self._fake_sweep()
        series = fig7a(sweep)
        assert set(series) == set(SCHEMES)
        out = format_fig7_panel("a", series)
        assert "Fig. 7(a)" in out

    def test_fig5_format(self):
        result = {
            "erp": [0.0, 1.0],
            "traveling_energy_mj": [1.0, 0.8],
            "missing_rate_pct": [0.0, 2.0],
        }
        out = format_fig5(result)
        assert "Fig. 5" in out

    def test_fig4_cases_cover_grid(self):
        labels = [c[0] for c in CASES]
        assert len(CASES) == 4
        assert "No ERC - Full time" in labels
        assert "With ERC - With RR" in labels

    def test_fig4_savings_and_format(self):
        fake = {
            "No ERC - Full time": {s: 1.0 for s in SCHEMES},
            "No ERC - With RR": {s: 0.9 for s in SCHEMES},
            "With ERC - Full time": {s: 0.95 for s in SCHEMES},
            "With ERC - With RR": {s: 0.8 for s in SCHEMES},
        }
        savings = activity_saving_percent(fake)
        assert all(v == pytest.approx(20.0) for v in savings.values())
        assert "Fig. 4" in format_fig4(fake)

    def test_headline_format(self):
        result = {
            "activity_mgmt_saving_pct": 10.0,
            "partition_distance_saving_pct": 20.0,
            "combined_distance_saving_pct": 5.0,
            "partition_nonfunctional_reduction_pct": 15.0,
            "combined_nonfunctional_reduction_pct": 40.0,
        }
        out = format_headline(result)
        assert "paper (%)" in out and "41.0" in out


class TestMicroEndToEnd:
    """One tiny but real end-to-end figure run (keeps the drivers honest)."""

    def test_fig5_micro(self):
        result = run_fig5(
            ExperimentScale("micro", days=0.5, seeds=(1,)),
            erps=(0.0, 1.0),
        )
        assert len(result["traveling_energy_mj"]) == 2
        assert all(v >= 0 for v in result["traveling_energy_mj"])
