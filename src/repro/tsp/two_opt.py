"""2-opt local search for open tours.

Not part of the paper's algorithms — provided as the ablation the
DESIGN.md calls out (A3): how much RV distance a classical 2-opt
post-pass recovers on top of the nearest-neighbour / insertion tours.

Two implementations share the module (see :mod:`repro.core.kernels`
for the knobs):

* the *reference* path is the classic nested first-improvement loop;
* the *vectorized* path measures every leg once into a pairwise
  distance matrix, evaluates **all** candidate deltas of a sweep as one
  broadcast, and replays improving moves in scan order — after each
  applied move the candidate deltas are re-broadcast against the
  mutated order and the scan resumes at the following ``(i, j)`` cell,
  which is exactly the state the scalar loop would be in.  The move
  sequence, and therefore the returned order, is bit-identical
  (``np.hypot`` is sign-insensitive and each delta is the same
  ``d(a,c) + d(b,d) - d(a,b) - d(c,d)`` operation chain).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geometry.points import as_points

__all__ = ["two_opt"]

#: A move must shorten the tour by more than this to count (guards the
#: scan against cycling on floating-point noise).
_EPS = 1e-12


def _two_opt_reference(points: np.ndarray, order: List[int], max_rounds: int) -> List[int]:
    """The scalar first-improvement loop (executable specification)."""
    n = len(order)

    def seg(a: int, b: int) -> float:
        d = points[a] - points[b]
        return float(np.hypot(d[0], d[1]))

    for _ in range(max_rounds):
        improved = False
        # Reverse order[i:j+1]; endpoints 0 and n-1 never move.
        for i in range(1, n - 2):
            for j in range(i + 1, n - 1):
                a, b = order[i - 1], order[i]
                c, d = order[j], order[j + 1]
                delta = seg(a, c) + seg(b, d) - seg(a, b) - seg(c, d)
                if delta < -_EPS:
                    order[i : j + 1] = reversed(order[i : j + 1])
                    improved = True
        if not improved:
            break
    return order


def _two_opt_vectorized(points: np.ndarray, order: List[int], max_rounds: int) -> List[int]:
    """Broadcast sweeps over a shared distance matrix, replayed in scan
    order so the applied moves match the reference loop move for move."""
    from ..core import kernels

    n = len(order)
    D = kernels.distance_cache_for(points).pairwise
    I = np.arange(1, n - 2)  # noqa: E741 — the loop variable of the spec
    J = np.arange(2, n - 1)
    ii = I[:, None]
    jj = J[None, :]
    upper = jj > ii  # candidate cells: j in (i, n-1)
    for _ in range(max_rounds):
        improved = False
        i0, j0 = 1, 2  # scan cursor: next candidate cell to consider
        while True:
            ordv = np.asarray(order, dtype=np.intp)
            # delta[i, j] = d(a,c) + d(b,d) - d(a,b) - d(c,d) with
            # a=order[i-1], b=order[i], c=order[j], d=order[j+1] — the
            # same left-to-right chain as the scalar loop, elementwise.
            d_ac = D[ordv[I - 1][:, None], ordv[J][None, :]]
            d_bd = D[ordv[I][:, None], ordv[J + 1][None, :]]
            d_ab = D[ordv[I - 1], ordv[I]][:, None]
            d_cd = D[ordv[J], ordv[J + 1]][None, :]
            delta = d_ac + d_bd - d_ab - d_cd
            cand = (delta < -_EPS) & upper
            # Cells before the cursor were already scanned this sweep.
            cand &= (ii > i0) | ((ii == i0) & (jj >= j0))
            if not cand.any():
                break
            flat = int(np.argmax(cand))  # first True in row-major order
            ri, rj = divmod(flat, len(J))
            i, j = int(I[ri]), int(J[rj])
            order[i : j + 1] = reversed(order[i : j + 1])
            improved = True
            i0, j0 = i, j + 1
        if not improved:
            break
    return order


def two_opt(
    points: np.ndarray,
    order: Sequence[int],
    max_rounds: int = 50,
) -> List[int]:
    """Improve an *open* tour with first-improvement 2-opt moves.

    Endpoints stay fixed (the RV's entry point and final destination are
    pinned by the scheduler); only the interior visiting order changes.
    Terminates when a full sweep finds no improving move or after
    ``max_rounds`` sweeps.

    Returns:
        The improved order (a new list; the input is not mutated).
    """
    # Lazy import: repro.core's package init imports this module (via
    # the scheduler extensions), so the dependency must not be circular.
    from ..core import kernels

    points = as_points(points)
    order = list(int(i) for i in order)
    n = len(order)
    if n < 4:
        return order
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    if kernels.vectorize_enabled():
        result = _two_opt_vectorized(points, list(order), max_rounds)
        kernels.KERNEL_CALLS["vectorized"] += 1
        if kernels.debug_vectorize():
            ref = _two_opt_reference(points, list(order), max_rounds)
            if result != ref:
                raise AssertionError(
                    "vectorized two_opt diverged from the reference sweep "
                    f"({result!r} != {ref!r}); please report this"
                )
        return result
    kernels.KERNEL_CALLS["reference"] += 1
    return _two_opt_reference(points, order, max_rounds)
