"""The paper's Section I headline claims, computed from the experiment
results:

* sensor activity management saves RV traveling energy (paper: 16%);
* vs the greedy baseline, the Partition-Scheme saves traveling distance
  (paper: 41%) and the Combined-Scheme too (paper: 13%);
* nonfunctional nodes drop vs greedy (paper: 23% for Partition, 52%
  for Combined).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..utils.tables import format_table
from .common import ERP_GRID, ExperimentScale
from .fig4_activity import activity_saving_percent, run_fig4
from .fig6_schemes import run_fig6

__all__ = ["compute_headline", "format_headline"]


def _mean_over_erp(sweep, scheduler: str, metric: str) -> float:
    return float(np.mean(sweep[scheduler][metric]))


def compute_headline(scale: ExperimentScale, erps: Sequence[float] = ERP_GRID) -> Dict[str, float]:
    """Run Fig. 4 and the Fig. 6 sweep and derive the headline numbers.

    Savings are ERP-averaged, matching the paper's "on average" claims.
    """
    fig4 = run_fig4(scale)
    sweep = run_fig6(scale, erps)
    act = activity_saving_percent(fig4)

    dist_g = _mean_over_erp(sweep, "greedy", "traveling_distance_m")
    dist_p = _mean_over_erp(sweep, "partition", "traveling_distance_m")
    dist_c = _mean_over_erp(sweep, "combined", "traveling_distance_m")
    nonf_g = _mean_over_erp(sweep, "greedy", "avg_nonfunctional_fraction")
    nonf_p = _mean_over_erp(sweep, "partition", "avg_nonfunctional_fraction")
    nonf_c = _mean_over_erp(sweep, "combined", "avg_nonfunctional_fraction")

    def pct_saved(base: float, ours: float) -> float:
        return 100.0 * (base - ours) / base if base > 0 else 0.0

    return {
        "activity_mgmt_saving_pct": float(np.mean(list(act.values()))),
        "partition_distance_saving_pct": pct_saved(dist_g, dist_p),
        "combined_distance_saving_pct": pct_saved(dist_g, dist_c),
        "partition_nonfunctional_reduction_pct": pct_saved(nonf_g, nonf_p),
        "combined_nonfunctional_reduction_pct": pct_saved(nonf_g, nonf_c),
    }


def format_headline(result: Dict[str, float]) -> str:
    paper = {
        "activity_mgmt_saving_pct": 16.0,
        "partition_distance_saving_pct": 41.0,
        "combined_distance_saving_pct": 13.0,
        "partition_nonfunctional_reduction_pct": 23.0,
        "combined_nonfunctional_reduction_pct": 52.0,
    }
    rows: List[list] = [
        [name, paper[name], result[name]] for name in paper
    ]
    return format_table(
        ["claim", "paper (%)", "measured (%)"],
        rows,
        precision=1,
        title="Section I headline claims - paper vs measured",
    )
