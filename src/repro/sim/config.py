"""Simulation configuration.

:class:`SimulationConfig` collects every knob of the WRSN world.  The
defaults are the paper's Table II; quantities the paper leaves implicit
(battery capacity, wireless charge power, RV sortie budget, rotation
slot, initial charge spread) carry documented defaults chosen to match
the cited hardware — see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..energy.battery import DEFAULT_SENSOR_CAPACITY_J
from ..energy.consumption import NodePowerModel
from ..energy.recharge import ChargeModel
from ..registry import ACTIVATORS, CLUSTERINGS, MOBILITY_MODELS, SCHEDULERS

__all__ = ["SimulationConfig", "DAY_S", "HOUR_S"]

HOUR_S = 3600.0
DAY_S = 24 * HOUR_S

ROUTING_METRICS = ("distance", "etx")

# Legacy name tuples (pre-registry API).  These are *live* views of the
# registries, so plugin registrations show up and the values can never
# drift from the single source of truth in :mod:`repro.registry`.
_LEGACY_NAME_TUPLES = {
    "SCHEDULERS": SCHEDULERS,
    "ACTIVATIONS": ACTIVATORS,
    "CLUSTERINGS": CLUSTERINGS,
    "TARGET_MOBILITIES": MOBILITY_MODELS,
}


def __getattr__(name: str):
    registry = _LEGACY_NAME_TUPLES.get(name)
    if registry is not None:
        return registry.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulation run.

    Attributes (paper's Table II unless noted):
        n_sensors: sensors deployed (``N = 500``).
        n_targets: targets in the field (``M = 15``).
        n_rvs: recharging vehicles (``m = 3``).
        side_length_m: field side (``L = 200`` m).
        comm_range_m: communication range (``dc = 12`` m).
        sensing_range_m: sensing range (``ds = 8`` m).
        sim_time_s: simulated horizon (paper: 120 days).
        target_period_s: target dwell time (3 h).
        threshold_fraction: recharge threshold ``Eth`` (50% of ``Ec``).
        rv_moving_cost_j_per_m: ``em`` (5.6 J/m).
        rv_speed_mps: ``vr`` (1 m/s).
        erp: Energy Request Percentage ``K`` in ``[0, 1]``;
            0 disables ERC (classic immediate requests).
        adaptive_erp: when True, ``erp`` is only the starting value and
            an AIMD controller tunes ``K`` online (raises it while no
            sensor dies, backs off on depletions) — the knee search the
            paper leaves to offline sweeps.
        rv_depot_dwell_s: time an RV spends docked at the base station
            refilling its own battery before it can be dispatched again
            (the paper treats RV self-recharge as free; a nonzero dwell
            models it).
        scheduler: one of ``greedy | insertion | partition | combined``.
        activation: ``round_robin`` (the paper's scheme) or
            ``full_time`` (the prior-work baseline).
        routing_metric: ``distance`` routes data over Dijkstra
            shortest paths (the paper's choice); ``etx`` weights links
            by expected transmissions (grey-region PRR model), routing
            around weak edge-of-range hops and charging retransmission
            energy to relays.
        battery_capacity_j: sensor pack ``Ec`` (not in Table II; two AAA
            Ni-MH cells at 3 V ~= 8.1 kJ).
        self_discharge_fraction_per_day: Ni-MH self-discharge (the
            cited Panasonic handbook quotes ~1%/day at room
            temperature); modeled as a charge-proportional drain,
            refreshed piecewise at every rate recomputation. 0 (off)
            by default to match the paper's implicit model.
        initial_charge_range: sensors start uniformly charged within
            this state-of-charge band, desynchronizing threshold
            crossings the way a real deployment's history would.
        rv_capacity_j: sortie budget ``Cr``.
        charge_model: wireless power transfer into sensor batteries.
        power_model: node consumption model (CC2480 + PIR defaults).
        tick_s: cadence of the periodic bookkeeping event — the
            round-robin rotation slot, request-gate evaluation and
            metric sampling all run on this grid.
        dispatch_period_s: cadence of the base station's scheduling
            rounds.  Requests accumulate on the recharge node list
            between rounds and each round hands the backlog to the
            configured scheduler (the paper's base station computes
            schedules against the *updated* list, i.e. in batches).
        dispatch_on_idle: when True an RV finishing its sortie
            immediately triggers an extra scheduling round instead of
            waiting for the next periodic one.
        seed: master RNG seed.
    """

    n_sensors: int = 500
    n_targets: int = 15
    n_rvs: int = 3
    side_length_m: float = 200.0
    comm_range_m: float = 12.0
    sensing_range_m: float = 8.0
    sim_time_s: float = 120 * DAY_S
    target_period_s: float = 3 * HOUR_S
    threshold_fraction: float = 0.5
    rv_moving_cost_j_per_m: float = 5.6
    rv_speed_mps: float = 1.0
    erp: float = 0.0
    adaptive_erp: bool = False
    rv_depot_dwell_s: float = 0.0
    scheduler: str = "combined"
    activation: str = "round_robin"
    clustering: str = "balanced"
    target_mobility: str = "jump"
    target_speed_mps: float = 0.5
    routing_metric: str = "distance"
    battery_capacity_j: float = DEFAULT_SENSOR_CAPACITY_J
    self_discharge_fraction_per_day: float = 0.0
    initial_charge_range: Tuple[float, float] = (0.55, 1.0)
    rv_capacity_j: float = 500_000.0
    charge_model: ChargeModel = field(default_factory=ChargeModel)
    power_model: NodePowerModel = field(default_factory=NodePowerModel)
    tick_s: float = 600.0
    dispatch_period_s: float = 2 * HOUR_S
    dispatch_on_idle: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_sensors < 0 or self.n_targets < 0 or self.n_rvs < 0:
            raise ValueError("counts must be non-negative")
        if self.side_length_m <= 0:
            raise ValueError("side_length_m must be positive")
        if self.comm_range_m <= 0 or self.sensing_range_m <= 0:
            raise ValueError("ranges must be positive")
        if self.sim_time_s <= 0 or self.target_period_s <= 0 or self.tick_s <= 0:
            raise ValueError("times must be positive")
        if self.dispatch_period_s <= 0:
            raise ValueError("dispatch_period_s must be positive")
        if not 0.0 <= self.threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must lie in [0, 1]")
        if not 0.0 <= self.erp <= 1.0:
            raise ValueError("erp must lie in [0, 1]")
        if self.rv_depot_dwell_s < 0:
            raise ValueError("rv_depot_dwell_s must be non-negative")
        if not 0.0 <= self.self_discharge_fraction_per_day < 1.0:
            raise ValueError("self_discharge_fraction_per_day must lie in [0, 1)")
        # Name fields validate against the live registries, so the
        # accepted values (and the error messages) always match what is
        # actually registered — including plugins.
        SCHEDULERS.check(self.scheduler)
        ACTIVATORS.check(self.activation)
        CLUSTERINGS.check(self.clustering)
        MOBILITY_MODELS.check(self.target_mobility)
        if self.target_speed_mps <= 0:
            raise ValueError("target_speed_mps must be positive")
        if self.routing_metric not in ROUTING_METRICS:
            raise ValueError(
                f"routing_metric must be one of {ROUTING_METRICS}, got {self.routing_metric!r}"
            )
        lo, hi = self.initial_charge_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("initial_charge_range must be an ordered pair within [0, 1]")
        if self.battery_capacity_j <= 0 or self.rv_capacity_j <= 0:
            raise ValueError("capacities must be positive")
        if self.rv_speed_mps <= 0:
            raise ValueError("rv_speed_mps must be positive")
        if self.rv_moving_cost_j_per_m < 0:
            raise ValueError("rv_moving_cost_j_per_m must be non-negative")

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper(cls, **overrides) -> "SimulationConfig":
        """Exact Table II settings (120 simulated days, N = 500)."""
        return cls(**overrides)

    @classmethod
    def experiment(cls, **overrides) -> "SimulationConfig":
        """The calibrated configuration behind the figure reproductions.

        Four deliberate deviations from Table II, each needed for the
        paper's own mechanisms to be observable (see DESIGN.md §2 and
        EXPERIMENTS.md for the full rationale):

        * ``sensing_range_m = 14`` — Table II's 8 m yields clusters of
          2-3 sensors, making the ERP gate ``max(ceil(nc*K), 1)``
          almost a step function; the paper's own illustration (Fig. 3)
          shows ~9-sensor clusters.
        * ``target_period_s = 48 h`` — clusters must persist on the
          order of a recharge cycle for per-cluster request batching to
          exist; with 3 h churn the gate state is reshuffled ~20x
          between consecutive requests of the same sensor.
        * ``battery_capacity_j = 2 kJ`` and ``rv_capacity_j = 40 kJ`` —
          a scaled pack so that each sensor cycles several times inside
          the horizon, with a sortie budget large enough that the fleet
          can sustain even the full-time-activation baseline (fleet
          throughput is bounded by ``n_rvs * Cr / dispatch_period``).
        * ``charge power = 5 W`` — fast enough that the fleet's charging
          throughput exceeds the full-time baseline's demand; travel
          (not parked charging) dominates RV service time, which is the
          regime where route quality differentiates the schemes.
        * ``dispatch_period_s = 4 h`` — the base station schedules in
          batch rounds, matching the paper's "recharge schedule is
          calculated based on the updated recharge node list".
        """
        defaults = dict(
            sensing_range_m=14.0,
            target_period_s=48 * HOUR_S,
            battery_capacity_j=2000.0,
            rv_capacity_j=40_000.0,
            charge_model=ChargeModel(power_w=5.0),
            dispatch_period_s=4 * HOUR_S,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, **overrides) -> "SimulationConfig":
        """A laptop-scale configuration for tests and quick examples:
        the same geometric density at a quarter of the scale, a two-day
        horizon, and a small battery so recharge cycles actually happen
        within the horizon."""
        defaults = dict(
            n_sensors=120,
            n_targets=5,
            n_rvs=2,
            side_length_m=100.0,
            sim_time_s=2 * DAY_S,
            tick_s=600.0,
            battery_capacity_j=800.0,
            initial_charge_range=(0.5, 0.9),
            rv_capacity_j=50_000.0,
        )
        defaults.update(overrides)
        return cls(**defaults)
