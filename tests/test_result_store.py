"""The content-addressed result store (repro.experiments.store).

Corruption must degrade to recomputation (miss + counter), never to an
exception; re-puts must dedup; eviction must be LRU; and with
``REPRO_STORE`` unset the store must not even create a directory.
"""

import json

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.cache import config_key
from repro.experiments.executor import map_configs
from repro.experiments.store import ResultStore
from repro.obs import Instruments
from repro.sim.runner import run_simulation

TINY = ExperimentScale("tiny", days=1.0, seeds=(1, 2))


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ("REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL"):
        monkeypatch.delenv(var, raising=False)


@pytest.fixture(scope="module")
def cell():
    """One computed (config, summary) pair shared across the module."""
    config = TINY.base_config(scheduler="greedy", erp=0.0).with_overrides(seed=1)
    return config, run_simulation(config)


def test_round_trip_and_counters(tmp_path, cell):
    config, summary = cell
    store = ResultStore(tmp_path / "store")
    assert store.get(config) is None
    assert store.stats["misses"] == 1
    key = store.put(config, summary)
    assert key == config_key(config)
    assert config in store
    assert store.keys() == [key]
    got = store.get(config)
    assert got.as_dict() == summary.as_dict()
    assert store.stats == {"hits": 1, "misses": 1, "puts": 1, "dedup": 0, "corrupt": 0}
    assert len(store) == 1
    assert store.total_bytes() > 0
    described = store.describe()
    assert described["entries"] == 1 and described["hits"] == 1


def test_put_is_dedup_noop(tmp_path, cell):
    config, summary = cell
    store = ResultStore(tmp_path / "store")
    key = store.put(config, summary)
    blob = store._blob_path(key)
    before = blob.read_bytes()
    assert store.put(config, summary) == key
    assert store.stats["dedup"] == 1
    assert blob.read_bytes() == before


@pytest.mark.parametrize(
    "mangle",
    [
        lambda raw: raw[: len(raw) // 2],           # truncated blob
        lambda raw: b"not json at all",              # unparseable
        lambda raw: raw.replace(b'"sha256"', b'"sha999"'),  # schema breach
        lambda raw: json.dumps(
            {**json.loads(raw), "sha256": "0" * 64}
        ).encode(),                                  # integrity mismatch
    ],
    ids=["truncated", "garbage", "missing-hash", "bad-hash"],
)
def test_corrupt_blob_is_a_counted_miss_never_a_crash(tmp_path, cell, mangle):
    config, summary = cell
    obs = Instruments()
    store = ResultStore(tmp_path / "store", instruments=obs)
    key = store.put(config, summary)
    blob = store._blob_path(key)
    blob.write_bytes(mangle(blob.read_bytes()))
    assert store.get(config) is None
    assert store.stats["corrupt"] == 1
    assert store.stats["misses"] == 1
    assert obs.snapshot()["counters"]["store.corrupt"] == 1
    assert not blob.exists()  # quarantined
    # The store heals: a fresh put makes the next get a clean hit.
    store.put(config, summary)
    assert store.get(config).as_dict() == summary.as_dict()


def test_evict_is_lru(tmp_path, cell):
    import os

    config, summary = cell
    store = ResultStore(tmp_path / "store")
    configs = [config.with_overrides(seed=s) for s in (1, 2, 3)]
    keys = [store.put(c, summary) for c in configs]
    # Pin distinct mtimes so LRU order is unambiguous, oldest first.
    for age, key in enumerate(keys):
        os.utime(store._blob_path(key), (1000.0 + age, 1000.0 + age))
    assert store.evict() == 0  # no caps, no-op
    assert store.evict(max_entries=2) == 1
    assert not store._blob_path(keys[0]).exists()  # oldest went first
    assert store._blob_path(keys[2]).exists()
    assert store.evict(max_bytes=0) == 2
    assert len(store) == 0


def test_hit_refreshes_lru_position(tmp_path, cell):
    import os

    config, summary = cell
    store = ResultStore(tmp_path / "store")
    configs = [config.with_overrides(seed=s) for s in (1, 2)]
    keys = [store.put(c, summary) for c in configs]
    for age, key in enumerate(keys):
        os.utime(store._blob_path(key), (1000.0 + age, 1000.0 + age))
    store.get(configs[0])  # touch the older blob: now most recently used
    assert store.evict(max_entries=1) == 1
    assert store._blob_path(keys[0]).exists()
    assert not store._blob_path(keys[1]).exists()


def test_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert ResultStore.from_env() is None
    root = tmp_path / "env-store"
    monkeypatch.setenv("REPRO_STORE", str(root))
    store = ResultStore.from_env()
    assert store is not None and store.root == root
    assert not root.exists()  # nothing materializes until the first put


def test_executor_consults_store(tmp_path, cell):
    """map_configs round-trips through an explicit store: first sweep
    populates it, the second is all store hits and byte-identical."""
    config, _summary = cell
    configs = [config.with_overrides(seed=s) for s in TINY.seeds]
    store = ResultStore(tmp_path / "store")
    obs1 = Instruments()
    first = map_configs(configs, jobs=1, store=store, instruments=obs1)
    assert obs1.snapshot()["counters"]["executor.cache_misses"] == 2
    assert store.stats["puts"] == 2
    obs2 = Instruments()
    second = map_configs(configs, jobs=1, store=store, instruments=obs2)
    snap = obs2.snapshot()["counters"]
    assert snap["executor.store_hits"] == 2
    assert snap["executor.cache_misses"] == 0
    assert snap["executor.cache_hits"] == 0
    assert [s.as_dict() for s in second] == [s.as_dict() for s in first]
