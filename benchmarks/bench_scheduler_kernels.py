"""Microbenchmarks for the vectorized scheduling kernels (not a figure).

Times the vectorized path of each kernel against its scalar reference
path on scheduler-shaped instances — the insertion ``p(s, n)`` matrix
on a 120-stop list, a full 200-stop 2-opt descent, the greedy
max-profit pick and the Lloyd assignment step.  Every comparison first
asserts the two paths produce **identical** outputs (the bit-exactness
contract), then asserts the vectorized path actually won — CI fails if
a kernel regresses below the reference loop.  Speedups land in
``BENCH_scheduler_kernels.json`` (with the history trail from
``_shared.emit``).
"""

import contextlib
import os
import time

import numpy as np

from repro.core import kernels
from repro.geometry.points import distances_from, pairwise_distances
from repro.tsp.two_opt import _two_opt_reference, _two_opt_vectorized
from repro.utils.tables import format_table

from _shared import emit

#: Instance sizes (fixed across scales: these are microseconds-to-
#: milliseconds kernels, not simulations).
N_INSERTION = 120  # stops in the insertion instance (1/3 routed)
N_TWO_OPT = 200  # cities in the 2-opt descent
N_GREEDY = 2000  # candidate nodes per greedy pick
N_KMEANS = (2000, 16)  # points x centroids per Lloyd step


@contextlib.contextmanager
def _vectorize(value: str):
    old = os.environ.get("REPRO_VECTORIZE")
    os.environ["REPRO_VECTORIZE"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_VECTORIZE", None)
        else:
            os.environ["REPRO_VECTORIZE"] = old


def _time(fn, reps: int) -> float:
    """Best-of-3 wall-clock seconds for ``reps`` calls of ``fn``."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _ab(fn, reps: int, equal) -> tuple:
    """Run ``fn`` on both kernel paths; assert equality, time both."""
    with _vectorize("1"):
        vec_out = fn()
        t_vec = _time(fn, reps)
    with _vectorize("0"):
        ref_out = fn()
        t_ref = _time(fn, reps)
    assert equal(vec_out, ref_out), "vectorized kernel diverged from reference"
    return t_vec, t_ref, (t_ref / t_vec if t_vec > 0 else float("inf"))


def bench_scheduler_kernels():
    rng = np.random.default_rng(42)
    rows = []
    speedups = {}

    # -- insertion p(s, n): one full (gaps x remaining) evaluation ----
    pts = rng.uniform(0, 200, size=(N_INSERTION, 2))
    demands = rng.uniform(10, 200, size=N_INSERTION)
    dmat = pairwise_distances(pts)
    dist0 = distances_from(np.array([100.0, 100.0]), pts)
    route = list(range(N_INSERTION // 3))
    remaining = list(range(N_INSERTION // 3, N_INSERTION))
    t_vec, t_ref, s = _ab(
        lambda: kernels.insertion_eval(dmat, dist0, demands, route, remaining, 5.6, 0.8),
        reps=20,
        equal=lambda a, b: np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1]),
    )
    speedups["insertion_eval"] = round(s, 2)
    rows.append(["insertion_eval p(s,n)", f"{len(route)}x{len(remaining)}", t_ref, t_vec, s])

    # -- 2-opt: a full first-improvement descent on 200 stops ---------
    tour_pts = rng.uniform(0, 500, size=(N_TWO_OPT, 2))
    start_order = [int(i) for i in rng.permutation(N_TWO_OPT)]
    t0 = time.perf_counter()
    vec_order = _two_opt_vectorized(tour_pts, list(start_order), 50)
    t_vec = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref_order = _two_opt_reference(tour_pts, list(start_order), 50)
    t_ref = time.perf_counter() - t0
    assert vec_order == ref_order, "2-opt move sequences diverged"
    s = t_ref / t_vec if t_vec > 0 else float("inf")
    speedups["two_opt"] = round(s, 2)
    rows.append(["two_opt descent", f"{N_TWO_OPT} stops", t_ref, t_vec, s])

    # -- greedy max-profit pick ---------------------------------------
    g_demands = rng.uniform(10, 200, size=N_GREEDY)
    g_dists = rng.uniform(1, 400, size=N_GREEDY)
    g_mask = rng.random(N_GREEDY) < 0.8
    t_vec, t_ref, s = _ab(
        lambda: kernels.greedy_pick(g_demands, g_dists, 5.6, mask=g_mask),
        reps=50,
        equal=lambda a, b: a == b,
    )
    speedups["greedy_pick"] = round(s, 2)
    rows.append(["greedy_pick", f"{N_GREEDY} nodes", t_ref, t_vec, s])

    # -- K-means assignment step --------------------------------------
    k_pts = rng.uniform(0, 200, size=(N_KMEANS[0], 2))
    k_cents = rng.uniform(0, 200, size=(N_KMEANS[1], 2))
    t_vec, t_ref, s = _ab(
        lambda: kernels.kmeans_assign(k_pts, k_cents),
        reps=5,
        equal=np.array_equal,
    )
    speedups["kmeans_assign"] = round(s, 2)
    rows.append(["kmeans_assign", f"{N_KMEANS[0]}x{N_KMEANS[1]}", t_ref, t_vec, s])

    table = format_table(
        ["kernel", "size", "reference_s", "vectorized_s", "speedup"],
        [[r[0], r[1], round(r[2], 4), round(r[3], 4), round(r[4], 2)] for r in rows],
        title="Scheduling kernels: vectorized vs reference (bit-identical outputs)",
    )
    emit(
        "scheduler_kernels",
        table,
        extra={
            "speedups": speedups,
            "sizes": {
                "insertion_stops": N_INSERTION,
                "two_opt_stops": N_TWO_OPT,
                "greedy_nodes": N_GREEDY,
                "kmeans_points": N_KMEANS[0],
                "kmeans_centroids": N_KMEANS[1],
            },
        },
    )
    # The contract CI enforces: the default path must never be the
    # slower one.  (The interesting margins — >=3x on insertion,
    # >=2x on 2-opt — are recorded above for EXPERIMENTS.md.)
    for kernel, s in speedups.items():
        assert s > 1.0, f"vectorized {kernel} slower than reference ({s}x)"
