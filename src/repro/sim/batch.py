"""The batched multi-world engine: lockstep (B, n) simulation.

PR 6 vectorized the tick *within* one world; this module vectorizes it
*across* worlds.  ``BatchedStateArrays`` stacks B same-shape worlds —
battery levels, draw rates, request flags and the padded cluster
rotation matrices become ``(B, n)`` / ``(B, m, W)`` arrays — and
``BatchedEngine.step()`` advances every live world by one tick with
batched kernels: activation rotation, battery drain and relay
accounting, the ERC gate scan and the coverage reduction each run once
over the whole stack instead of once per world.  Sweeps stop paying the
per-tick Python dispatch cost per cell, and the same arrays back the
gym-style :class:`repro.sim.env.BatchedEnv` facade that a learned
activity-management policy trains against.

Exactness contract
------------------

Each world in a batch produces **bit-identical** trajectories to the
serial SoA engine.  The construction mirrors the SoA one (the
``REPRO_SOA`` pattern, one level up):

* every component buffer a batched kernel writes (``bank.levels_j``,
  ``state.requested``, ``energy.rates`` and the incremental-recompute
  state, ``arrays.ptr``) is *bound as a row view* of the batch-owned
  stack, so the serial event path — dispatch rounds, RV arrivals,
  relocations — keeps running unmodified per world between ticks and
  reads/writes the very same memory;
* every batched kernel performs the identical IEEE-754 arithmetic per
  element in the identical operation order as its serial counterpart
  (integer packet counts commute; float expressions are copied
  term-for-term from :mod:`repro.sim.soa` and
  :mod:`repro.sim.components.energy`);
* worlds only share a batch when their configurations are identical up
  to ``seed`` / ``scheduler`` / ``erp`` / ``sim_time_s`` (the *shape
  signature*, :func:`shape_signature`), which makes every physical
  scalar (tick, capacity, thresholds, power model) a batch constant.

Knobs (the ``REPRO_SOA`` pattern):

* ``REPRO_BATCH=1`` — opt in: ``runner.run_batch`` and the experiment
  executor group compatible cells into shape-batches.
* ``REPRO_DEBUG_BATCH=1`` — shadow mode: every batched world runs
  beside a serial twin and the full ``snapshot_arrays`` surface is
  compared bit-for-bit after every batched tick.
* ``REPRO_BATCH_SIZE`` — executor-side cap on worlds per batch
  (default 16), balancing batching against process parallelism.
"""

from __future__ import annotations

import json
import logging
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs.blackbox import digest_fields, digest_rng, digest_state
from .components import PRIO_DISPATCH, PRIO_TICK
from .config import SimulationConfig
from .metrics import SimulationSummary
from .serialization import config_to_dict, snapshot_arrays
from .soa import (
    SoAFullTimeActivator,
    SoARoundRobinActivator,
    debug_batch,
    debug_soa,
)
from .world import _FULL_DIGEST_EVERY, World

__all__ = [
    "BatchedEngine",
    "BatchedStateArrays",
    "batchable_config",
    "shape_signature",
]

logger = logging.getLogger(__name__)

#: Config fields allowed to differ between worlds sharing one batch.
#: Everything else — population, geometry, periods, power model — is a
#: batch constant, which is what lets the kernels hoist them to scalars.
SIGNATURE_FREE_FIELDS = ("seed", "scheduler", "erp", "sim_time_s")


def shape_signature(config: SimulationConfig) -> str:
    """The batching key: the configuration minus the per-cell axes.

    Two cells may share a batch iff their signatures are equal; the
    executor groups cache misses by this string.  JSON with sorted keys
    so the string is canonical.
    """
    d = config_to_dict(config)
    for field in SIGNATURE_FREE_FIELDS:
        d.pop(field, None)
    return json.dumps(d, sort_keys=True)


def batchable_config(config: SimulationConfig) -> bool:
    """Cheap static screen: could a world built from ``config`` run
    under the batched kernels?  (The engine re-checks on the built
    worlds — a plugin activator or ERC override only shows up then.)
    """
    return (
        config.n_sensors > 0
        and config.tick_s > 0
        and config.self_discharge_fraction_per_day == 0
        and not debug_soa()
    )


def _batchable_world(world: World) -> Optional[str]:
    """None if ``world`` can run under the batched kernels, else the
    reason it cannot (the caller falls back to ``world.run()``)."""
    s = world.state
    if s.arrays is None:
        return "SoA arrays disabled (REPRO_SOA=0)"
    if type(s.activator) not in (SoARoundRobinActivator, SoAFullTimeActivator):
        return f"plugin activator {type(s.activator).__name__}"
    if getattr(s.activator, "_shadow", None) is not None:
        return "REPRO_DEBUG_SOA shadow activator"
    if not world.gate.soa:
        return "ERC policy overrides nodes_to_release"
    if not world.energy.incremental_enabled:
        return "incremental recompute disabled"
    if world.energy._debug_check:
        return "REPRO_DEBUG_INCREMENTAL"
    if s.trace.enabled:
        return "semantic trace recorder attached"
    return None


class BatchedStateArrays:
    """The (B, ...) stacks for one batch of same-shape worlds.

    Row ``b`` of every *bound* stack **is** world ``b``'s canonical
    buffer: :meth:`bind` rebinds the per-world component attributes
    (battery levels, request flags, draw rates, the incremental
    recompute state, rotation pointers) to row views, so serial
    per-world code and batched kernels write the same memory.  The
    *copied* stacks (membership, cluster matrices, routing) are
    refreshed wholesale on relocation epochs / compaction.

    Per-world RNG streams (``rngs``) are spawned from each world's seed
    via :class:`numpy.random.SeedSequence` — the engine itself never
    draws from them (bit-exactness), they exist for stochastic policy
    layers on top (:class:`repro.sim.env.BatchedEnv`).
    """

    def __init__(self, worlds: Sequence[World]) -> None:
        B = len(worlds)
        w0 = worlds[0]
        n = w0.cfg.n_sensors
        self.B = B
        self.n = n
        self.worlds = list(worlds)
        # -- per-world RNG streams (policy-facing; engine never draws) --
        self.rngs = [
            np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(w.cfg.seed).spawn(1)[0])
            )
            for w in worlds
        ]
        # -- bound per-sensor stacks ------------------------------------
        self.levels_j = np.empty((B, n), dtype=np.float64)
        self.requested = np.empty((B, n), dtype=bool)
        self.rates_w = np.empty((B, n), dtype=np.float64)
        self.active = np.empty((B, n), dtype=bool)
        self.relay_w = np.empty((B, n), dtype=np.float64)
        self.origins = np.empty((B, n), dtype=bool)
        self.alive_prev = np.empty((B, n), dtype=bool)
        self.through_cnt = np.empty((B, n + 1), dtype=np.int64)
        # -- copied static-per-world stacks ------------------------------
        self.positions = np.stack([w.state.sensor_pos for w in worlds])
        self.uplink_etx = np.stack([w.state.uplink_etx for w in worlds])
        self.connected = np.stack([w.energy._connected for w in worlds])
        self.parent = np.stack(
            [
                _padded_parent(w.energy._parent_arr, n + 1)
                for w in worlds
            ]
        )
        self.is_base = np.zeros((B, n + 1), dtype=bool)
        for b, w in enumerate(worlds):
            self.is_base[b, w.energy._base] = True
        # -- per-cluster stacks (refreshed per relocation epoch) ---------
        self.members = np.empty((B, 0, 0), dtype=np.int64)
        self.sizes = np.empty((B, 0), dtype=np.int64)
        self.ptr = np.empty((B, 0), dtype=np.int64)
        self.membership = np.empty((B, n), dtype=np.int64)
        self.coverable = np.empty((B, 0), dtype=bool)
        for b, w in enumerate(worlds):
            self._pull_world(b, w)
        self.restack_clusters()
        self.bind()

    # -- construction / epoch maintenance ------------------------------

    def _pull_world(self, b: int, w: World) -> None:
        """Copy world ``b``'s current per-sensor state into row ``b``."""
        ea = w.energy
        self.levels_j[b] = w.state.bank.levels_j
        self.requested[b] = w.state.requested
        self.rates_w[b] = ea.rates
        self.active[b] = ea.active
        self.relay_w[b] = ea._relay_w
        self.origins[b] = ea._origins
        self.alive_prev[b] = ea._alive_prev
        self.through_cnt[b] = ea._through_cnt

    def restack_clusters(self) -> None:
        """(Re)build the padded cluster stacks for the current epoch.

        ``m`` (cluster count = target count) is an epoch invariant, but
        the widest cluster ``W`` may change, so the member matrix is
        restacked wholesale; rotation pointers are copied in and then
        bound back as row views (:meth:`bind` finishes the job).
        """
        worlds = self.worlds
        B = self.B
        m = worlds[0].state.arrays.members.shape[0]
        W = max(w.state.arrays.members.shape[1] for w in worlds)
        self.members = np.full((B, m, W), -1, dtype=np.int64)
        self.sizes = np.zeros((B, m), dtype=np.int64)
        self.ptr = np.zeros((B, m), dtype=np.int64)
        self.coverable = np.zeros((B, m), dtype=bool)
        for b, w in enumerate(worlds):
            a = w.state.arrays
            wb = a.members.shape[1]
            if wb:
                self.members[b, :, :wb] = a.members
            self.sizes[b] = a.sizes
            self.ptr[b] = a.ptr
            self.membership[b] = w.state.cluster_set.membership
            self.coverable[b] = w.state.coverable
        self.m = m
        self.w = W
        self._coverable_counts = np.count_nonzero(self.coverable, axis=1)
        self._make_scratch()

    def _make_scratch(self) -> None:
        B, n, m, W = self.B, self.n, self.m, self.w
        self._scr = np.empty((B, n), dtype=np.float64)
        self._was = np.empty((B, n), dtype=bool)
        self._alive = np.empty((B, n), dtype=bool)
        self._below = np.empty((B, n), dtype=bool)
        self._release = np.empty((B, n), dtype=bool)
        self._act2 = np.empty((B, n), dtype=bool)
        self._dirty = np.empty((B, n), dtype=bool)
        self._rel = np.empty((B * m, W), dtype=np.int64)
        self._ok = np.empty((B * m, W), dtype=bool)
        self._offs = np.arange(W, dtype=np.int64)
        self._rows = np.arange(B * m, dtype=np.int64)
        self._row_noff = (self._rows // m) * n  # cluster row -> world*n
        self._row_moff = (np.arange(B, dtype=np.int64) * m)  # world -> row base
        self._counts = np.empty(B * m, dtype=np.int64)
        # Flattened parent pointers in vertex-flat coordinates
        # (b * (n + 1) + v), -1 where the serial walk would stop.
        voff = (np.arange(B, dtype=np.int64) * (n + 1))[:, None]
        self.parent_f = np.where(self.parent >= 0, self.parent + voff, -1).reshape(-1)
        self.is_base_f = self.is_base.reshape(-1)

    def bind(self) -> None:
        """Bind every batched-written component buffer to its row view.

        After this, world ``b``'s serial event path (dispatch, RV
        arrivals, relocations) and the batched tick kernels share
        memory; :mod:`repro.sim.components.energy` refreshes these
        buffers in place (never rebinding) under the SoA engine, which
        is what keeps the views alive across recomputes.
        """
        for b, w in enumerate(self.worlds):
            s = w.state
            a = s.arrays
            bank = s.bank
            bank.levels_j = self.levels_j[b]
            a.levels_j = bank.levels_j
            s.requested = self.requested[b]
            a.requested = s.requested
            ea = w.energy
            ea.rates = self.rates_w[b]
            a.rates_w = ea.rates
            ea.active = self.active[b]
            a.active = ea.active
            ea._relay_w = self.relay_w[b]
            ea._origins = self.origins[b]
            ea._alive_prev = self.alive_prev[b]
            ea._through_cnt = self.through_cnt[b]
            a.ptr = self.ptr[b]
            act = s.activator
            act.a = a

    def compact(self, keep: np.ndarray) -> None:
        """Drop finished worlds: fancy-index every stack down to the
        ``keep`` rows and rebind the survivors' row views."""
        self.worlds = [w for k, w in zip(keep, self.worlds) if k]
        self.rngs = [r for k, r in zip(keep, self.rngs) if k]
        self.B = len(self.worlds)
        for name in (
            "levels_j", "requested", "rates_w", "active", "relay_w",
            "origins", "alive_prev", "through_cnt", "positions",
            "uplink_etx", "connected", "parent", "is_base", "members",
            "sizes", "ptr", "membership", "coverable",
        ):
            setattr(self, name, getattr(self, name)[keep].copy())
        self._coverable_counts = np.count_nonzero(self.coverable, axis=1)
        self._make_scratch()
        self.bind()


def _padded_parent(parent: np.ndarray, size: int) -> np.ndarray:
    """Parent array padded with -1 up to ``size`` vertices."""
    out = np.full(size, -1, dtype=np.int64)
    out[: len(parent)] = parent[:size]
    return out


class BatchedEngine:
    """Advance B compatible worlds in lockstep, one tick per step.

    Worlds are built with ``external_tick=True`` — their event queues
    hold relocations, dispatch rounds and RV arrivals but **no** tick
    events; each :meth:`step` drains every world's queue up to (but
    excluding) the tick slot ``(T, PRIO_TICK)`` with
    :meth:`~repro.sim.engine.Simulator.run_until_before`, then performs
    the whole tick as batched kernels.  Events scheduled *at* the tick
    time with a lower priority (a relocation) fire before it and a
    higher priority (a dispatch round) after it — exactly the serial
    (time, priority) order.  Worlds whose horizon has passed are
    finished with the ordinary serial ``World.run()`` (which fires
    their remaining queued events and finalizes the summary) and the
    stacks are compacted.

    With ``debug=True`` (or ``REPRO_DEBUG_BATCH=1``) every world runs
    beside a serial twin and the full ``snapshot_arrays`` surface is
    compared bit-for-bit after every batched tick.
    """

    def __init__(
        self,
        configs: Optional[Sequence[SimulationConfig]] = None,
        *,
        worlds: Optional[Sequence[World]] = None,
        debug: Optional[bool] = None,
        instruments=None,
    ) -> None:
        if worlds is None:
            if not configs:
                raise ValueError("BatchedEngine needs at least one config")
            worlds = [World(c, external_tick=True) for c in configs]
        elif not worlds:
            raise ValueError("BatchedEngine needs at least one world")
        self.configs = [w.cfg for w in worlds]
        sig = shape_signature(self.configs[0])
        for cfg in self.configs[1:]:
            if shape_signature(cfg) != sig:
                raise ValueError(
                    "worlds in a batch must share a shape signature "
                    "(identical configs up to seed/scheduler/erp/sim_time_s)"
                )
        for w in worlds:
            reason = _batchable_world(w)
            if reason is not None:
                raise ValueError(f"world is not batchable: {reason}")
        self.debug = debug_batch() if debug is None else bool(debug)
        self.stacks = BatchedStateArrays(worlds)
        w0 = worlds[0]
        power = w0.state.power
        ea0 = w0.energy
        self._n = w0.cfg.n_sensors
        self._tick = float(w0.cfg.tick_s)
        self._capacity = float(w0.state.bank.capacity_j)
        self._threshold = float(w0.state.bank.threshold_j)
        self._idle_w = power.idle_power_w
        self._sens_w = power.active_sensing_power_w
        self._duty_w = self._idle_w + self._sens_w
        self._packet_rate = power.packet_rate_hz
        self._per_packet = ea0._per_packet_relay_j
        self._notif_j = ea0._notification_j
        self._rx_j = power.radio.rx_energy_j(power.payload_bytes)
        self._rotates = getattr(w0.state.activator, "rotates", True)
        self._t = 0.0
        self._epoch = w0.state.targets.epoch
        self._orig = list(range(len(worlds)))
        self.summaries: List[Optional[SimulationSummary]] = [None] * len(worlds)
        self._refs = (
            [World(w.cfg) for w in worlds] if self.debug else None
        )
        self._tmp_bool = np.empty((self.stacks.B, self._n), dtype=bool)
        # Occupancy instruments (live telemetry): alive worlds per step
        # as a fraction of the launch width.  The null registry makes
        # each step pay two no-op calls when telemetry is off.
        from ..obs.instruments import NULL_INSTRUMENTS

        obs = NULL_INSTRUMENTS if instruments is None else instruments
        self._b0 = len(worlds)
        self._c_steps = obs.counter("batch.steps")
        self._c_world_steps = obs.counter("batch.world_steps")
        self._h_occupancy = obs.histogram("batch.occupancy")
        self._refresh_world_hooks()

    # -- bookkeeping -----------------------------------------------------

    def _refresh_world_hooks(self) -> None:
        worlds = self.stacks.worlds
        self._adjust_hooks = [
            getattr(w.gate.erc, "maybe_adjust", None) for w in worlds
        ]
        self._any_adjust = any(h is not None for h in self._adjust_hooks)
        self._mons = [w.state.monitors for w in worlds]
        self._bbs = [w.state.blackbox for w in worlds]

    @property
    def worlds(self) -> List[World]:
        return self.stacks.worlds

    @property
    def alive_worlds(self) -> np.ndarray:
        """Bool over the *original* batch: which worlds still run."""
        mask = np.zeros(len(self.configs), dtype=bool)
        mask[self._orig] = True
        return mask

    def run(self) -> List[SimulationSummary]:
        """Step to every world's horizon; summaries in input order."""
        while self.step():
            pass
        return list(self.summaries)  # type: ignore[arg-type]

    # -- the lockstep loop -----------------------------------------------

    def step(self) -> bool:
        """Advance one tick window; False once every world finished.

        The tick time sequence is the same float accumulation the
        serial engine produces by rescheduling (``t += tick_s`` from
        exact previous tick times), so horizon comparisons match
        bit-for-bit.
        """
        if not self.stacks.worlds:
            return False
        T = self._t + self._tick
        done = [
            b
            for b, w in enumerate(self.stacks.worlds)
            if w.cfg.sim_time_s < T
        ]
        if done:
            self._finish(done)
            if not self.stacks.worlds:
                return False
        self._c_steps.inc()
        self._c_world_steps.inc(self.stacks.B)
        self._h_occupancy.observe(self.stacks.B / self._b0)
        for w in self.stacks.worlds:
            w.state.sim.run_until_before(T, PRIO_TICK)
        if self.stacks.worlds[0].state.targets.epoch != self._epoch:
            # Lockstep relocation epochs: every live world relocated in
            # this window (identical target periods), so one restack
            # refreshes the cluster stacks and pointer bindings for all.
            self._epoch = self.stacks.worlds[0].state.targets.epoch
            self.stacks.restack_clusters()
            self.stacks.bind()
        self._tick_kernels(T)
        for b, w in enumerate(self.stacks.worlds):
            w.state.sim.events_fired += 1
            if self._bbs[b].enabled:
                self._flight_record(w)
        if self._refs is not None:
            for b, w in enumerate(self.stacks.worlds):
                ref = self._refs[b]
                ref.state.sim.run_until_before(T, PRIO_DISPATCH)
                _compare_snapshots(b, snapshot_arrays(w.state), snapshot_arrays(ref.state))
        self._t = T
        return True

    def _finish(self, done: List[int]) -> None:
        """Finish worlds whose horizon has passed: their remaining
        queued events (a dispatch round or RV arrivals at the horizon)
        fire through the ordinary serial ``run()``, which also performs
        the final energy advance and summary finalization."""
        keep = np.ones(self.stacks.B, dtype=bool)
        for b in done:
            w = self.stacks.worlds[b]
            summary = w.run()
            self.summaries[self._orig[b]] = summary
            if self._refs is not None:
                ref_summary = self._refs[b].run()
                if summary.as_dict() != ref_summary.as_dict():
                    raise AssertionError(
                        "batched engine summary diverged from the serial "
                        f"twin (REPRO_DEBUG_BATCH, world {self._orig[b]}): "
                        f"{summary.as_dict()} != {ref_summary.as_dict()}; "
                        "please report this"
                    )
            keep[b] = False
        self._orig = [o for k, o in zip(keep, self._orig) if k]
        if self._refs is not None:
            self._refs = [r for k, r in zip(keep, self._refs) if k]
        self.stacks.compact(keep)
        self._tmp_bool = np.empty((self.stacks.B, self._n), dtype=bool)
        self._refresh_world_hooks()

    # -- the batched tick --------------------------------------------------

    def _tick_kernels(self, T: float) -> None:
        """One serial ``_on_tick`` for every world, as batched kernels.

        Phase order and per-element arithmetic mirror
        :meth:`World._on_tick` exactly: energy advance (drain, deaths),
        rotation + hand-off drains, incremental rate recompute, ERC
        gate scan, metrics.  Everything per-world and rare (death
        recomputes, request releases, monitor checks) drops back to the
        serial component code through the bound row views.
        """
        st = self.stacks
        worlds = st.worlds
        B, n, m, W = st.B, st.n, st.m, st.w
        L, R = st.levels_j, st.rates_w
        # -- energy advance (mirrors EnergyAccounting._advance) -----------
        dts = np.empty(B, dtype=np.float64)
        for b, w in enumerate(worlds):
            dts[b] = T - w.energy._last_t
        was = np.greater(L, 0.0, out=st._was)
        mon_rows = [
            b for b in range(B) if self._mons[b].enabled and dts[b] > 0
        ]
        levels_before = L.copy() if mon_rows else None
        np.multiply(R, dts[:, None], out=st._scr)
        np.subtract(L, st._scr, out=L)
        np.clip(L, 0.0, self._capacity, out=L)
        alive = np.greater(L, 0.0, out=st._alive)
        for b in mon_rows:
            mon = self._mons[b]
            mon.check_energy_conservation(
                levels_before[b], L[b], R[b], dts[b], T
            )
            mon.check_battery_bounds(L[b], self._capacity, T)
        for b, w in enumerate(worlds):
            ea = w.energy
            dt = dts[b]
            if dt > 0:
                for cat, watts in ea._category_watts.items():
                    ea.breakdown_j[cat] += watts * dt
            ea._last_t = T
        died = np.logical_and(was, ~alive, out=self._tmp_bool)
        if died.any():
            died_counts = np.count_nonzero(died, axis=1)
            for b in np.flatnonzero(died_counts):
                w = worlds[b]
                n_died = int(died_counts[b])
                logger.debug("t=%.0fs: %d sensor(s) depleted", T, n_died)
                w.energy._c_depletions.inc(n_died)
                if w.energy.on_deaths is not None:
                    w.energy.on_deaths(n_died)
                w.energy.recompute()
        # -- rotation + hand-offs (mirrors SoARoundRobinActivator.rotate
        # and EnergyAccounting.apply_handoffs) ----------------------------
        memf = st.members.reshape(B * m, W)
        rows = st._rows
        alive_f = alive.reshape(-1)
        if self._rotates and m and W:
            ptrf = st.ptr.reshape(-1)
            rel = self._rotation_scores(ptrf, alive_f)
            cur = rel.argmin(axis=1)
            live = rel[rows, cur] < W
            rel[rows, cur] = W
            nxt = rel.argmin(axis=1)
            nxt = np.where(rel[rows, nxt] < W, nxt, cur)
            ptrf[live] = nxt[live]
            moved = live & (nxt != cur)
            idx = np.flatnonzero(moved)
            if idx.size:
                olds = memf[idx, cur[idx]]
                news = memf[idx, nxt[idx]]
                b_of = idx // m
                lf = L.reshape(-1)
                oidx = olds + b_of * n
                lf[oidx] = np.maximum(lf[oidx] - self._notif_j, 0.0)
                nidx = news + b_of * n
                lf[nidx] = np.maximum(lf[nidx] - self._rx_j, 0.0)
                pair_j = self._notif_j + self._rx_j
                counts = np.bincount(b_of, minlength=B)
                for b in np.flatnonzero(counts):
                    w = worlds[b]
                    k = int(counts[b])
                    w.energy.breakdown_j["notifications"] += k * pair_j
                    w.clusters._c_handoffs.inc(k)
                    if self._bbs[b].enabled:
                        self._bbs[b].note("handoffs", k)
            # Hand-off drains can empty a battery: re-derive alive for
            # the recompute, exactly like the serial post-rotation pass.
            alive = np.greater(L, 0.0, out=st._alive)
            alive_f = alive.reshape(-1)
        # -- active set (one scan serves recompute *and* metrics) ---------
        if m and W:
            start = st.ptr.reshape(-1) if self._rotates else _ZEROS_CACHE(B * m)
            rel = self._rotation_scores(start, alive_f)
            slot = rel.argmin(axis=1)
            found = rel[rows, slot] < W
            actives = np.where(found, memf[rows, slot], -1)
        else:
            actives = np.full(B * m, -1, dtype=np.int64)
        if self._rotates:
            act2 = st._act2
            act2[...] = False
            act2f = act2.reshape(-1)
            valid = actives >= 0
            act2f[actives[valid] + st._row_noff[valid]] = True
            self._recompute_incremental(T, alive, act2)
        else:
            act2 = np.logical_and(st.membership >= 0, alive, out=st._act2)
        # -- ERC gate (mirrors RequestGate._check / erc_release_scan) -----
        if self._any_adjust:
            for b, w in enumerate(worlds):
                hook = self._adjust_hooks[b]
                if hook is not None:
                    hook(T)
        below = np.less(L, self._threshold, out=st._below)
        msh = st.membership
        clustered = msh >= 0
        needy = below & clustered
        counts = st._counts
        counts.fill(0)
        sidx = np.flatnonzero(needy.reshape(-1))
        if sidx.size:
            np.add.at(counts, msh.reshape(-1)[sidx] + (sidx // n) * m, 1)
        erps = np.fromiter(
            (w.gate.erc.erp for w in worlds), np.float64, count=B
        )
        need = np.maximum(np.ceil(st.sizes * erps[:, None]).astype(np.int64), 1)
        open_gate = counts.reshape(B, m) >= need
        release = np.logical_and(below, ~st.requested, out=st._release)
        if m:
            gather = np.maximum(msh, 0) + st._row_moff[:, None]
            release &= ~clustered | open_gate.reshape(-1)[gather]
        rel_any = release.any(axis=1)
        for b, w in enumerate(worlds):
            gate = w.gate
            to_release = (
                [int(v) for v in np.flatnonzero(release[b])]
                if rel_any[b]
                else []
            )
            if self._mons[b].enabled:
                a = w.state.arrays
                self._mons[b].check_erc_release_arrays(
                    a.cluster_id,
                    a.sizes,
                    below[b],
                    w.state.requested,
                    to_release,
                    gate.erc.erp,
                    T,
                    cluster_set=w.state.cluster_set,
                )
            gate._release(to_release)
        # -- metrics (mirrors World._record_metrics) ----------------------
        acts2d = actives.reshape(B, m)
        cov_cnt = np.count_nonzero((acts2d >= 0) & st.coverable, axis=1)
        den = st._coverable_counts
        alive_cnt = np.count_nonzero(alive, axis=1)
        for b, w in enumerate(worlds):
            s = w.state
            coverage = float(cov_cnt[b]) / float(den[b]) if den[b] else 1.0
            nonfunctional = (
                float(n - alive_cnt[b]) / float(n) if n > 0 else 0.0
            )
            s.metrics.record(T, coverage, nonfunctional, float(alive_cnt[b]))
            # The activator memo ends the tick exactly as the serial
            # engine leaves it: the actives for the current alive mask.
            act = s.activator
            act._actives = acts2d[b].copy()
            act._actives_alive = alive[b].copy()

    def _rotation_scores(self, start: np.ndarray, alive_f: np.ndarray) -> np.ndarray:
        """Batched :func:`repro.sim.soa._rotation_scores` over the
        flattened ``(B * m, W)`` member matrix."""
        st = self.stacks
        W = st.w
        rel, ok = st._rel, st._ok
        memf = st.members.reshape(-1, W)
        sizf = st.sizes.reshape(-1)
        np.greater_equal(memf, 0, out=ok)
        np.logical_and(
            ok, alive_f[np.where(ok, memf, 0) + st._row_noff[:, None]], out=ok
        )
        np.subtract(st._offs[None, :], start[:, None], out=rel)
        np.remainder(rel, np.maximum(sizf, 1)[:, None], out=rel)
        np.logical_not(ok, out=ok)
        np.copyto(rel, W, where=ok)
        return rel

    def _recompute_incremental(
        self, T: float, alive: np.ndarray, act2: np.ndarray
    ) -> None:
        """Batched :meth:`EnergyAccounting._recompute_incremental`:
        integer packet-count patches along flattened routing paths, then
        re-pricing of exactly the dirty sensors."""
        st = self.stacks
        worlds = st.worlds
        B, n = st.B, st.n
        org2 = np.logical_and(act2, st.connected)
        dirty = np.not_equal(alive, st.alive_prev, out=st._dirty)
        np.logical_or(dirty, act2 != st.active, out=dirty)
        dirty_f = dirty.reshape(-1)
        org2_f = org2.reshape(-1)
        cnt_f = st.through_cnt.reshape(-1)
        changed = np.flatnonzero(org2_f != st.origins.reshape(-1))
        if changed.size:
            # Vertex-flat coordinates: b * (n + 1) + v == sensor-flat + b.
            vs = changed + changed // n
            deltas = np.where(org2_f[changed], 1, -1)
            while vs.size:
                np.add.at(cnt_f, vs, deltas)
                keepm = ~st.is_base_f[vs]
                vs, deltas = vs[keepm], deltas[keepm]
                dirty_f[vs - vs // (n + 1)] = True
                vs = st.parent_f[vs]
                up = vs >= 0
                vs, deltas = vs[up], deltas[up]
        sflat = np.flatnonzero(dirty_f)
        if sflat.size:
            vflat = sflat + sflat // n
            alive_f = alive.reshape(-1)
            act2_f = act2.reshape(-1)
            relay = (cnt_f[vflat] - org2_f[sflat]).astype(
                np.float64
            ) * self._packet_rate
            relay_w = np.where(
                alive_f[sflat],
                relay * self._per_packet * st.uplink_etx.reshape(-1)[sflat],
                0.0,
            )
            base_w = np.where(act2_f[sflat], self._duty_w, self._idle_w)
            R_f = st.rates_w.reshape(-1)
            R_f[sflat] = np.where(alive_f[sflat], base_w + relay_w, 0.0)
            st.relay_w.reshape(-1)[sflat] = relay_w
        st.active[...] = act2
        st.origins[...] = org2
        st.alive_prev[...] = alive
        alive_cnt = np.count_nonzero(alive, axis=1)
        act_cnt = np.count_nonzero(act2, axis=1)
        for b, w in enumerate(worlds):
            ea = w.energy
            ea._category_watts = {
                "idle": float(alive_cnt[b]) * self._idle_w,
                "sensing": float(act_cnt[b]) * self._sens_w,
                "relay": float(st.relay_w[b].sum()),
                "leakage": 0.0,
            }
            ea._c_recompute_inc.inc()

    # -- flight records ----------------------------------------------------

    def _flight_record(self, w: World) -> None:
        """Per-world tick flight record, mirroring
        :meth:`World._flight_record` — minus checkpoint capture, which
        needs the tick event in the pending queue to be replayable."""
        s = w.state
        bb = s.blackbox
        wall = perf_counter()
        snap = snapshot_arrays(s)
        if (bb.seq + 1) % _FULL_DIGEST_EVERY == 0:
            digests = digest_state(snap)
        else:
            digests = {"state": digest_fields(snap)}
        bb.record(
            "tick",
            s.now,
            digests,
            rng=digest_rng(s.rng.bit_generator.state),
            wall_ms=round((wall - w._bb_wall) * 1e3, 3),
            backlog=len(s.requests),
            events_fired=s.sim.events_fired,
        )
        w._bb_wall = wall


def _ZEROS_CACHE(size: int, _cache: Dict[int, np.ndarray] = {}) -> np.ndarray:
    """A shared all-zeros int64 start vector (full-time scans)."""
    buf = _cache.get(size)
    if buf is None:
        buf = np.zeros(size, dtype=np.int64)
        _cache.clear()
        _cache[size] = buf
    return buf


def _compare_snapshots(world_idx: int, got: Dict, ref: Dict) -> None:
    """``REPRO_DEBUG_BATCH``: the batched snapshot must equal the
    serial twin's, field for field."""
    fields = set(got) | set(ref)
    for field in sorted(fields):
        if field not in got or field not in ref or not np.array_equal(
            got[field], ref[field]
        ):
            raise AssertionError(
                "batched engine diverged from the serial twin "
                f"(REPRO_DEBUG_BATCH, world {world_idx}, field {field!r}): "
                f"{got.get(field)!r} != {ref.get(field)!r}; please report this"
            )
