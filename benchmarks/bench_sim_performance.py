"""Simulator performance microbenchmarks (regression guards).

Not a paper figure — these pin the cost of the hot paths so future
changes that regress the engine show up in benchmark history:

* building a 500-sensor world (deployment + topology + routing);
* one vectorized energy advance over the whole bank;
* one rate recomputation (activation + relay accounting);
* a full small simulation end to end.
"""

import numpy as np
import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.world import World


def bench_world_construction(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = benchmark(lambda: World(cfg))
    assert world.cfg.n_sensors == 500


def bench_energy_advance(benchmark):
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    rates = world._rates.copy()

    def advance():
        world.bank.drain_rates(rates, 1.0)

    benchmark(advance)
    assert np.all(world.bank.levels_j >= 0)


def bench_rate_recompute(benchmark):
    # Forces the full pass: with the incremental path on (the default),
    # repeated recomputes over unchanged state would collapse to a
    # diff-only no-op and this guard would silently stop measuring the
    # relay-accounting rebuild it exists to pin.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    benchmark(lambda: world.energy.recompute(force_full=True))
    assert world._rates.sum() > 0


def bench_rate_recompute_incremental(benchmark):
    # The steady-state hot path: one activation rotation dirties a few
    # sensors per cluster, then the incremental recompute re-prices just
    # those.  Rotation runs in setup so only the recompute is timed.
    cfg = SimulationConfig.experiment(sim_time_s=1 * DAY_S, seed=1)
    world = World(cfg)
    energy = world.energy
    if not energy.incremental_enabled:
        pytest.skip("incremental recompute disabled (REPRO_INCREMENTAL=0)")

    def rotate(**_kwargs):
        energy.apply_handoffs(world.clusters.rotate())
        return (), {}

    benchmark.pedantic(energy.recompute, setup=rotate, rounds=50, iterations=1)
    assert world._rates.sum() > 0


def bench_small_run_end_to_end(benchmark):
    cfg = SimulationConfig.small(sim_time_s=0.5 * DAY_S, seed=1)
    summary = benchmark.pedantic(lambda: run_simulation(cfg), rounds=3, iterations=1)
    assert summary.sim_time_s == pytest.approx(0.5 * DAY_S)
