"""Shared state for the benchmark suite.

The ERP sweep behind Figs. 5, 6(a-d) and 7(a-b) is expensive (18
simulations per seed at the bench scale), so it is computed once per
pytest session and shared by every panel's benchmark.  Each benchmark
still *prints and persists* its own figure table under
``benchmarks/results/``.

Scale selection: set ``REPRO_SCALE`` to ``smoke`` (CI), ``bench``
(default) or ``paper`` (the EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional

from repro.experiments import current_scale, run_fig4, run_fig6

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_sweep_cache: Optional[Dict] = None
_fig4_cache: Optional[Dict] = None


def get_sweep() -> Dict:
    """The seed-averaged ERP x scheme sweep (computed once)."""
    global _sweep_cache
    if _sweep_cache is None:
        _sweep_cache = run_fig6(current_scale())
    return _sweep_cache


def get_fig4() -> Dict:
    """The 12-cell activity-management comparison (computed once)."""
    global _fig4_cache
    if _fig4_cache is None:
        _fig4_cache = run_fig4(current_scale())
    return _fig4_cache


def emit(name: str, table: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
