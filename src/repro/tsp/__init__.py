"""TSP toolkit: tour utilities, nearest-neighbour, 2-opt."""

from .nearest_neighbor import nearest_neighbor_order
from .tour import open_tour_length, tour_length, validate_tour
from .two_opt import two_opt

__all__ = [
    "nearest_neighbor_order",
    "open_tour_length",
    "tour_length",
    "two_opt",
    "validate_tour",
]
