"""Planar geometry substrate: points, the sensing field, coverage."""

from .coverage import covered_fraction_grid, detection_matrix, detectors_of_targets
from .field import Field, hexagon_covering_bound, minimum_sensors_eq1
from .points import (
    as_points,
    distance,
    distances_from,
    kdtree_for,
    nearest_index,
    neighbors_within,
    pairs_within,
    pairwise_distances,
    path_length,
)

__all__ = [
    "Field",
    "as_points",
    "covered_fraction_grid",
    "detection_matrix",
    "detectors_of_targets",
    "distance",
    "distances_from",
    "hexagon_covering_bound",
    "kdtree_for",
    "minimum_sensors_eq1",
    "nearest_index",
    "neighbors_within",
    "pairs_within",
    "pairwise_distances",
    "path_length",
]
