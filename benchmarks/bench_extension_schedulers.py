"""Ablation A4 — the extension schedulers vs the paper's algorithms.

One simulation cell per scheduler at the shared experiment
configuration (ERP 0.6): how do the FCFS / nearest-first baselines and
the 2-opt / deadline-aware refinements compare on travel, coverage and
request latency?
"""

from repro.experiments import current_scale, run_cell
from repro.utils.tables import format_table

from _shared import emit

SCHEDULERS = (
    "greedy",
    "partition",
    "combined",
    "fcfs",
    "nearest",
    "insertion+2opt",
    "deadline",
)


def bench_extension_schedulers(benchmark):
    scale = current_scale()

    def run():
        rows = []
        for name in SCHEDULERS:
            cell = run_cell(scale, scheduler=name, erp=0.6)
            rows.append(
                [
                    name,
                    cell["traveling_energy_j"] / 1e6,
                    100.0 * cell["avg_coverage_ratio"],
                    100.0 * cell["avg_nonfunctional_fraction"],
                    cell["mean_request_latency_s"] / 3600.0,
                    cell["objective_j"] / 1e6,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheduler", "travel (MJ)", "coverage (%)", "nonfunc (%)", "latency (h)", "objective (MJ)"],
        rows,
        title="Ablation A4 - extension schedulers vs the paper's (ERP 0.6)",
    )
    emit("extension_schedulers", table)
    by_name = {r[0]: r for r in rows}
    # 2-opt refinement never travels more than plain combined (same
    # routes, improved order) — allow small stochastic slack.
    assert by_name["insertion+2opt"][1] <= by_name["combined"][1] * 1.10
    # FCFS ignores geography: it should be the costliest traveler.
    assert by_name["fcfs"][1] >= by_name["partition"][1]
