"""Fig. 6(b) — average coverage ratio of targets vs ERP.

Paper shape: coverage stays in the mid-90s-to-100% band and degrades as
ERP postpones recharges.
"""

import numpy as np

from repro.experiments import ERP_GRID, format_panel, panel_b

from _shared import emit, get_sweep


def bench_fig6b_coverage_ratio(benchmark):
    series = benchmark.pedantic(lambda: panel_b(get_sweep()), rounds=1, iterations=1)
    emit("fig6b_coverage_ratio", format_panel("b", series, ERP_GRID))
    for s, v in series.items():
        arr = np.asarray(v)
        # Coverage is a percentage in the healthy band throughout.
        assert np.all(arr >= 80.0), s
        assert np.all(arr <= 100.0 + 1e-9), s
