"""Wireless recharge-time model.

The paper models recharge time "according to [15]" — the Panasonic
Ni-MH technical handbook — i.e. refilling a cell takes time proportional
to the charge deficit at the charger's current.  For wireless transfer
we add a transfer efficiency: the RV spends ``delivered / efficiency``
of its own budget to put ``delivered`` Joules into a node.

The default rate corresponds to a standard 0.5C charge of the AAA pack:
a fully depleted 8.1 kJ pack refills in about two hours.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChargeModel"]


@dataclass(frozen=True)
class ChargeModel:
    """Constant-power wireless charging.

    Attributes:
        power_w: rate at which energy enters the sensor battery (W).
        efficiency: fraction of the RV-side energy that reaches the
            battery; the RV budget is debited ``delivered / efficiency``.
    """

    power_w: float = 1.125
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError("power_w must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")

    def charge_time_s(self, demand_j: float) -> float:
        """Seconds to deliver ``demand_j`` into a battery."""
        if demand_j < 0:
            raise ValueError("demand_j must be non-negative")
        return demand_j / self.power_w

    def rv_energy_cost_j(self, delivered_j: float) -> float:
        """Energy debited from the RV to deliver ``delivered_j``."""
        if delivered_j < 0:
            raise ValueError("delivered_j must be non-negative")
        return delivered_j / self.efficiency
