"""Headless visualization: ASCII maps/charts and SVG export."""

from .ascii import render_field, render_histogram, render_series
from .svg import field_svg, series_svg, write_svg

__all__ = [
    "field_svg",
    "render_field",
    "render_histogram",
    "render_series",
    "series_svg",
    "write_svg",
]
