"""Figure 6 — performance comparison of the three recharging schemes
over the ERP sweep.

Four panels, all from one sweep:

* (a) traveling energy of RVs (MJ) — Partition-Scheme lowest;
* (b) average coverage ratio of targets (%);
* (c) average percentage of nonfunctional sensors — Combined-Scheme
  lowest;
* (d) recharging cost (m/sensor) = total RV distance / time-averaged
  operational sensors — declines with ERP.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..utils.tables import format_series
from .common import ERP_GRID, SCHEMES, ExperimentScale, run_erp_sweep

__all__ = [
    "run_fig6",
    "panel_a",
    "panel_b",
    "panel_c",
    "panel_d",
    "format_panel",
]

#: Panel -> (summary metric, transform, y-label)
_PANELS = {
    "a": ("traveling_energy_j", lambda v: v / 1e6, "Traveling energy (MJ)"),
    "b": ("avg_coverage_ratio", lambda v: 100.0 * v, "Coverage ratio (%)"),
    "c": ("avg_nonfunctional_fraction", lambda v: 100.0 * v, "Nonfunctional sensors (%)"),
    "d": ("recharging_cost_m_per_sensor", lambda v: v, "Recharging cost (m/sensor)"),
}


def run_fig6(
    scale: ExperimentScale, erps: Sequence[float] = ERP_GRID
) -> Dict[str, Dict[str, List[float]]]:
    """The full sweep; feed the result to the ``panel_*`` extractors.

    The same sweep also powers Fig. 7 — run it once and share.
    """
    return run_erp_sweep(scale, schedulers=SCHEMES, erps=erps)


def _extract(sweep, panel: str) -> Dict[str, List[float]]:
    metric, transform, _ = _PANELS[panel]
    return {s: [transform(v) for v in sweep[s][metric]] for s in SCHEMES}


def panel_a(sweep) -> Dict[str, List[float]]:
    """Fig. 6(a): traveling energy (MJ) per scheme."""
    return _extract(sweep, "a")


def panel_b(sweep) -> Dict[str, List[float]]:
    """Fig. 6(b): average coverage ratio (%) per scheme."""
    return _extract(sweep, "b")


def panel_c(sweep) -> Dict[str, List[float]]:
    """Fig. 6(c): average nonfunctional sensors (%) per scheme."""
    return _extract(sweep, "c")


def panel_d(sweep) -> Dict[str, List[float]]:
    """Fig. 6(d): recharging cost (m/sensor) per scheme."""
    return _extract(sweep, "d")


def format_panel(
    panel: str, series: Dict[str, List[float]], erps: Sequence[float] = ERP_GRID
) -> str:
    _, _, label = _PANELS[panel]
    return format_series(
        "ERP", list(erps), series, title=f"Fig. 6({panel}) - {label} vs ERP"
    )
