"""Tests for the run-statistics helpers."""

import numpy as np
import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import run_seeds
from repro.utils.stats import mean_std, summarize_runs, t_confidence_interval


class TestMeanStd:
    def test_basic(self):
        m, s = mean_std([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        lo, hi = t_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi

    def test_single_value_degenerate(self):
        assert t_confidence_interval([7.0]) == (7.0, 7.0)

    def test_constant_values_degenerate(self):
        assert t_confidence_interval([3.0, 3.0, 3.0]) == (3.0, 3.0)

    def test_higher_confidence_wider(self):
        data = [1.0, 2.0, 4.0, 8.0]
        lo90, hi90 = t_confidence_interval(data, 0.90)
        lo99, hi99 = t_confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi90 - lo90

    def test_matches_known_t_value(self):
        # n=4, 95%: t = 3.1824, sem = std/2.
        data = [0.0, 1.0, 2.0, 3.0]
        sem = np.std(data, ddof=1) / 2
        lo, hi = t_confidence_interval(data, 0.95)
        assert hi - lo == pytest.approx(2 * 3.1824 * sem, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            t_confidence_interval([])


class TestSummarizeRuns:
    def test_over_real_summaries(self):
        cfg = SimulationConfig.small(sim_time_s=0.2 * 86400)
        stats = summarize_runs(run_seeds(cfg, [1, 2, 3]))
        entry = stats["traveling_energy_j"]
        assert entry["n"] == 3
        assert entry["ci_low"] <= entry["mean"] <= entry["ci_high"]
        assert entry["std"] >= 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])
