"""Tests for the repro.obs telemetry layer.

Covers the instrument registry (live and null), the built-in exporters,
the run manifest, the telemetry runner glue, and the report renderer.
"""

import csv
import json
import re

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Instruments,
    NULL_INSTRUMENTS,
    NullInstruments,
    PhaseTimer,
    RunManifest,
    TelemetryBundle,
    config_digest,
    git_revision,
)
from repro.obs.report import format_report, load_report
from repro.registry import EXPORTERS
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation, run_with_telemetry
from repro.sim.trace import EventKind, TraceRecorder

TINY = dict(
    n_sensors=40,
    n_targets=3,
    n_rvs=1,
    side_length_m=60.0,
    sim_time_s=0.25 * DAY_S,
    battery_capacity_j=400.0,
    initial_charge_range=(0.5, 0.8),
    dispatch_period_s=1800.0,
    seed=42,
)


def tiny_config(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return SimulationConfig(**params)


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge(self):
        g = Gauge("x")
        g.set(7)
        assert g.value == 7.0
        g.set(3.0)
        assert g.value == 3.0

    def test_histogram_summary(self):
        h = Histogram("x")
        assert h.summary() == {"count": 0, "total": 0.0, "min": 0.0,
                               "max": 0.0, "mean": 0.0}
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)

    def test_timer_records_durations(self):
        t = PhaseTimer("x")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.total >= 0.0
        assert t.min <= t.max

    def test_timer_reentrant(self):
        t = PhaseTimer("x")
        with t:
            with t:
                pass
        assert t.count == 2

    def test_get_or_create_identity(self):
        obs = Instruments()
        assert obs.counter("a") is obs.counter("a")
        assert obs.timer("t") is obs.timer("t")
        assert obs.names() == ["a", "t"]

    def test_kind_mismatch_raises(self):
        obs = Instruments()
        obs.counter("a")
        with pytest.raises(ValueError, match="Counter"):
            obs.gauge("a")
        # PhaseTimer subclasses Histogram but the binding is exact.
        obs.timer("t")
        with pytest.raises(ValueError):
            obs.histogram("t")

    def test_snapshot_groups_by_kind(self):
        obs = Instruments()
        obs.counter("c").inc(4)
        obs.gauge("g").set(2.5)
        obs.histogram("h").observe(1.0)
        with obs.timer("t"):
            pass
        snap = obs.snapshot()
        assert snap["counters"] == {"c": 4.0}
        assert snap["gauges"] == {"g": 2.5}
        assert snap["histograms"]["h"]["count"] == 1
        timer = snap["timers"]["t"]
        assert set(timer) == {"count", "total_s", "min_s", "max_s", "mean_s"}
        assert timer["count"] == 1

    def test_snapshot_json_safe(self):
        obs = Instruments()
        obs.counter("c").inc()
        json.dumps(obs.snapshot())  # must not raise


class TestNullInstruments:
    def test_shared_singletons(self):
        null = NullInstruments()
        assert null.counter("a") is null.counter("b")
        assert null.timer("a") is NULL_INSTRUMENTS.timer("z")
        assert not null.enabled

    def test_everything_is_noop(self):
        null = NULL_INSTRUMENTS
        null.counter("c").inc(5)
        null.gauge("g").set(9)
        null.histogram("h").observe(1.0)
        with null.timer("t"):
            pass
        assert null.names() == []
        assert null.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}, "timers": {}}


def sample_bundle():
    obs = Instruments()
    obs.counter("fleet.sorties").inc(3)
    obs.gauge("gate.backlog").set(2)
    obs.histogram("fleet.delivered_j").observe(120.0)
    with obs.timer("energy.recompute"):
        pass
    trace = TraceRecorder()
    trace.emit(1.0, EventKind.NODE_RECHARGED, 4, 80.0)
    trace.sample_series(0.0, "coverage", 0.9)
    trace.sample_series(5.0, "coverage", 0.8)
    return TelemetryBundle(
        instruments=obs.snapshot(),
        summary={"traveling_energy_j": 42.0},
        config={"seed": 1},
        trace=trace,
    )


class TestExporters:
    def test_builtins_registered(self):
        for name in ("jsonl", "prometheus", "csv", "spans", "sqlite"):
            assert name in EXPORTERS

    def test_jsonl_exporter(self, tmp_path):
        written = EXPORTERS.build("jsonl").export(tmp_path, sample_bundle())
        names = {p.name for p in written}
        assert names == {"events.jsonl", "metrics.jsonl"}
        metric_lines = [json.loads(line) for line in
                        (tmp_path / "metrics.jsonl").read_text().splitlines()]
        kinds = {r["instrument"] for r in metric_lines}
        assert kinds == {"counter", "gauge", "histogram", "timer"}
        by_name = {r["name"]: r for r in metric_lines}
        assert by_name["fleet.sorties"]["value"] == 3.0

    def test_jsonl_events_round_trip(self, tmp_path):
        bundle = sample_bundle()
        EXPORTERS.build("jsonl").export(tmp_path, bundle)
        back = TraceRecorder.read_jsonl(tmp_path / "events.jsonl")
        assert back.events == bundle.trace.events
        assert back.series == bundle.trace.series

    def test_jsonl_without_trace(self, tmp_path):
        bundle = sample_bundle()
        bundle.trace = None
        written = EXPORTERS.build("jsonl").export(tmp_path, bundle)
        assert {p.name for p in written} == {"metrics.jsonl"}

    def test_prometheus_exporter(self, tmp_path):
        EXPORTERS.build("prometheus").export(tmp_path, sample_bundle())
        text = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE repro_fleet_sorties_total counter" in text
        assert "repro_fleet_sorties_total 3" in text
        assert "repro_gate_backlog 2" in text
        assert "repro_energy_recompute_seconds_count 1" in text
        assert "repro_summary_traveling_energy_j 42" in text
        # every non-comment line is "name value"
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, value = line.split()
                float(value)

    def test_csv_exporter(self, tmp_path):
        EXPORTERS.build("csv").export(tmp_path, sample_bundle())
        with open(tmp_path / "series.csv", newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["series", "time_s", "value"]
        assert ["coverage", "0.0", "0.9"] in rows
        with open(tmp_path / "instruments.csv", newline="") as f:
            inst = list(csv.reader(f))
        assert inst[0] == ["kind", "name", "field", "value"]
        assert ["counter", "fleet.sorties", "value", "3.0"] in inst

    def test_custom_exporter_pluggable(self, tmp_path):
        class OneFile:
            def export(self, out_dir, bundle):
                p = out_dir / "one.txt"
                p.write_text(str(len(bundle.summary)))
                return [p]

        EXPORTERS.register("test-onefile", OneFile)
        try:
            _, manifest = run_with_telemetry(
                tiny_config(sim_time_s=0.05 * DAY_S), tmp_path,
                exporters=["test-onefile"],
            )
            assert manifest.files == {"test-onefile": ["one.txt"]}
            assert (tmp_path / "one.txt").is_file()
        finally:
            EXPORTERS.unregister("test-onefile")


# Exposition format 0.0.4: a sample line is "name[{labels}] value", the
# name from this grammar.  The lint below holds for arbitrary
# instrument names; histogram ``_bucket`` series repeat the same name
# with distinct ``le`` labels, so uniqueness applies to (name, labels).
_PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)


class TestPrometheusSanitization:
    def weird_bundle(self):
        obs = Instruments()
        obs.counter("fleet.rv-0.sorties").inc(1)
        obs.counter("fleet_rv_0.sorties").inc(2)  # collides after sanitizing
        obs.gauge("0weird..na me!").set(5)
        obs.histogram("héllo.latency").observe(0.5)
        with obs.timer("phase one/two"):
            pass
        return TelemetryBundle(instruments=obs.snapshot(),
                               summary={"objective-j": 1.0})

    def test_sanitizes_dots_and_dashes(self):
        from repro.obs.exporters import _prom_name

        assert _prom_name("fleet.rv-0.delivered-j") == "repro_fleet_rv_0_delivered_j"
        assert _prom_name("a..b--c") == "repro_a_b_c"
        assert _prom_name("0starts.with.digit") == "repro_0starts_with_digit"

    def test_collisions_get_suffixes(self, tmp_path):
        EXPORTERS.build("prometheus").export(tmp_path, self.weird_bundle())
        text = (tmp_path / "metrics.prom").read_text()
        assert "repro_fleet_rv_0_sorties_total 1" in text
        assert "repro_fleet_rv_0_sorties_total_dup2 2" in text

    def test_exposition_grammar(self, tmp_path):
        EXPORTERS.build("prometheus").export(tmp_path, self.weird_bundle())
        seen = set()
        for line in (tmp_path / "metrics.prom").read_text().splitlines():
            if not line or line.startswith("#"):
                continue
            m = _PROM_SAMPLE_RE.match(line)
            assert m, f"unparseable sample line {line!r}"
            assert _PROM_NAME_RE.match(m.group("name")), m.group("name")
            key = (m.group("name"), m.group("labels"))
            assert key not in seen, f"duplicate sample {key}"
            seen.add(key)
            float(m.group("value"))
        assert seen

    def test_histogram_series_are_cumulative(self, tmp_path):
        obs = Instruments()
        h = obs.histogram("cell.latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        bundle = TelemetryBundle(instruments=obs.snapshot(), summary={})
        EXPORTERS.build("prometheus").export(tmp_path, bundle)
        text = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE repro_cell_latency histogram" in text
        assert 'repro_cell_latency_bucket{le="0.1"} 1' in text
        assert 'repro_cell_latency_bucket{le="1"} 3' in text
        assert 'repro_cell_latency_bucket{le="+Inf"} 4' in text
        assert "repro_cell_latency_count 4" in text
        assert "repro_cell_latency_sum 6.05" in text

    def test_help_and_type_comments_present(self, tmp_path):
        EXPORTERS.build("prometheus").export(tmp_path, self.weird_bundle())
        text = (tmp_path / "metrics.prom").read_text()
        assert "# HELP repro_fleet_rv_0_sorties_total" in text
        assert "# TYPE repro_fleet_rv_0_sorties_total counter" in text
        assert "# TYPE repro_h_llo_latency histogram" in text


class TestSpansAndSqliteExporters:
    def spans_bundle(self):
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        with tracer.span("run", seed=1):
            with tracer.span("tick", t=0.0) as s:
                s.event("sortie.assigned", rv_id=0)
        bundle = sample_bundle()
        bundle.spans = tracer
        return bundle, tracer

    def test_spans_exporter_round_trips(self, tmp_path):
        from repro.obs import load_spans

        bundle, tracer = self.spans_bundle()
        written = EXPORTERS.build("spans").export(tmp_path, bundle)
        assert [p.name for p in written] == ["spans.jsonl"]
        assert load_spans(tmp_path / "spans.jsonl") == tracer.to_rows()

    def test_spans_exporter_skips_without_spans(self, tmp_path):
        assert EXPORTERS.build("spans").export(tmp_path, sample_bundle()) == []

    def test_sqlite_tables(self, tmp_path):
        import sqlite3

        bundle, tracer = self.spans_bundle()
        written = EXPORTERS.build("sqlite").export(tmp_path, bundle)
        assert [p.name for p in written] == ["telemetry.sqlite"]
        conn = sqlite3.connect(tmp_path / "telemetry.sqlite")
        try:
            inst = dict(conn.execute(
                "SELECT name, value FROM instruments WHERE kind='counter'"
            ).fetchall())
            assert inst["fleet.sorties"] == 3.0
            summary = dict(conn.execute(
                "SELECT name, value FROM instruments WHERE kind='summary'"
            ).fetchall())
            assert summary["traveling_energy_j"] == 42.0
            spans = conn.execute(
                "SELECT span_id, parent_id, name, attrs FROM spans ORDER BY span_id"
            ).fetchall()
            assert [(r[0], r[1], r[2]) for r in spans] == [
                (1, None, "run"), (2, 1, "tick")]
            assert json.loads(spans[0][3]) == {"seed": 1}
        finally:
            conn.close()

    def test_sqlite_reexport_idempotent(self, tmp_path):
        bundle, _ = self.spans_bundle()
        EXPORTERS.build("sqlite").export(tmp_path, bundle)
        EXPORTERS.build("sqlite").export(tmp_path, bundle)
        import sqlite3

        conn = sqlite3.connect(tmp_path / "telemetry.sqlite")
        try:
            (n,) = conn.execute("SELECT COUNT(*) FROM spans").fetchone()
            assert n == 2
        finally:
            conn.close()


class TestManifest:
    def test_config_digest_order_independent(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest({"x": 2, "y": [1, 2]})
        assert len(config_digest(a)) == 64

    def test_git_revision_in_repo(self):
        rev = git_revision(__file__)
        if rev is not None:
            assert len(rev) == 40
            int(rev, 16)

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(tmp_path) is None

    def test_round_trip(self):
        m = RunManifest.create(config={"seed": 3}, seed=3, wall_time_s=1.5,
                               summary={"m": 1.0}, exporters=["jsonl"])
        back = RunManifest.from_dict(m.as_dict())
        assert back == m

    def test_from_dict_ignores_unknown_keys(self):
        m = RunManifest.create(config={}, seed=0, wall_time_s=0.0)
        data = m.as_dict()
        data["future_field"] = "whatever"
        assert RunManifest.from_dict(data) == m

    def test_write_load_directory_convention(self, tmp_path):
        m = RunManifest.create(config={"seed": 1}, seed=1, wall_time_s=0.1)
        path = m.write(tmp_path)
        assert path.name == "manifest.json"
        assert RunManifest.load(tmp_path) == m
        assert RunManifest.load(path) == m


class TestRunWithTelemetry:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("telemetry")
        summary, manifest = run_with_telemetry(tiny_config(), out)
        return out, summary, manifest

    def test_all_files_written(self, run_dir):
        out, _, manifest = run_dir
        expected = {"manifest.json", "events.jsonl", "metrics.jsonl",
                    "metrics.prom", "series.csv", "instruments.csv",
                    "spans.jsonl"}
        assert expected <= {p.name for p in out.iterdir()}
        assert manifest.exporters == ["jsonl", "prometheus", "csv", "spans"]
        for names in manifest.files.values():
            for name in names:
                assert (out / name).is_file()

    def test_manifest_provenance(self, run_dir):
        out, _, manifest = run_dir
        loaded = RunManifest.load(out)
        assert loaded.config_digest == manifest.config_digest
        assert loaded.seed == TINY["seed"]
        assert loaded.wall_time_s > 0
        assert loaded.config["n_sensors"] == TINY["n_sensors"]

    def test_phase_timers_cover_all_components(self, run_dir):
        _, _, manifest = run_dir
        timers = manifest.instruments["timers"]
        for name in ("energy.recompute", "energy.advance", "clusters.rebuild",
                     "gate.check", "fleet.dispatch", "scheduler.assign",
                     "world.run"):
            assert name in timers, name
            assert timers[name]["count"] >= 1

    def test_summary_bit_identical_to_plain_run(self, run_dir):
        _, summary, _ = run_dir
        plain = run_simulation(tiny_config())
        assert summary.as_dict() == plain.as_dict()

    def test_events_jsonl_parses(self, run_dir):
        out, _, _ = run_dir
        back = TraceRecorder.read_jsonl(out / "events.jsonl")
        assert len(back.events) > 0
        assert "coverage" in back.series

    def test_exporter_subset(self, tmp_path):
        _, manifest = run_with_telemetry(
            tiny_config(sim_time_s=0.05 * DAY_S), tmp_path,
            exporters=["prometheus"],
        )
        assert manifest.exporters == ["prometheus"]
        assert (tmp_path / "metrics.prom").is_file()
        assert not (tmp_path / "events.jsonl").exists()

    def test_unknown_exporter_rejected_before_running(self, tmp_path):
        with pytest.raises(ValueError, match="unknown telemetry exporter"):
            run_with_telemetry(tiny_config(), tmp_path, exporters=["nope"])
        assert not (tmp_path / "manifest.json").exists()


class TestReport:
    def test_load_and_format(self, tmp_path):
        run_with_telemetry(tiny_config(sim_time_s=0.05 * DAY_S), tmp_path)
        data = load_report(tmp_path)
        assert isinstance(data["manifest"], RunManifest)
        assert data["event_counts"]
        text = format_report(data)
        assert "Telemetry report" in text
        assert "Phase timings" in text
        assert "fleet.dispatch" in text
        assert "Span tree" in text
        assert "run  x1" in text

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_report(tmp_path)

    def test_format_without_events(self, tmp_path):
        run_with_telemetry(tiny_config(sim_time_s=0.05 * DAY_S), tmp_path,
                           exporters=["prometheus"])
        data = load_report(tmp_path)
        assert "event_counts" not in data
        assert "Telemetry report" in format_report(data)
