"""Property-based determinism: any configuration run twice is identical.

The strongest guarantee a simulation library can give — hypothesis
draws small random configurations across the whole option space and
checks bit-identical summaries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation


@given(
    n_sensors=st.integers(5, 40),
    n_targets=st.integers(0, 4),
    n_rvs=st.integers(0, 2),
    erp=st.sampled_from([0.0, 0.5, 1.0]),
    scheduler=st.sampled_from(["greedy", "partition", "combined", "fcfs", "deadline"]),
    activation=st.sampled_from(["round_robin", "full_time"]),
    mobility=st.sampled_from(["jump", "waypoint"]),
    metric=st.sampled_from(["distance", "etx"]),
    adaptive=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=12, deadline=None)
def test_any_config_is_deterministic(
    n_sensors, n_targets, n_rvs, erp, scheduler, activation, mobility, metric, adaptive, seed
):
    cfg = SimulationConfig(
        n_sensors=n_sensors,
        n_targets=n_targets,
        n_rvs=n_rvs,
        side_length_m=50.0,
        sim_time_s=4 * 3600.0,
        tick_s=600.0,
        dispatch_period_s=1800.0,
        battery_capacity_j=300.0,
        initial_charge_range=(0.5, 0.8),
        erp=erp,
        scheduler=scheduler,
        activation=activation,
        target_mobility=mobility,
        routing_metric=metric,
        adaptive_erp=adaptive,
        seed=seed,
    )
    a = run_simulation(cfg)
    b = run_simulation(cfg)
    assert a.as_dict() == b.as_dict()
    # Basic sanity on every draw.
    assert 0.0 <= a.avg_coverage_ratio <= 1.0
    assert a.objective_j == a.delivered_energy_j - a.traveling_energy_j
