"""Figure 4 — impact of sensor activity management on RV moving cost.

The paper compares four activity-management cases for each of the three
recharging schemes:

* **No ERC, Full time** — the prior-work baseline: every cluster member
  monitors continuously and requests recharge the moment it crosses the
  threshold (ERP = 0).
* **No ERC, With RR** — round-robin activation, immediate requests.
* **With ERC, Full time** — full-time activation, ERP = 0.6 (the
  paper's example value).
* **With ERC, With RR** — the proposed joint scheme.

The claim: "With ERC - with RR" consumes the least RV traveling energy;
"No ERC - Full time" the most; the management schemes save ~16%.

Unlike the ERP-sweep figures, Fig. 4 runs with Table II's own 3-hour
target period: the membership churn staggers threshold crossings, which
is precisely what makes the full-time baseline's request storm
expensive for the RVs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.config import HOUR_S
from ..sim.runner import average_summaries
from ..utils.tables import format_table
from .common import SCHEMES, ExperimentScale

__all__ = ["CASES", "run_fig4", "format_fig4", "activity_saving_percent"]

#: (label, erp, activation) — ERP 0.6 is the paper's example ERC value.
CASES: Tuple[Tuple[str, float, str], ...] = (
    ("No ERC - Full time", 0.0, "full_time"),
    ("No ERC - With RR", 0.0, "round_robin"),
    ("With ERC - Full time", 0.6, "full_time"),
    ("With ERC - With RR", 0.6, "round_robin"),
)


def run_fig4(
    scale: ExperimentScale, jobs: Optional[int] = None
) -> Dict[str, Dict[str, float]]:
    """Run all 12 cells; returns ``result[case_label][scheduler]`` =
    RV traveling energy in MJ.

    The whole ``case x scheduler x seed`` grid goes through the cell
    executor in one batch, so ``jobs``/``REPRO_JOBS`` parallelism spans
    the entire figure, not just one cell's seeds.
    """
    from .executor import map_configs

    grid = [
        (label, erp, activation, sched)
        for label, erp, activation in CASES
        for sched in SCHEMES
    ]
    configs = [
        scale.base_config(
            scheduler=sched,
            erp=erp,
            activation=activation,
            target_period_s=3 * HOUR_S,
        ).with_overrides(seed=seed)
        for label, erp, activation, sched in grid
        for seed in scale.seeds
    ]
    summaries = map_configs(configs, jobs=jobs)
    n_seeds = len(scale.seeds)
    out: Dict[str, Dict[str, float]] = {}
    for i, (label, _erp, _activation, sched) in enumerate(grid):
        cell = average_summaries(summaries[i * n_seeds : (i + 1) * n_seeds])
        out.setdefault(label, {})[sched] = cell["traveling_energy_j"] / 1e6
    return out


def activity_saving_percent(result: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Per scheduler: % traveling energy saved by the full joint scheme
    ("With ERC - With RR") relative to the baseline ("No ERC - Full
    time").  The paper reports ~16%."""
    savings = {}
    for sched in SCHEMES:
        base = result["No ERC - Full time"][sched]
        ours = result["With ERC - With RR"][sched]
        savings[sched] = 100.0 * (base - ours) / base if base > 0 else 0.0
    return savings


def format_fig4(result: Dict[str, Dict[str, float]]) -> str:
    """Render the Fig. 4 bars as a table (MJ)."""
    rows: List[list] = []
    for label, _, _ in CASES:
        rows.append([label] + [result[label][s] for s in SCHEMES])
    return format_table(
        ["case"] + list(SCHEMES),
        rows,
        title="Fig. 4 - Total traveling energy of RVs (MJ)",
    )
