"""Link quality: packet reception ratio and ETX link metrics.

The base topology treats every link within the communication range as
perfect.  Real low-power links degrade near the edge of the range; the
standard abstraction is the **packet reception ratio** (PRR) and the
**expected transmission count** ETX = 1 / (PRR_fwd * PRR_rev) used by
collection protocols (CTP et al.).

This module provides:

* :func:`prr_from_distance` — a two-regime PRR model: perfect inside a
  fraction of the range, linear decay to ``edge_prr`` at the range
  boundary (the classic "grey region" abstraction);
* :func:`etx_weights` — ETX values for every arc of a topology;
* :func:`apply_etx_metric` — a topology whose edge weights are
  ETX-scaled lengths, so :class:`~repro.network.routing.RoutingTree`
  built on it routes around weak links, and relay-energy accounting can
  charge retransmissions.
"""

from __future__ import annotations

import copy
from typing import Tuple

import numpy as np

from .topology import Topology

__all__ = ["prr_from_distance", "etx_weights", "apply_etx_metric"]


def prr_from_distance(
    dist_m: np.ndarray,
    comm_range_m: float,
    grey_start_fraction: float = 0.7,
    edge_prr: float = 0.5,
) -> np.ndarray:
    """Packet reception ratio of links of the given lengths.

    Perfect (1.0) below ``grey_start_fraction * range``; linear decay
    down to ``edge_prr`` at exactly the communication range; 0 beyond.
    """
    if comm_range_m <= 0:
        raise ValueError("comm_range_m must be positive")
    if not 0.0 <= grey_start_fraction <= 1.0:
        raise ValueError("grey_start_fraction must lie in [0, 1]")
    if not 0.0 < edge_prr <= 1.0:
        raise ValueError("edge_prr must lie in (0, 1]")
    dist = np.asarray(dist_m, dtype=np.float64)
    grey_start = grey_start_fraction * comm_range_m
    span = max(comm_range_m - grey_start, 1e-12)
    frac = np.clip((dist - grey_start) / span, 0.0, 1.0)
    prr = 1.0 - frac * (1.0 - edge_prr)
    return np.where(dist <= comm_range_m, prr, 0.0)


def etx_weights(
    topology: Topology,
    grey_start_fraction: float = 0.7,
    edge_prr: float = 0.5,
) -> np.ndarray:
    """ETX per CSR arc of ``topology`` (symmetric links: ETX = PRR^-2)."""
    prr = prr_from_distance(
        topology.weights, topology.comm_range, grey_start_fraction, edge_prr
    )
    if np.any(prr <= 0):
        raise ValueError("a link within range has zero PRR; check the model parameters")
    return 1.0 / (prr * prr)


def apply_etx_metric(
    topology: Topology,
    grey_start_fraction: float = 0.7,
    edge_prr: float = 0.5,
) -> Tuple[Topology, np.ndarray]:
    """A topology clone whose edge weights are ``length * ETX``.

    Shortest paths on the clone minimize expected *transmission-meters*
    — long edge-of-range hops are penalized by their retransmissions.

    Returns:
        ``(etx_topology, etx_per_arc)`` — the clone (aligned CSR arrays)
        and the raw per-arc ETX (for energy accounting).
    """
    etx = etx_weights(topology, grey_start_fraction, edge_prr)
    clone = copy.copy(topology)
    clone.weights = topology.weights * etx
    return clone, etx
