"""Discrete-event simulation of the WRSN world."""

from .components import (
    ClusterManager,
    EnergyAccounting,
    FleetController,
    RequestGate,
    SimulationState,
)
from .config import DAY_S, HOUR_S, SimulationConfig
from .engine import EventHandle, Simulator
from .metrics import MetricsCollector, SimulationSummary
from .runner import (
    average_summaries,
    make_scheduler,
    run_batch,
    run_seeds,
    run_simulation,
    run_with_telemetry,
)
from .trace import EventKind, NullRecorder, TraceEvent, TraceRecorder
from .world import World

__all__ = [
    "ClusterManager",
    "DAY_S",
    "EnergyAccounting",
    "EventHandle",
    "FleetController",
    "HOUR_S",
    "EventKind",
    "MetricsCollector",
    "NullRecorder",
    "RequestGate",
    "SimulationConfig",
    "SimulationState",
    "TraceEvent",
    "TraceRecorder",
    "SimulationSummary",
    "Simulator",
    "World",
    "average_summaries",
    "make_scheduler",
    "run_batch",
    "run_seeds",
    "run_simulation",
    "run_with_telemetry",
]
