"""The Partition-Scheme for multiple RVs (Section IV-D.1).

The recharge node list is partitioned into ``m`` geographically tight
groups with K-means (minimizing the within-cluster sum of squares,
Eq. (15)); each RV is made responsible for one group and runs the
single-RV insertion algorithm inside it.  Confining every RV's moving
scope is what gives the scheme its traveling-distance savings (41% vs
greedy in the paper's evaluation).

Group-to-RV matching: the paper starts RV ``i`` at centroid ``mu_i``;
online, RVs already have positions, so each idle RV greedily claims the
nearest unclaimed group centroid — the assignment K-means itself would
induce.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cluster.kmeans import kmeans
from ..geometry.points import distances_from
from . import kernels
from .insertion import plan_single_rv_chained
from .requests import RechargeNodeList
from .scheduling import PlannedRoute, RVView

__all__ = ["PartitionScheduler", "partition_requests"]


def partition_requests(
    positions: np.ndarray,
    n_groups: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """K-means partition of request positions into up to ``n_groups``.

    Returns index groups (lists of request indices).  Fewer groups come
    back when there are fewer requests than ``n_groups``.
    """
    n = len(positions)
    if n == 0:
        return []
    k = min(n_groups, n)
    if k <= 1:
        return [np.arange(n, dtype=np.intp)]
    result = kmeans(positions, k, rng=rng)
    return [g for g in result.groups() if len(g) > 0]


class PartitionScheduler:
    """Online Partition-Scheme.

    Every scheduling round re-partitions the *current* list into
    ``fleet_size`` groups; idle RVs claim nearest group centroids and
    plan insertion sorties confined to their group.  Groups left over
    (more groups than idle RVs) wait for the next round.
    """

    name = "partition"

    def __init__(self, fleet_size: int) -> None:
        if fleet_size < 1:
            raise ValueError("fleet_size must be >= 1")
        self.fleet_size = fleet_size

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        plans: Dict[int, PlannedRoute] = {}
        if not idle_rvs or len(requests) == 0:
            return plans
        snapshot = requests.snapshot()
        positions = np.vstack([r.position for r in snapshot])
        groups = partition_requests(positions, self.fleet_size, rng)
        if not groups:
            return plans
        centroids = np.vstack([positions[g].mean(axis=0) for g in groups])
        unclaimed = list(range(len(groups)))
        for rv in idle_rvs:
            if not unclaimed:
                break
            # Masked argmin over all centroid distances at once — the
            # per-group `distance` loop this replaces measured the same
            # hypot values one claim at a time.
            dists = distances_from(rv.position, centroids[unclaimed])
            pick = unclaimed.pop(kernels.masked_argmin(dists))
            group_requests = [snapshot[i] for i in groups[pick]]
            plan = plan_single_rv_chained(group_requests, rv)
            if plan is None or len(plan) == 0:
                continue
            plans[rv.rv_id] = plan
            requests.remove_many(plan.node_ids)
        return plans
