"""SVG export: field maps and line charts with zero plotting deps.

Produces small standalone ``.svg`` files — world snapshots render as
scaled field maps (sensing disks, cluster coloring, RV markers) and
trace/figure series as multi-line charts with axes and a legend.
Everything is built from string templates; no third-party renderer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["field_svg", "series_svg", "write_svg"]

#: A color cycle that stays readable on white.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b")


def _esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def field_svg(
    snapshot: Dict[str, np.ndarray],
    side_length: float,
    size_px: int = 600,
    sensing_range: Optional[float] = None,
    title: str = "",
) -> str:
    """Render a world snapshot as an SVG field map.

    Sensors are dots (grey idle, colored by cluster when assigned, red
    ring when depleted), targets are crosses, RVs are squares, the base
    station is a black diamond.  With ``sensing_range`` given, active
    sensors draw their sensing disk.
    """
    if size_px < 50:
        raise ValueError("size_px too small to be readable")
    pad = 30
    scale = (size_px - 2 * pad) / side_length

    def sx(x: float) -> float:
        return pad + x * scale

    def sy(y: float) -> float:
        return size_px - pad - y * scale  # flip: y grows upward

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size_px}" height="{size_px}" '
        f'viewBox="0 0 {size_px} {size_px}">',
        f'<rect x="0" y="0" width="{size_px}" height="{size_px}" fill="white"/>',
        f'<rect x="{pad}" y="{pad}" width="{size_px - 2 * pad}" height="{size_px - 2 * pad}" '
        f'fill="#fafafa" stroke="#888"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size_px / 2}" y="{pad - 10}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="13">{_esc(title)}</text>'
        )

    sensors = np.asarray(snapshot["sensor_positions"])
    alive = np.asarray(snapshot["alive"])
    active = np.asarray(snapshot["active"])
    membership = np.asarray(snapshot["cluster_membership"])

    if sensing_range:
        for x, y in sensors[active]:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="{sensing_range * scale:.1f}" '
                f'fill="#1f77b4" fill-opacity="0.08" stroke="#1f77b4" stroke-opacity="0.3"/>'
            )

    for i, (x, y) in enumerate(sensors):
        cluster = int(membership[i])
        if not alive[i]:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="none" '
                f'stroke="#d62728" stroke-width="1.2"/>'
            )
        elif cluster >= 0:
            color = PALETTE[cluster % len(PALETTE)]
            r = 3.5 if active[i] else 2.5
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="{r}" fill="{color}"/>')
        else:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="1.6" fill="#bbb"/>')

    for x, y in np.asarray(snapshot["target_positions"]).reshape(-1, 2):
        cx, cy = sx(x), sy(y)
        parts.append(
            f'<path d="M {cx - 5} {cy} L {cx + 5} {cy} M {cx} {cy - 5} L {cx} {cy + 5}" '
            f'stroke="black" stroke-width="1.6"/>'
        )

    for x, y in np.asarray(snapshot["rv_positions"]).reshape(-1, 2):
        parts.append(
            f'<rect x="{sx(x) - 4:.1f}" y="{sy(y) - 4:.1f}" width="8" height="8" '
            f'fill="#ff7f0e" stroke="black" stroke-width="0.8"/>'
        )

    bx, by = sx(side_length / 2), sy(side_length / 2)
    parts.append(
        f'<path d="M {bx} {by - 6} L {bx + 6} {by} L {bx} {by + 6} L {bx - 6} {by} Z" '
        f'fill="black"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def series_svg(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 640,
    height: int = 360,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an SVG line chart with axes.

    Args:
        series: name -> (x values, y values).
        title: chart heading.
        x_label / y_label: axis captions.
    """
    if not series:
        raise ValueError("no series to plot")
    pad_l, pad_r, pad_t, pad_b = 60, 20, 36, 46
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    if plot_w <= 0 or plot_h <= 0:
        raise ValueError("chart dimensions too small")

    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    span = y_hi - y_lo
    y_lo -= 0.05 * (span or 1.0)
    y_hi += 0.05 * (span or 1.0)

    def px(x: float) -> float:
        return pad_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return pad_t + (y_hi - y) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#444"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" font-size="14">{_esc(title)}</text>'
        )
    # Gridlines + tick labels (5 ticks each axis).
    for k in range(5):
        fx = x_lo + k / 4 * (x_hi - x_lo)
        fy = y_lo + k / 4 * (y_hi - y_lo)
        gx, gy = px(fx), py(fy)
        parts.append(
            f'<line x1="{gx:.1f}" y1="{pad_t}" x2="{gx:.1f}" y2="{pad_t + plot_h}" '
            f'stroke="#eee"/>'
        )
        parts.append(
            f'<line x1="{pad_l}" y1="{gy:.1f}" x2="{pad_l + plot_w}" y2="{gy:.1f}" '
            f'stroke="#eee"/>'
        )
        parts.append(
            f'<text x="{gx:.1f}" y="{pad_t + plot_h + 16}" text-anchor="middle" '
            f'font-size="10">{fx:.3g}</text>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{gy + 3:.1f}" text-anchor="end" '
            f'font-size="10">{fy:.3g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{pad_l + plot_w / 2}" y="{height - 8}" text-anchor="middle" '
            f'font-size="11">{_esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{pad_t + plot_h / 2}" text-anchor="middle" font-size="11" '
            f'transform="rotate(-90 14 {pad_t + plot_h / 2})">{_esc(y_label)}</text>'
        )

    for k, (name, (xs, ys)) in enumerate(series.items()):
        color = PALETTE[k % len(PALETTE)]
        pts = " ".join(f"{px(float(x)):.1f},{py(float(y)):.1f}" for x, y in zip(xs, ys))
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.8"/>'
        )
        ly = pad_t + 14 + 14 * k
        parts.append(
            f'<line x1="{pad_l + plot_w - 110}" y1="{ly - 4}" x2="{pad_l + plot_w - 90}" '
            f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{pad_l + plot_w - 84}" y="{ly}" font-size="10">{_esc(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(path, svg: str) -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
