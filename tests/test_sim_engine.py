"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestSimulator:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=5)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.run_until(1.0)
        assert fired == ["high", "low"]

    def test_insertion_order_breaks_remaining_ties(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run_until(1.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(h)
        assert h.cancelled
        sim.run_until(2.0)
        assert fired == []

    def test_schedule_in(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_in(0.5, lambda: fired.append(sim.now)))
        sim.run_until(2.0)
        assert fired == [1.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.schedule(4.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("edge"))
        sim.run_until(5.0)
        assert fired == ["edge"]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(4.0)

    def test_events_beyond_horizon_stay(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(10.0)
        assert fired == ["late"]

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert not sim.step()
        sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run_until(10.0)
        assert sim.events_fired == 3

    def test_self_rescheduling_chain(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.schedule_in(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run_until(100.0)
        assert count[0] == 5

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h)
        assert sim.peek_time() == 2.0
