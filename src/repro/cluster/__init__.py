"""Generic clustering substrate (K-means for the Partition-Scheme)."""

from .kmeans import KMeansResult, kmeans, wcss

__all__ = ["KMeansResult", "kmeans", "wcss"]
