"""Unit tests for the Partition-Scheme and Combined-Scheme."""

import numpy as np
import pytest

from repro.core.combined import CombinedScheduler
from repro.core.insertion import InsertionScheduler
from repro.core.partition import PartitionScheduler, partition_requests
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView


def req(node_id, x, y, demand=30.0, cluster=-1):
    return RechargeRequest(node_id, np.array([x, y]), demand, cluster)


def view(rv_id=0, pos=(0.0, 0.0), budget=1e9, em=1.0):
    return RVView(rv_id=rv_id, position=np.array(pos), budget_j=budget, em_j_per_m=em)


class TestPartitionRequests:
    def test_two_blobs_split(self, rng):
        positions = np.vstack(
            [rng.normal([0, 0], 0.5, size=(10, 2)), rng.normal([100, 100], 0.5, size=(10, 2))]
        )
        groups = partition_requests(positions, 2, rng)
        assert len(groups) == 2
        sides = [set(g // 10 for g in grp) for grp in groups]
        assert all(len(s) == 1 for s in sides)

    def test_fewer_points_than_groups(self, rng):
        groups = partition_requests(np.array([[0.0, 0.0], [1.0, 1.0]]), 5, rng)
        assert len(groups) == 2

    def test_empty(self, rng):
        assert partition_requests(np.empty((0, 2)), 3, rng) == []

    def test_single_group(self, rng):
        groups = partition_requests(np.zeros((4, 2)), 1, rng)
        assert len(groups) == 1
        assert len(groups[0]) == 4


class TestPartitionScheduler:
    def test_rvs_claim_nearest_group(self, rng):
        lst = RechargeNodeList(
            [req(0, 0, 0), req(1, 1, 0), req(2, 100, 100), req(3, 101, 100)]
        )
        views = [view(0, pos=(0.0, 0.0)), view(1, pos=(100.0, 100.0))]
        plans = PartitionScheduler(fleet_size=2).assign(lst, views, rng)
        assert sorted(plans[0].node_ids) == [0, 1]
        assert sorted(plans[1].node_ids) == [2, 3]
        assert len(lst) == 0

    def test_leftover_groups_wait(self, rng):
        lst = RechargeNodeList(
            [req(0, 0, 0), req(1, 100, 0), req(2, 0, 100)]
        )
        plans = PartitionScheduler(fleet_size=3).assign(lst, [view(0)], rng)
        assert len(plans) == 1
        assert len(lst) == 2  # two groups unserved

    def test_no_idle_rvs(self, rng):
        lst = RechargeNodeList([req(0, 0, 0)])
        assert PartitionScheduler(2).assign(lst, [], rng) == {}
        assert len(lst) == 1

    def test_empty_list(self, rng):
        assert PartitionScheduler(2).assign(RechargeNodeList(), [view()], rng) == {}

    def test_fleet_size_validation(self):
        with pytest.raises(ValueError):
            PartitionScheduler(0)

    def test_rv_confined_to_one_group(self, rng):
        """A single idle RV serves one K-means group, not the far one."""
        lst = RechargeNodeList(
            [req(0, 0, 0), req(1, 1, 1), req(2, 200, 200), req(3, 201, 201)]
        )
        plans = PartitionScheduler(fleet_size=2).assign(lst, [view(0, pos=(0, 0))], rng)
        assert sorted(plans[0].node_ids) == [0, 1]
        assert sorted(lst.node_ids.tolist()) == [2, 3]


class TestCombinedScheduler:
    def test_is_insertion_with_global_view(self):
        assert issubclass(CombinedScheduler, InsertionScheduler)
        assert CombinedScheduler().name == "combined"

    def test_sequential_global_assignment(self, rng):
        lst = RechargeNodeList([req(i, 10.0 * i, 0.0) for i in range(1, 7)])
        views = [view(0, pos=(0, 0)), view(1, pos=(70, 0))]
        plans = CombinedScheduler().assign(lst, views, rng)
        served = sorted(sum((list(p.node_ids) for p in plans.values()), []))
        assert served == [1, 2, 3, 4, 5, 6]
        assert len(lst) == 0

    def test_second_rv_gets_remainder(self, rng):
        lst = RechargeNodeList([req(0, 5, 0), req(1, 6, 0)])
        views = [view(0, pos=(0, 0)), view(1, pos=(0, 0))]
        plans = CombinedScheduler().assign(lst, views, rng)
        # First RV chains everything; the second has nothing left.
        assert 0 in plans
        assert 1 not in plans
