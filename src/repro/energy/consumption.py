"""Power-consumption models for sensor nodes.

The paper instantiates its sensors with concrete hardware (Section V):

* a TI CC2480 802.15.4 radio — 27 mA while transmitting or receiving a
  packet, under 5 uA in idle/low-power mode, 3 V supply;
* a PIR motion detector — 10 mA average while actively monitoring,
  170 uA while idle;
* data generation at a constant ``lambda = 15`` packets/minute of
  20-byte packets, forwarded to the base station over multiple hops.

Everything here converts those datasheet currents into Watts and
per-packet Joules so the simulator can work in SI units.  The classes
are frozen dataclasses: a consumption model is configuration, not
state.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RadioModel",
    "SensingModel",
    "NodePowerModel",
    "CC2480_RADIO",
    "PIR_DETECTOR",
    "PAPER_NODE_POWER",
]


@dataclass(frozen=True)
class RadioModel:
    """An on/off radio with per-packet transmit and receive costs.

    Attributes:
        tx_current_a: current draw while transmitting (A).
        rx_current_a: current draw while receiving (A).
        idle_current_a: current draw in low-power idle (A).
        voltage_v: supply voltage (V).
        bitrate_bps: over-the-air bitrate (bit/s).
        overhead_bytes: PHY/MAC framing added to every payload.
        listen_duty_cycle: fraction of idle time spent with the receiver
            on (low-power-listening MACs wake periodically to sample the
            channel).  0 models the datasheet's pure low-power mode; a
            duty-cycled radio's idle draw blends RX and sleep currents.
    """

    tx_current_a: float = 27e-3
    rx_current_a: float = 27e-3
    idle_current_a: float = 5e-6
    voltage_v: float = 3.0
    bitrate_bps: float = 250_000.0
    overhead_bytes: int = 18
    listen_duty_cycle: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tx_current_a", "rx_current_a", "idle_current_a", "voltage_v", "bitrate_bps"):
            if getattr(self, name) <= 0 and name != "idle_current_a":
                raise ValueError(f"{name} must be positive")
        if self.idle_current_a < 0:
            raise ValueError("idle_current_a must be non-negative")
        if self.overhead_bytes < 0:
            raise ValueError("overhead_bytes must be non-negative")
        if not 0.0 <= self.listen_duty_cycle <= 1.0:
            raise ValueError("listen_duty_cycle must lie in [0, 1]")

    def airtime_s(self, payload_bytes: int) -> float:
        """Time on air for one packet of ``payload_bytes`` payload."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return 8.0 * (payload_bytes + self.overhead_bytes) / self.bitrate_bps

    def tx_energy_j(self, payload_bytes: int) -> float:
        """Energy to transmit one packet (the paper's ``e_t``)."""
        return self.tx_current_a * self.voltage_v * self.airtime_s(payload_bytes)

    def rx_energy_j(self, payload_bytes: int) -> float:
        """Energy to receive one packet (the paper's ``e_r``)."""
        return self.rx_current_a * self.voltage_v * self.airtime_s(payload_bytes)

    @property
    def idle_power_w(self) -> float:
        """Idle draw in Watts: sleep current blended with the
        low-power-listening duty cycle's RX time."""
        sleep = self.idle_current_a * self.voltage_v
        listen = self.rx_current_a * self.voltage_v
        return (1.0 - self.listen_duty_cycle) * sleep + self.listen_duty_cycle * listen


@dataclass(frozen=True)
class SensingModel:
    """A detector with an active and an idle draw.

    Attributes:
        active_current_a: current while actively monitoring a target (A).
        idle_current_a: current while the detector sleeps (A).
        voltage_v: supply voltage (V).
    """

    active_current_a: float = 10e-3
    idle_current_a: float = 170e-6
    voltage_v: float = 3.0

    def __post_init__(self) -> None:
        if self.active_current_a <= 0:
            raise ValueError("active_current_a must be positive")
        if self.idle_current_a < 0:
            raise ValueError("idle_current_a must be non-negative")
        if self.voltage_v <= 0:
            raise ValueError("voltage_v must be positive")

    @property
    def active_power_w(self) -> float:
        """Draw while monitoring, in Watts (the paper's ``e_s``)."""
        return self.active_current_a * self.voltage_v

    @property
    def idle_power_w(self) -> float:
        """Draw while idle, in Watts."""
        return self.idle_current_a * self.voltage_v


@dataclass(frozen=True)
class NodePowerModel:
    """Complete per-node power model: detector + radio + traffic.

    Combines the steady detector/radio draws with the packet-rate
    dependent communication cost.  The simulator asks for *rates* in
    Watts so it can advance batteries analytically between events.

    Attributes:
        radio: the radio model.
        sensing: the detector model.
        packet_rate_hz: data generation rate of an *active* sensor
            (``lambda``; the paper's 15 pkt/min = 0.25 Hz).
        payload_bytes: sensing-report payload size (paper: 20 bytes).
    """

    radio: RadioModel = RadioModel()
    sensing: SensingModel = SensingModel()
    packet_rate_hz: float = 15.0 / 60.0
    payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.packet_rate_hz < 0:
            raise ValueError("packet_rate_hz must be non-negative")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def idle_power_w(self) -> float:
        """Baseline draw of a sleeping node (detector idle + radio idle)."""
        return self.sensing.idle_power_w + self.radio.idle_power_w

    @property
    def active_sensing_power_w(self) -> float:
        """Extra draw of a node actively monitoring a target, including
        the energy to originate its own report packets."""
        own_tx = self.packet_rate_hz * self.radio.tx_energy_j(self.payload_bytes)
        return (self.sensing.active_power_w - self.sensing.idle_power_w) + own_tx

    def relay_power_w(self, packets_per_second: float) -> float:
        """Extra draw of forwarding ``packets_per_second`` for others.

        Each relayed packet costs one receive plus one transmit.
        """
        if packets_per_second < 0:
            raise ValueError("packets_per_second must be non-negative")
        per_packet = self.radio.rx_energy_j(self.payload_bytes) + self.radio.tx_energy_j(self.payload_bytes)
        return packets_per_second * per_packet

    def notification_energy_j(self) -> float:
        """Cost of one round-robin hand-off: a notification packet sent
        by the retiring sensor and received by its successor (Section
        III-C).  Charged as TX on the sender and RX on the receiver."""
        return self.radio.tx_energy_j(self.payload_bytes)


#: The exact hardware the paper simulates (Section V).
CC2480_RADIO = RadioModel()
PIR_DETECTOR = SensingModel()
PAPER_NODE_POWER = NodePowerModel(radio=CC2480_RADIO, sensing=PIR_DETECTOR)
