#!/usr/bin/env python
"""Adaptive ERP: letting the network find its own K (extension).

The paper tunes the Energy Request Percentage offline, by sweeping it
and looking for the knee (Fig. 5).  The library's
AdaptiveEnergyRequestController automates the search online with an
AIMD loop: K creeps up while no sensor dies and backs off
multiplicatively on depletions.

This example runs static K in {0, 0.4, 0.8} against the adaptive
controller on the same scenario and prints where the controller
settled, its K trajectory, and how its travel/coverage compare.

Run:  python examples/adaptive_erp.py
"""

from repro import SimulationConfig, World
from repro.sim import DAY_S, HOUR_S
from repro.utils.tables import format_table


def scenario(**overrides):
    base = dict(
        sim_time_s=4 * DAY_S,
        target_period_s=24 * HOUR_S,  # clusters persist across cycles
        scheduler="combined",
        seed=17,
    )
    base.update(overrides)
    return SimulationConfig.small(**base)


def main() -> None:
    rows = []
    for erp in (0.0, 0.4, 0.8):
        s = World(scenario(erp=erp)).run()
        rows.append(
            [
                f"static K={erp:.1f}",
                s.traveling_energy_j / 1000.0,
                100 * s.avg_coverage_ratio,
                100 * s.avg_nonfunctional_fraction,
            ]
        )

    world = World(scenario(erp=0.2, adaptive_erp=True))
    s = world.run()
    rows.append(
        [
            f"adaptive (K -> {world.erc.erp:.2f})",
            s.traveling_energy_j / 1000.0,
            100 * s.avg_coverage_ratio,
            100 * s.avg_nonfunctional_fraction,
        ]
    )

    print(
        format_table(
            ["policy", "travel kJ", "coverage %", "nonfunc %"],
            rows,
            precision=2,
            title="Static vs adaptive Energy Request Percentage (4 simulated days)",
        )
    )
    print("\nAdaptive K trajectory (time h -> K):")
    for t, k in world.erc.history:
        print(f"  {t / 3600:6.1f} h : K = {k:.2f}")
    print(
        "\nReading: the controller ratchets K upward while the network is "
        "healthy, capturing the travel savings of a high ERP without the "
        "operator ever sweeping it."
    )


if __name__ == "__main__":
    main()
