"""Lightweight run-time instruments: counters, gauges, histograms, timers.

The simulation components record what they do — dispatch rounds, ERC
releases, re-clusterings, battery depletions — and how long the hot
phases take, through a small set of instruments owned by one
:class:`Instruments` registry per run.  Instrumentation follows the
same opt-in contract as :class:`repro.sim.trace.TraceRecorder`: the
default :class:`NullInstruments` hands out shared no-op singletons, so
a run without telemetry pays a single attribute load per touch point
and nothing else.

Instruments are identified by dotted names (``fleet.dispatch``,
``gate.requests_released``); exporters (:mod:`repro.obs.exporters`)
translate those names into their own conventions.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Instruments",
    "NullInstruments",
    "NULL_INSTRUMENTS",
    "PhaseTimer",
]

#: Log-spaced bucket bounds (seconds) for latency histograms.  Chosen
#: to straddle both sub-millisecond kernel phases and multi-minute
#: sweep cells; the implicit ``+Inf`` bucket catches the rest.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class Counter:
    """A monotonically increasing total (events, Joules, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that can move both ways (backlog size...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary of observed values (count/total/min/max).

    Keeps O(1) state rather than the raw samples: per-sample series
    belong in the trace recorder, which timestamps them.  Passing
    ``buckets`` (a sorted sequence of upper bounds) additionally keeps
    per-bucket counts, enabling Prometheus ``_bucket`` series and
    approximate quantiles; without buckets the cost stays four floats.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "bucket_counts")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        if buckets:
            self.buckets: Optional[Tuple[float, ...]] = tuple(float(b) for b in buckets)
            if list(self.buckets) != sorted(set(self.buckets)):
                raise ValueError(f"histogram {name!r} buckets must be sorted and unique")
            # One slot per bound plus the +Inf overflow; non-cumulative.
            self.bucket_counts: Optional[List[int]] = [0] * (len(self.buckets) + 1)
        else:
            self.buckets = None
            self.bucket_counts = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.buckets is not None:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket counts (upper-bound rule).

        Requires buckets; values past the last bound report the
        observed max (the honest cap for an open-ended bucket).
        """
        if self.buckets is None:
            raise ValueError(f"histogram {self.name!r} has no buckets; cannot take quantiles")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            seen += n
            if seen >= rank:
                return bound
        return self.max

    def merge(self, summary: Dict[str, Any]) -> None:
        """Fold another histogram's ``summary()`` into this one.

        Addition is commutative, so merging worker deltas in any
        arrival order yields the same totals — the same property span
        ``absorb()`` relies on.  Bucket layouts must match when both
        sides have them.
        """
        count = int(summary.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(summary.get("total", 0.0))
        smin = float(summary.get("min", 0.0))
        smax = float(summary.get("max", 0.0))
        if smin < self.min:
            self.min = smin
        if smax > self.max:
            self.max = smax
        theirs = summary.get("buckets")
        if self.buckets is not None and theirs:
            if len(theirs) != len(self.bucket_counts):
                raise ValueError(
                    f"histogram {self.name!r}: bucket layout mismatch in merge"
                )
            for i, n in enumerate(theirs):
                self.bucket_counts[i] += int(n)

    def summary(self) -> Dict[str, Any]:
        """The JSON-friendly view used by snapshots and exporters.

        Scalar fields only, plus optional ``buckets`` (non-cumulative
        per-bucket counts) and ``bucket_bounds`` (the upper bounds)
        lists; tabular exporters skip the lists.
        """
        if not self.count:
            out: Dict[str, Any] = {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        else:
            out = {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
            }
        if self.buckets is not None:
            out["buckets"] = list(self.bucket_counts)
            out["bucket_bounds"] = list(self.buckets)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class PhaseTimer(Histogram):
    """A wall-clock stopwatch histogram usable as a context manager.

    Re-entrant (nested ``with`` blocks on the same timer each record
    their own duration), so a phase that indirectly re-enters itself
    through the event engine still books correctly.
    """

    __slots__ = ("_starts",)

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, buckets)
        self._starts: List[float] = []

    def __enter__(self) -> "PhaseTimer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.observe(time.perf_counter() - self._starts.pop())


class Instruments:
    """The per-run instrument registry.

    ``counter`` / ``gauge`` / ``histogram`` / ``timer`` get-or-create by
    name, so components can look their instruments up at construction
    and share totals with dynamically named ones (``fleet.rv0.sorties``).
    A name is bound to the first instrument kind that claimed it;
    re-requesting it as a different kind raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: type, *args: Any) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = kind(name, *args)
        elif type(inst) is not kind:
            raise ValueError(
                f"instrument {name!r} is a {type(inst).__name__}, not a {kind.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create; ``buckets`` only applies on first creation."""
        return self._get(name, Histogram, buckets)

    def timer(self, name: str, buckets: Optional[Sequence[float]] = None) -> PhaseTimer:
        return self._get(name, PhaseTimer, buckets)

    def names(self) -> List[str]:
        """All instrument names, in creation order."""
        return list(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-friendly dump of every instrument, grouped by kind.

        Timer durations are reported in seconds under ``timers``;
        creation order is preserved inside each group.  Iterates a
        list copy so a live-endpoint scrape racing instrument creation
        never sees a resized dict.
        """
        out: Dict[str, Dict[str, Any]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }
        for name, inst in list(self._instruments.items()):
            if isinstance(inst, PhaseTimer):
                s = inst.summary()
                timer_row: Dict[str, Any] = {
                    "count": s["count"],
                    "total_s": s["total"],
                    "min_s": s["min"],
                    "max_s": s["max"],
                    "mean_s": s["mean"],
                }
                if "buckets" in s:
                    timer_row["buckets"] = s["buckets"]
                    timer_row["bucket_bounds"] = s["bucket_bounds"]
                out["timers"][name] = timer_row
            elif isinstance(inst, Histogram):
                out["histograms"][name] = inst.summary()
            elif isinstance(inst, Gauge):
                out["gauges"][name] = inst.value
            else:
                out["counters"][name] = inst.value
        return out


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    mean = 0.0
    buckets = None

    def observe(self, value: float) -> None:
        pass

    def merge(self, summary: Dict[str, Any]) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class _NullTimer(_NullHistogram):
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer()


class NullInstruments:
    """The zero-overhead fast path (mirrors ``trace.NullRecorder``).

    Every accessor returns a shared no-op singleton, so instrumented
    code needs no conditionals: ``with self._t_dispatch:`` costs two
    empty method calls when telemetry is off.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, buckets: Optional[Sequence[float]] = None) -> _NullTimer:
        return _NULL_TIMER

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}


#: The shared default; components fall back to it when no instruments
#: are attached (one instance is enough — it holds no state).
NULL_INSTRUMENTS = NullInstruments()
