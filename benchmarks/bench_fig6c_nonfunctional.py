"""Fig. 6(c) — average percentage of nonfunctional sensors vs ERP.

Paper shape: a few percent at most, growing with ERP (postponed
requests keep more nodes in low-energy states); the Combined-Scheme
keeps the fewest nodes nonfunctional.
"""

import numpy as np

from repro.experiments import ERP_GRID, format_panel, panel_c

from _shared import emit, get_sweep


def bench_fig6c_nonfunctional(benchmark):
    series = benchmark.pedantic(lambda: panel_c(get_sweep()), rounds=1, iterations=1)
    emit("fig6c_nonfunctional", format_panel("c", series, ERP_GRID))
    means = {s: float(np.mean(v)) for s, v in series.items()}
    # Shape: high ERP is (weakly) worse than ERP 0 for every scheme.
    for s, v in series.items():
        assert v[-1] >= v[0] - 0.2, s
    # Shape: the combined scheme is not the worst performer.
    assert means["combined"] <= max(means.values())
