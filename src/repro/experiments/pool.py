"""Persistent warm worker pool for sweep fan-out.

The cold executor path builds a fresh ``multiprocessing.Pool`` per
``map_configs`` call: every sweep pays interpreter start, numpy/scipy
imports and simulator warm-up in each worker, then throws that state
away.  :class:`WarmPool` keeps a fixed set of worker processes alive
across calls, so repeated sweeps — the ERP grids behind every figure,
and the thousands of rollouts a learned charging policy needs — pay
those costs once per worker instead of once per sweep:

* **warm reuse** — workers survive between ``run`` / ``run_iter``
  calls; module-level caches (the scheduler ``DistanceCache``, kd-tree
  identity caches, compiled regexes, ...) stay hot;
* **health** — the parent dispatches tasks over a dedicated duplex
  pipe per worker (one task outstanding each), so it always knows
  which task a worker holds: a worker that dies mid-task is detected
  (its process sentinel trips ``multiprocessing.connection.wait``),
  respawned, and its task resubmitted (``pool.respawns``).  Per-worker
  pipes mean no shared queue locks — a SIGKILLed worker can never
  strand a lock another worker needs.  :meth:`ping` round-trips a
  no-op task and :attr:`healthy` checks process liveness;
* **idle reaping** — with ``idle_timeout_s`` set, a pool that has not
  run anything for that long releases its workers on the next
  :meth:`reap_if_idle` (the sweep service calls it between
  connections); the next run transparently cold-starts;
* **shared-memory shipping** — workers pack ``SimulationSummary``
  results into a ``numpy`` vector written to a
  ``multiprocessing.shared_memory`` segment and send only the segment
  name over the queue; the parent copies the payload out and unlinks
  the segment.  ``REPRO_SHM=0`` (or an unavailable module) falls back
  to pickling through the queue — both paths are bit-identical because
  float64 round-trips exactly.

Determinism contract: the pool runs the *same* module-level worker
functions as the cold pool over the same payloads and the parent
reassembles by task index, so results are byte-identical to the serial
executor whatever the scheduling — pool reuse amortizes cost, never
state that could leak into a trajectory (workers only ever receive
frozen configs and return summaries).

Nothing here is imported by :mod:`repro.experiments.executor` unless a
caller opts into ``warm=True`` / ``REPRO_WARM_POOL=1``: importing the
executor spawns no processes and allocates no shared memory.

Observability: ``run``/``run_iter`` accept an ``Instruments`` registry
and record ``pool.warm_hits`` / ``pool.respawns`` / ``pool.shm_bytes``
counters and the ``pool.queue_depth`` gauge; the same totals are kept
in the pool's :attr:`stats` dict for instrument-free callers.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
from collections import deque
from multiprocessing import connection
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.instruments import DEFAULT_LATENCY_BUCKETS, NULL_INSTRUMENTS
from ..obs.schema import POOL_STATS

__all__ = ["WarmPool", "get_warm_pool", "shm_available", "shutdown_warm_pool"]

#: How long the parent blocks in ``connection.wait`` per poll
#: (seconds).  Worker results and death sentinels wake it immediately;
#: this only bounds the idle-loop tick.
_POLL_S = 0.2


def _shm_module():
    """The ``multiprocessing.shared_memory`` module, or None."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - py38+ always has it
        return None
    return shared_memory


def shm_available() -> bool:
    """Whether shared-memory result shipping is enabled and supported.

    ``REPRO_SHM=0`` disables it (pickle fallback); anything else uses
    it when ``multiprocessing.shared_memory`` imports.
    """
    if os.environ.get("REPRO_SHM", "").strip() == "0":
        return False
    return _shm_module() is not None


def _summary_fields() -> Tuple[str, ...]:
    """The summary's field names in declaration order — the schema of
    the packed float64 vector shipped through shared memory."""
    import dataclasses

    from ..sim.metrics import SimulationSummary

    return tuple(f.name for f in dataclasses.fields(SimulationSummary))


def _pack_summary(summary) -> "Any":
    """A summary as a float64 vector (field order = declaration order).

    float64 represents every summary value exactly (ints here are far
    below 2**53), so packing/unpacking is bit-preserving.
    """
    import numpy as np

    return np.array(
        [float(getattr(summary, f)) for f in _summary_fields()], dtype=np.float64
    )


def _unpack_summary(values):
    """Inverse of :func:`_pack_summary` (ints restored)."""
    from .cache import summary_from_dict

    return summary_from_dict(dict(zip(_summary_fields(), [float(v) for v in values])))


def _untrack_shm(seg) -> None:
    """Detach a worker-created segment from the worker's resource
    tracker: its lifetime is owned by the *parent* (attach → copy →
    unlink), and without this the creating process would try to unlink
    it a second time at exit and log spurious leak warnings."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _ship(result: Any, use_shm: bool) -> Tuple[Any, ...]:
    """Encode a task result for the result queue (worker side).

    Summaries (bare, or the ``(summary, rows)`` tuples of the traced
    and recorded workers) are packed into a float64 vector and written
    to a shared-memory segment; everything else — and every payload
    when shm is off — pickles through the queue.
    """
    from ..sim.metrics import SimulationSummary

    if isinstance(result, SimulationSummary):
        summary, rows, has_rows = result, None, False
    elif (
        isinstance(result, tuple)
        and len(result) == 2
        and isinstance(result[0], SimulationSummary)
    ):
        (summary, rows), has_rows = result, True
    else:
        return ("pickle", result)
    values = _pack_summary(summary)
    if use_shm:
        shm = _shm_module()
        if shm is not None:
            try:
                seg = shm.SharedMemory(create=True, size=values.nbytes)
            except OSError:
                seg = None  # no /dev/shm (or quota hit): fall back below
            if seg is not None:
                import numpy as np

                view = np.ndarray(values.shape, dtype=values.dtype, buffer=seg.buf)
                view[:] = values
                del view  # release the exported buffer before close()
                name = seg.name
                _untrack_shm(seg)
                seg.close()
                return ("shm", name, values.nbytes, has_rows, rows)
    return ("packed", values.tobytes(), has_rows, rows)


def _unship(shipped: Tuple[Any, ...]) -> Tuple[Any, int]:
    """Decode a shipped result (parent side); returns ``(result,
    shm_bytes)`` where the byte count is nonzero only for segments."""
    import numpy as np

    tag = shipped[0]
    if tag == "pickle":
        return shipped[1], 0
    if tag == "packed":
        _, raw, has_rows, rows = shipped
        summary = _unpack_summary(np.frombuffer(raw, dtype=np.float64))
        return ((summary, rows) if has_rows else summary), 0
    _, name, nbytes, has_rows, rows = shipped
    seg = _shm_module().SharedMemory(name=name)
    try:
        view = np.ndarray((nbytes // 8,), dtype=np.float64, buffer=seg.buf)
        values = view.copy()
        del view
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    summary = _unpack_summary(values)
    return ((summary, rows) if has_rows else summary), nbytes


def _discard(shipped: Tuple[Any, ...]) -> None:
    """Release a shipped result that will never be consumed (stale
    generation, or a duplicate after a respawn resubmission) — shm
    segments must be unlinked or they leak until reboot."""
    if shipped and shipped[0] == "shm":
        try:
            seg = _shm_module().SharedMemory(name=shipped[1])
            seg.close()
            seg.unlink()
        except Exception:
            pass


def _resolve_task(kind: str):
    """A task kind's worker function (resolved in the worker, so spawn
    children import exactly what the task needs)."""
    if kind == "ping":
        return lambda payload: ("pong", os.getpid())
    from . import executor

    try:
        return executor._TASK_FNS[kind]
    except KeyError:
        raise ValueError(f"unknown warm-pool task kind {kind!r}") from None


def _worker_stats_delta(
    kind: str, payload: Any, elapsed_s: float, instruments
) -> Dict[str, Any]:
    """Book one task into the worker's local registry and snapshot it.

    The registry is fresh per task (installed by the loop before the
    task ran, so task code can record into it via
    ``repro.obs.live.worker_instruments()``), which makes each snapshot
    a *delta* — the parent-side MetricsBus just folds deltas additively
    in whatever order replies arrive.

    ``worker.tasks`` counts *cells*, matching the pool's weighted
    ``tasks`` stat: a shape-batched payload covering k sweep cells
    counts k, so a scrape of the worker aggregate reconciles with the
    parent-side totals.
    """
    cells = len(payload) if kind == "batch" else 1
    instruments.counter("worker.tasks").inc(cells)
    instruments.counter(f"worker.tasks.{kind}").inc(cells)
    instruments.histogram("worker.task_s", DEFAULT_LATENCY_BUCKETS).observe(elapsed_s)
    try:
        import resource

        instruments.gauge("worker.maxrss_kb").set(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
    except Exception:  # pragma: no cover - non-POSIX platform
        pass
    return instruments.snapshot()


def _worker_main(worker_id: int, conn, use_shm: bool, stream: bool = False) -> None:
    """Warm worker loop: serve ``(gen, task_id, kind, payload)`` tasks
    from the parent's pipe until EOF or the ``None`` sentinel arrives.

    The heavy imports are hoisted to the top of the loop so each worker
    pays interpreter/import warm-up exactly once, whatever the start
    method; module-level caches accumulate across tasks.  The pipe is
    private to this worker — a crash here can never strand a lock a
    sibling needs, and ``conn.send`` writes synchronously, so a result
    the parent sees is a result that really completed.

    With ``stream`` on (the pool has a MetricsBus attached), each reply
    carries a per-task instrument snapshot delta as its final element —
    piggybacked on the existing pipe, no extra channel.  Instruments
    never touch the task payload or result, so simulation output is
    byte-identical either way.
    """
    import numpy  # noqa: F401  (warm the import once per worker)

    try:
        import scipy  # noqa: F401
    except ImportError:  # pragma: no cover - scipy is a hard dep in practice
        pass
    from ..sim import runner  # noqa: F401  (warm the simulator import graph)

    if stream:
        from ..obs.instruments import Instruments
        from ..obs.live import set_worker_instruments

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if msg is None:
            break
        gen, task_id, kind, payload = msg
        delta: Optional[Dict[str, Any]] = None
        if stream:
            local = Instruments()
            set_worker_instruments(local)
        t0 = time.perf_counter()
        try:
            result = _resolve_task(kind)(payload)
        except BaseException as exc:  # ship the failure, keep the worker alive
            try:
                blob: Optional[bytes] = pickle.dumps(exc)
            except Exception:
                blob = None
            if stream:
                delta = _worker_stats_delta(kind, payload, time.perf_counter() - t0, local)
            reply = ("error", gen, task_id, blob, repr(exc), delta)
        else:
            if stream:
                delta = _worker_stats_delta(kind, payload, time.perf_counter() - t0, local)
            reply = ("done", gen, task_id, _ship(result, use_shm), delta)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    conn.close()


def _rebuild_exc(blob: Optional[bytes], text: str) -> BaseException:
    """The worker's exception, restored (or wrapped when unpicklable)."""
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                return exc
        except Exception:
            pass
    return RuntimeError(f"warm-pool worker task failed: {text}")


class _Worker:
    """One warm worker: its process plus the parent end of its private
    duplex pipe and the ``(task_id, kind, payload)`` it currently holds
    (None when idle) — which is what makes crash resubmission exact."""

    def __init__(self, ctx, wid: int, use_shm: bool, stream: bool = False) -> None:
        self.wid = wid
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, use_shm, stream),
            daemon=True,
            name=f"repro-warm-{wid}",
        )
        self.proc.start()
        child_conn.close()  # the parent keeps only its own end
        self.task: Optional[Tuple[int, str, Any]] = None
        self.dispatched_at: float = 0.0

    def dispatch(self, gen: int, task: Tuple[int, str, Any]) -> None:
        task_id, kind, payload = task
        self.conn.send((gen, task_id, kind, payload))
        self.task = task
        self.dispatched_at = time.perf_counter()

    def discard(self) -> None:
        """Drop the parent-side handles (the process itself is managed
        by the caller: joined when dead, sentineled when live)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class WarmPool:
    """A persistent pool of warm worker processes (see module docs).

    Use as a context manager or call :meth:`close` explicitly; module
    users normally go through :func:`get_warm_pool`, which keeps one
    process-wide instance alive and registers an ``atexit`` teardown.
    """

    def __init__(
        self,
        jobs: int,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        from .executor import _pool_start_method

        self.jobs = int(jobs)
        self.start_method = start_method or _pool_start_method()
        self.use_shm = shm_available() if use_shm is None else bool(use_shm)
        self.idle_timeout_s = idle_timeout_s
        self._ctx = multiprocessing.get_context(self.start_method)
        self._workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        self._generation = 0
        self._last_used = time.monotonic()
        self._closed = False
        #: Lifetime totals, mirrored into instruments when provided.
        #: Keys come from the declared schema — the schema test asserts
        #: this dict and POOL_STATS can never drift apart.
        self.stats: Dict[str, int] = POOL_STATS.new_stats()
        #: Live-telemetry bus (``repro.obs.live.MetricsBus``); when
        #: attached, workers spawned afterwards stream per-task
        #: instrument deltas that the parent folds into the bus.
        self._bus = None

    def attach_bus(self, bus) -> None:
        """Arm worker stat streaming into ``bus`` for future spawns.

        Call before the first run (the sweep service does) so every
        worker streams; workers already alive keep their non-streaming
        loop until they are respawned or reaped.
        """
        self._bus = bus

    def _count(self, key: str, obs, amount: int = 1) -> None:
        """Bump a schema-declared stat and its mirrored counter."""
        self.stats[key] += amount
        obs.counter(POOL_STATS.counter_name(key)).inc(amount)

    def health(self) -> Dict[str, Any]:
        """Per-worker liveness rows plus pool-level totals, the
        substrate of the live plane's ``/healthz`` payload."""
        workers = [
            {
                "wid": w.wid,
                "pid": w.proc.pid,
                "alive": w.proc.is_alive(),
                "busy": w.task is not None,
            }
            for w in self._workers.values()
        ]
        return {
            "jobs": self.jobs,
            "workers_alive": self.workers_alive,
            "closed": self._closed,
            "streaming": self._bus is not None,
            "generation": self._generation,
            "respawns": self.stats["respawns"],
            "reaps": self.stats["reaps"],
            "workers": workers,
        }

    # -- lifecycle ----------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        wid = self._next_worker_id
        self._next_worker_id += 1
        worker = _Worker(self._ctx, wid, self.use_shm, stream=self._bus is not None)
        self._workers[wid] = worker
        return worker

    @property
    def healthy(self) -> bool:
        """Whether every worker slot holds a live process."""
        return (
            not self._closed
            and len(self._workers) == self.jobs
            and all(w.proc.is_alive() for w in self._workers.values())
        )

    @property
    def workers_alive(self) -> int:
        """Live worker count (0 when reaped or not yet started)."""
        return sum(w.proc.is_alive() for w in self._workers.values())

    def ping(self, instruments=None) -> List[int]:
        """Round-trip one no-op task per worker slot; returns the pids
        that answered.  Verifies the dispatch/result plumbing end to
        end (one task is outstanding per worker, so a full-strength
        pool answers with one pid per slot)."""
        pongs = self.run("ping", [None] * self.jobs, instruments=instruments)
        return sorted({pid for _tag, pid in pongs})

    def reap_if_idle(self, now: Optional[float] = None) -> bool:
        """Release the workers if the pool has been idle longer than
        ``idle_timeout_s``; the next run cold-starts transparently."""
        if self.idle_timeout_s is None or not self._workers:
            return False
        if (time.monotonic() if now is None else now) - self._last_used < self.idle_timeout_s:
            return False
        self._stop_workers()
        self._count("reaps", NULL_INSTRUMENTS)
        return True

    def _stop_workers(self) -> None:
        for worker in self._workers.values():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):  # already dead
                pass
        deadline = time.monotonic() + 5.0
        for worker in self._workers.values():
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():  # pragma: no cover - stuck worker
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            worker.discard()
        self._workers.clear()

    def close(self) -> None:
        """Stop every worker and release their pipes (idempotent)."""
        if self._closed:
            return
        self._stop_workers()
        self._closed = True

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- execution ----------------------------------------------------

    def run_iter(
        self,
        kind: str,
        payloads: Sequence[Any],
        instruments=None,
        weights: Optional[Sequence[int]] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Execute payloads on the pool, yielding ``(index, result)``
        in *completion* order.

        The parent keeps exactly one task outstanding per worker, so a
        dead worker's in-flight task is known precisely: it is requeued
        and the worker respawned (``pool.respawns``).  A task that
        *raises* (as opposed to the worker dying) propagates the
        worker's exception to the caller, and the pool stays usable —
        results of abandoned same-run tasks are discarded by generation
        on the next run.

        ``weights`` gives the number of *cells* each payload stands for
        (shape-batched executor payloads cover several sweep cells), so
        the ``tasks`` and ``warm_hits`` stats keep counting cells: a
        k-cell batch counts k, not 1.  Without weights the historical
        accounting holds — one task per payload, one warm hit per run.
        """
        if self._closed:
            raise RuntimeError("warm pool is closed")
        obs = NULL_INSTRUMENTS if instruments is None else instruments
        payloads = list(payloads)
        if weights is not None and len(weights) != len(payloads):
            raise ValueError("weights must align with payloads")
        self._generation += 1
        gen = self._generation
        self.reap_if_idle()
        for wid in [w for w, wk in self._workers.items() if not wk.proc.is_alive()]:
            worker = self._workers.pop(wid)
            worker.proc.join(timeout=0.1)
            worker.discard()
        if self._workers:
            warm_inc = int(sum(weights)) if weights is not None else 1
            self._count("warm_hits", obs, warm_inc)
        else:
            self._count("cold_starts", obs)
        while len(self._workers) < self.jobs:
            self._spawn_worker()
        #: Tasks not yet dispatched; a dispatch buffered behind a stale
        #: in-flight task just waits in that worker's pipe.
        backlog = deque(
            (task_id, kind, payload) for task_id, payload in enumerate(payloads)
        )
        remaining = len(payloads)
        run_t0 = time.perf_counter()
        h_wait = obs.histogram("pool.queue_wait_s", DEFAULT_LATENCY_BUCKETS)
        h_task = obs.histogram("pool.task_s", DEFAULT_LATENCY_BUCKETS)
        for worker in self._workers.values():
            worker.task = None  # anything older belongs to a dead generation
            if backlog:
                worker.dispatch(gen, backlog.popleft())
                h_wait.observe(worker.dispatched_at - run_t0)
        self._count(
            "tasks", obs, int(sum(weights)) if weights is not None else len(payloads)
        )
        depth = obs.gauge("pool.queue_depth")
        depth.set(remaining)
        try:
            while remaining:
                by_handle = {}
                for worker in self._workers.values():
                    by_handle[worker.conn] = worker
                    by_handle[worker.proc.sentinel] = worker
                ready = connection.wait(list(by_handle), timeout=_POLL_S)
                seen = set()
                for handle in ready:
                    worker = by_handle[handle]
                    if worker.wid in seen:  # conn and sentinel both tripped
                        continue
                    seen.add(worker.wid)
                    # Results buffered before a crash are still readable:
                    # drain the pipe first, replace only a silent corpse.
                    if worker.conn.poll():
                        try:
                            msg = worker.conn.recv()
                        except (EOFError, OSError):
                            self._replace(worker, backlog, gen, obs, run_t0, h_wait)
                            continue
                        for item in self._consume(
                            worker, msg, gen, backlog, obs, run_t0, h_wait, h_task
                        ):
                            remaining -= 1
                            depth.set(remaining)
                            yield item
                    elif not worker.proc.is_alive():
                        self._replace(worker, backlog, gen, obs, run_t0, h_wait)
        finally:
            self._last_used = time.monotonic()

    def _consume(
        self,
        worker: _Worker,
        msg: Tuple[Any, ...],
        gen: int,
        backlog,
        obs,
        run_t0: float,
        h_wait,
        h_task,
    ) -> Iterator[Tuple[int, Any]]:
        """Process one message off a worker's pipe; yields a completed
        ``(task_id, result)`` when the message belongs to this run."""
        tag, mgen = msg[0], msg[1]
        if mgen != gen:  # abandoned task from an aborted earlier run
            if tag == "done":
                _discard(msg[3])
            return
        if self._bus is not None:
            self._bus.absorb(msg[-1], worker.wid)
        if tag == "done":
            _, _, task_id, shipped, _delta = msg
            h_task.observe(time.perf_counter() - worker.dispatched_at)
            worker.task = None
            if backlog:
                worker.dispatch(gen, backlog.popleft())
                h_wait.observe(worker.dispatched_at - run_t0)
            result, shm_bytes = _unship(shipped)
            if shm_bytes:
                self._count("shm_bytes", obs, shm_bytes)
            yield task_id, result
        else:  # "error"
            _, _, task_id, blob, text, _delta = msg
            worker.task = None
            raise _rebuild_exc(blob, text)

    def _replace(self, worker: _Worker, backlog, gen: int, obs, run_t0: float, h_wait) -> None:
        """Respawn a crashed worker; its in-flight task goes back to
        the front of the backlog and is redispatched immediately."""
        self._workers.pop(worker.wid, None)
        worker.proc.join(timeout=0.1)
        lost = worker.task
        worker.discard()
        replacement = self._spawn_worker()
        self._count("respawns", obs)
        if lost is not None:
            backlog.appendleft(lost)
        if backlog:
            replacement.dispatch(gen, backlog.popleft())
            h_wait.observe(replacement.dispatched_at - run_t0)

    def run(
        self,
        kind: str,
        payloads: Sequence[Any],
        instruments=None,
        weights: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Execute payloads and return results in payload order —
        drop-in for ``multiprocessing.Pool.map`` over the same worker
        function."""
        payloads = list(payloads)
        out: List[Any] = [None] * len(payloads)
        for index, result in self.run_iter(
            kind, payloads, instruments=instruments, weights=weights
        ):
            out[index] = result
        return out


_default_pool: Optional[WarmPool] = None
_atexit_registered = False


def get_warm_pool(
    jobs: int,
    start_method: Optional[str] = None,
    idle_timeout_s: Optional[float] = None,
) -> WarmPool:
    """The process-wide shared warm pool, created (or re-sized) on
    demand.

    Reuses the existing pool when ``jobs`` and the start method match;
    a different shape closes the old pool and starts fresh.  The first
    call registers an ``atexit`` teardown, so library users never leak
    worker processes.
    """
    global _default_pool, _atexit_registered
    from .executor import _pool_start_method

    method = start_method or _pool_start_method()
    pool = _default_pool
    if (
        pool is not None
        and not pool._closed
        and pool.jobs == jobs
        and pool.start_method == method
    ):
        return pool
    if pool is not None:
        pool.close()
    _default_pool = WarmPool(jobs, start_method=method, idle_timeout_s=idle_timeout_s)
    if not _atexit_registered:
        atexit.register(shutdown_warm_pool)
        _atexit_registered = True
    return _default_pool


def shutdown_warm_pool() -> None:
    """Close the shared warm pool, if one exists (idempotent)."""
    global _default_pool
    if _default_pool is not None:
        _default_pool.close()
        _default_pool = None
