"""Black-box flight recorder: bounded event records + postmortem bundles.

A :class:`BlackBoxRecorder` keeps the last N per-event records of a run
(state digests, RNG digests, component decisions fed in through
:meth:`~BlackBoxRecorder.note`) in a bounded ring buffer, plus a short
deque of full-state checkpoints captured by the simulation layer.  On a
monitor violation, an unhandled exception, or an explicit request, the
recorder flushes a self-contained *postmortem bundle* to disk: the
config, a manifest with engine provenance, the surviving records, the
retained checkpoints, and any spans/instruments the caller hands over.

``repro postmortem <bundle>`` renders the bundle as an incident report
(:func:`format_postmortem`); ``repro replay <bundle>`` restores the
nearest checkpoint and re-executes deterministically
(:mod:`repro.sim.replay`), diffing replayed state digests against the
recorded ones.

This module follows the layering rule of the package: it never imports
:mod:`repro.sim`.  Records and checkpoints are opaque dicts; the
simulation side (``repro.sim.replay``) owns their schema.  The default
:data:`NULL_BLACKBOX` mirrors ``NullInstruments``/``NullTracer``: one
``enabled`` attribute load is the entire disabled-path cost.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

import numpy as np

from ..utils.tables import format_table
from .manifest import config_digest

__all__ = [
    "BUNDLE_MANIFEST_FILENAME",
    "BlackBoxRecorder",
    "NULL_BLACKBOX",
    "NullBlackBox",
    "PostmortemBundle",
    "blackbox_enabled",
    "checkpoint_interval_default",
    "digest_array",
    "digest_fields",
    "digest_rng",
    "digest_state",
    "format_postmortem",
    "load_bundle",
    "ring_capacity_default",
]

#: Manifest file at the root of every postmortem bundle.
BUNDLE_MANIFEST_FILENAME = "blackbox.json"
RECORDS_FILENAME = "records.jsonl"
CHECKPOINT_DIRNAME = "checkpoints"
BUNDLE_FORMAT = 1


def blackbox_enabled() -> bool:
    """``REPRO_BLACKBOX=1``: record flight data (default: off)."""
    return os.environ.get("REPRO_BLACKBOX", "") not in ("", "0")


def ring_capacity_default() -> int:
    """Ring size from ``REPRO_BLACKBOX_TICKS`` (default 256 records)."""
    return int(os.environ.get("REPRO_BLACKBOX_TICKS", "256"))


def checkpoint_interval_default() -> int:
    """Checkpoint cadence, in tick records, from
    ``REPRO_BLACKBOX_CHECKPOINT`` (default every 64; 0 disables)."""
    return int(os.environ.get("REPRO_BLACKBOX_CHECKPOINT", "64"))


# ---------------------------------------------------------------------------
# digests
# ---------------------------------------------------------------------------


def digest_array(value: Any) -> str:
    """SHA-256 over an array's dtype, shape and raw bytes.

    Two arrays share a digest iff they are bit-identical with the same
    dtype and shape — the equality surface of the SoA/reference engine
    contract, collapsed to one comparable string.
    """
    a = np.ascontiguousarray(value)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def digest_fields(snapshot: Dict[str, Any]) -> str:
    """One combined digest over a snapshot dict, name-sorted.

    A single hasher fed every field's name, dtype, shape and raw bytes
    — the per-event hot path of the flight recorder, an order of
    magnitude cheaper than hashing each field separately.  The value
    equals ``digest_state(snapshot)["state"]`` by construction.
    """
    h = hashlib.sha256()
    for key in sorted(snapshot):
        a = np.asarray(snapshot[key])
        h.update(key.encode())
        h.update(a.dtype.str.encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def digest_state(snapshot: Dict[str, Any]) -> Dict[str, str]:
    """Per-field digests of a ``snapshot_arrays``-style dict, plus the
    combined ``state`` digest of :func:`digest_fields`.

    Field-level granularity is what makes replay divergence reports
    actionable: a mismatch names the exact array that drifted.
    """
    digests = {key: digest_array(snapshot[key]) for key in sorted(snapshot)}
    digests["state"] = digest_fields(snapshot)
    return digests


def digest_rng(state: Dict[str, Any]) -> str:
    """SHA-256 over a generator's ``bit_generator.state`` dict."""
    inner = state.get("state") if isinstance(state, dict) else None
    if isinstance(inner, dict) and all(
        type(v) is int for v in inner.values()
    ):
        # The PCG64-family layout (plain-int state words), formatted
        # directly — several times cheaper than a canonical JSON dump
        # on the per-event path.  Bit generators whose state holds
        # arrays (MT19937) take the JSON route below.
        payload = "|".join(f"{k}:{inner[k]}" for k in sorted(inner)) + (
            f"|{state.get('bit_generator')}"
            f"|{state.get('has_uint32')}|{state.get('uinteger')}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()
    return hashlib.sha256(
        json.dumps(state, sort_keys=True, default=int).encode()
    ).hexdigest()


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays so records serialize as plain JSON."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


# ---------------------------------------------------------------------------
# the recorder
# ---------------------------------------------------------------------------


class BlackBoxRecorder:
    """Bounded flight recorder for one run.

    Args:
        capacity: ring size in records (``REPRO_BLACKBOX_TICKS``
            otherwise).  Older records are evicted silently.
        checkpoint_every: take a full-state checkpoint every this many
            *tick* records (``REPRO_BLACKBOX_CHECKPOINT`` otherwise;
            ``0`` disables checkpointing — replay then starts from
            genesis).
        max_checkpoints: checkpoints retained in memory; older ones are
            dropped, keeping flush cost and bundle size bounded.

    Records are opaque dicts with a monotone ``seq`` assigned here; the
    simulation layer decides what goes in them (state digests, RNG
    digests, per-component notes).  Everything stays in memory until
    :meth:`flush` — the recorder never touches disk mid-run, which is
    what keeps the enabled-path overhead in budget.
    """

    enabled = True

    def __init__(
        self,
        capacity: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        max_checkpoints: int = 4,
    ) -> None:
        self.capacity = int(capacity) if capacity is not None else ring_capacity_default()
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.checkpoint_every = (
            int(checkpoint_every)
            if checkpoint_every is not None
            else checkpoint_interval_default()
        )
        self.seq = 0
        self._ring: deque = deque(maxlen=self.capacity)
        self._pending: Dict[str, Any] = {}
        self.checkpoints: deque = deque(maxlen=max(1, int(max_checkpoints)))
        self._last_checkpoint_seq = 0
        self.violations: List[Dict[str, Any]] = []

    # -- feeding ------------------------------------------------------

    def note(self, key: str, value: Any) -> None:
        """Attach ``key=value`` to the *next* record.

        Components call this at decision points (ERC releases, dispatch
        plans, relocations); the accumulated notes are merged into the
        next :meth:`record` and cleared.
        """
        self._pending[key] = value

    def note_violation(self, record: Dict[str, Any]) -> None:
        """Register a monitor violation (kept for the bundle manifest
        and attached to the next record)."""
        self.violations.append(dict(record))
        self._pending.setdefault("violations", []).append(dict(record))

    def record(
        self,
        kind: str,
        t: float,
        digests: Dict[str, str],
        rng: Optional[str] = None,
        **attrs: Any,
    ) -> int:
        """Append one event record; returns its sequence number.

        ``kind`` names the periodic event (``tick`` / ``dispatch`` /
        ``relocate``; replay also appends ``abort``), ``digests`` is a
        :func:`digest_state` dict, ``rng`` a :func:`digest_rng` string.
        Pending :meth:`note` attributes are merged in and cleared.
        """
        self.seq += 1
        row: Dict[str, Any] = {
            "seq": self.seq,
            "kind": kind,
            "t": float(t),
            "digests": dict(digests),
        }
        if rng is not None:
            row["rng"] = rng
        if self._pending:
            for key, value in self._pending.items():
                row.setdefault(key, value)
            self._pending.clear()
        row.update(attrs)
        self._ring.append(row)
        return self.seq

    # -- checkpoints ---------------------------------------------------

    def should_checkpoint(self) -> bool:
        """True when the checkpoint cadence elapsed since the last one."""
        if self.checkpoint_every <= 0:
            return False
        return self.seq - self._last_checkpoint_seq >= self.checkpoint_every

    def add_checkpoint(self, checkpoint: Dict[str, Any]) -> None:
        """Retain a full-state checkpoint (an opaque dict with ``seq``,
        ``t``, an ``arrays`` dict of numpy arrays and a JSON-friendly
        ``scalars`` dict — see :mod:`repro.sim.replay`)."""
        self.checkpoints.append(checkpoint)
        self._last_checkpoint_seq = int(checkpoint.get("seq", self.seq))

    # -- reading -------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """The surviving records, oldest first."""
        return list(self._ring)

    # -- flushing ------------------------------------------------------

    def flush(
        self,
        directory: Union[str, Path],
        *,
        reason: str,
        config: Optional[Dict[str, Any]] = None,
        engine: Optional[Dict[str, Any]] = None,
        monitors: Optional[Dict[str, Any]] = None,
        spans: Any = None,
        instruments: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        final_record: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write a self-contained postmortem bundle to ``directory``.

        Args:
            reason: why the bundle exists (``exception``, ``violation``,
                ``requested``).
            config: ``config_to_dict`` output (serialized verbatim and
                digest-stamped into the manifest).
            engine: ``engine_provenance()`` dict.
            monitors: monitor configuration (strictness + tolerances) so
                replay can arm identical tripwires.
            spans: a tracer with ``to_jsonl_lines()`` (or an iterable of
                pre-serialized lines) for ``spans.jsonl``.
            instruments: an instruments snapshot dict.
            error: stringified exception, if the run died.
            final_record: an extra record appended after the ring (the
                ``abort`` record digesting state at the failure point).

        Returns the bundle directory path.
        """
        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        records = self.rows()
        if final_record is not None:
            records = records + [dict(final_record)]
        with open(out / RECORDS_FILENAME, "w") as f:
            for row in records:
                f.write(json.dumps(row, default=_json_safe) + "\n")
        ckpt_index: List[Dict[str, Any]] = []
        if self.checkpoints:
            ckpt_dir = out / CHECKPOINT_DIRNAME
            ckpt_dir.mkdir(exist_ok=True)
            for ckpt in self.checkpoints:
                seq = int(ckpt["seq"])
                stem = f"ckpt_{seq:08d}"
                np.savez(ckpt_dir / f"{stem}.npz", **ckpt["arrays"])
                (ckpt_dir / f"{stem}.json").write_text(
                    json.dumps(ckpt["scalars"], default=_json_safe)
                )
                ckpt_index.append({
                    "seq": seq,
                    "t": float(ckpt["t"]),
                    "arrays": f"{CHECKPOINT_DIRNAME}/{stem}.npz",
                    "scalars": f"{CHECKPOINT_DIRNAME}/{stem}.json",
                })
        if config is not None:
            (out / "config.json").write_text(json.dumps(config, indent=2))
        if spans is not None:
            lines = (
                spans.to_jsonl_lines() if hasattr(spans, "to_jsonl_lines") else spans
            )
            lines = list(lines)
            if lines:
                (out / "spans.jsonl").write_text("\n".join(lines) + "\n")
        if instruments is not None:
            (out / "instruments.json").write_text(
                json.dumps(instruments, indent=2, default=_json_safe)
            )
        manifest = {
            "format": BUNDLE_FORMAT,
            "reason": reason,
            "created_utc": datetime.now(timezone.utc).isoformat(),
            "error": error,
            "seq": self.seq,
            "capacity": self.capacity,
            "checkpoint_every": self.checkpoint_every,
            "records": len(records),
            "first_seq": int(records[0]["seq"]) if records else 0,
            "last_seq": int(records[-1]["seq"]) if records else 0,
            "engine": engine or {},
            "monitors": monitors or {},
            "config_digest": config_digest(config) if config is not None else None,
            "seed": (config or {}).get("seed"),
            "violations": [
                {k: _coerce(v) for k, v in rec.items()} for rec in self.violations
            ],
            "checkpoints": ckpt_index,
        }
        (out / BUNDLE_MANIFEST_FILENAME).write_text(
            json.dumps(manifest, indent=2, default=_json_safe)
        )
        return out


def _coerce(value: Any) -> Any:
    """Best-effort plain-python view of a violation attribute."""
    try:
        json.dumps(value)
        return value
    except TypeError:
        try:
            return _json_safe(value)
        except TypeError:
            return str(value)


class NullBlackBox:
    """The zero-overhead default (mirrors ``NullInstruments``).

    ``enabled`` is False; components guard every recording touch point
    on it, so the disabled path costs one attribute load.  The methods
    remain callable no-ops for defensive call sites.
    """

    enabled = False
    seq = 0
    capacity = 0
    checkpoint_every = 0
    checkpoints: Iterable[Dict[str, Any]] = ()
    violations: Iterable[Dict[str, Any]] = ()

    def note(self, key: str, value: Any) -> None:
        pass

    def note_violation(self, record: Dict[str, Any]) -> None:
        pass

    def record(self, *args: Any, **kwargs: Any) -> int:
        return 0

    def should_checkpoint(self) -> bool:
        return False

    def add_checkpoint(self, checkpoint: Dict[str, Any]) -> None:
        pass

    def rows(self) -> List[Dict[str, Any]]:
        return []

    def flush(self, *args: Any, **kwargs: Any) -> Path:
        raise RuntimeError("the black box is disabled; nothing to flush")


#: Shared stateless instance — the default wherever no recorder is wired.
NULL_BLACKBOX = NullBlackBox()


# ---------------------------------------------------------------------------
# bundles on disk
# ---------------------------------------------------------------------------


@dataclass
class PostmortemBundle:
    """One postmortem bundle read back from disk.

    Attributes:
        path: the bundle directory.
        manifest: the ``blackbox.json`` dict.
        records: the flight records, oldest first.
        config: the archived ``config.json`` dict (None if absent).
        checkpoints: restored checkpoint dicts (``seq``, ``t``,
            ``arrays`` of numpy arrays, ``scalars``), ascending by seq.
    """

    path: Path
    manifest: Dict[str, Any]
    records: List[Dict[str, Any]] = field(default_factory=list)
    config: Optional[Dict[str, Any]] = None
    checkpoints: List[Dict[str, Any]] = field(default_factory=list)


def load_bundle(path: Union[str, Path]) -> PostmortemBundle:
    """Read a postmortem bundle directory back into memory.

    Raises ``FileNotFoundError`` when ``path`` holds no
    ``blackbox.json`` manifest.
    """
    root = Path(path)
    manifest_path = root / BUNDLE_MANIFEST_FILENAME
    if not manifest_path.is_file():
        raise FileNotFoundError(
            f"no {BUNDLE_MANIFEST_FILENAME} under {root} "
            "(not a postmortem bundle?)"
        )
    manifest = json.loads(manifest_path.read_text())
    records: List[Dict[str, Any]] = []
    records_path = root / RECORDS_FILENAME
    if records_path.is_file():
        for line in records_path.read_text().splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
    config = None
    config_path = root / "config.json"
    if config_path.is_file():
        config = json.loads(config_path.read_text())
    checkpoints: List[Dict[str, Any]] = []
    for entry in manifest.get("checkpoints", []):
        npz_path = root / entry["arrays"]
        scalars_path = root / entry["scalars"]
        if not (npz_path.is_file() and scalars_path.is_file()):
            continue
        with np.load(npz_path) as npz:
            arrays = {key: npz[key] for key in npz.files}
        checkpoints.append({
            "seq": int(entry["seq"]),
            "t": float(entry["t"]),
            "arrays": arrays,
            "scalars": json.loads(scalars_path.read_text()),
        })
    checkpoints.sort(key=lambda c: c["seq"])
    return PostmortemBundle(
        path=root, manifest=manifest, records=records, config=config,
        checkpoints=checkpoints,
    )


# ---------------------------------------------------------------------------
# the incident report
# ---------------------------------------------------------------------------

#: Record keys rendered in their own columns (everything else is a note).
_CORE_KEYS = frozenset({"seq", "kind", "t", "digests", "rng"})


def format_postmortem(
    bundle: PostmortemBundle, max_records: int = 12
) -> str:
    """Render a bundle as a human-readable incident report."""
    m = bundle.manifest
    blocks: List[str] = []
    engine = m.get("engine") or {}
    header = [
        ["reason", m.get("reason", "?")],
        ["created (UTC)", m.get("created_utc", "?")],
        ["seed", m.get("seed", "?")],
        ["config digest", (m.get("config_digest") or "(none)")[:16]],
        ["engine", ", ".join(f"{k}={v}" for k, v in sorted(engine.items())) or "?"],
        ["records kept", f"{m.get('records', 0)} (ring capacity {m.get('capacity', '?')})"],
        ["event range", f"seq {m.get('first_seq', 0)}..{m.get('last_seq', 0)}"],
        ["checkpoints", len(m.get("checkpoints", []))],
    ]
    error = m.get("error")
    if error:
        # Keep the header table narrow; the full text follows below.
        header.append(["error", error[:100] + ("..." if len(error) > 100 else "")])
    blocks.append(format_table(
        ["field", "value"], header,
        title=f"Postmortem bundle: {bundle.path}",
    ))
    if error and len(error) > 100:
        blocks.append("Full error:\n  " + error)

    violations = m.get("violations") or []
    if violations:
        rows = [
            [v.get("invariant", "?"), f"{v.get('t', 0.0):.1f}",
             str(v.get("message", ""))[:90]]
            for v in violations[:10]
        ]
        blocks.append(format_table(
            ["invariant", "t (s)", "message"], rows,
            title=f"Monitor violations ({len(violations)} total)",
        ))

    if bundle.records:
        tail = bundle.records[-max_records:]
        rows = []
        for rec in tail:
            notes = ", ".join(
                f"{k}={_summ(v)}" for k, v in rec.items() if k not in _CORE_KEYS
            )
            rows.append([
                rec.get("seq", "?"),
                rec.get("kind", "?"),
                f"{rec.get('t', 0.0):.1f}",
                (rec.get("digests", {}).get("state") or "?")[:12],
                (rec.get("rng") or "?")[:12],
                notes[:60],
            ])
        blocks.append(format_table(
            ["seq", "kind", "t (s)", "state digest", "rng digest", "notes"],
            rows, title=f"Last {len(tail)} flight record(s)",
        ))

    if m.get("checkpoints"):
        lines = [
            f"  seq {c['seq']} at t={c['t']:.1f}s ({c['arrays']})"
            for c in m["checkpoints"]
        ]
        blocks.append("Checkpoints (replay starting points):\n" + "\n".join(lines))

    spans_path = bundle.path / "spans.jsonl"
    if spans_path.is_file():
        from .spans import load_spans, render_span_tree

        spans = load_spans(spans_path, strict=False)
        if spans:
            blocks.append(
                f"Span tree ({len(spans)} span(s)):\n" + render_span_tree(spans)
            )

    replay_hint = (
        f"Replay: repro replay {bundle.path} --to-tick "
        f"{m.get('last_seq', 0)} [--engine soa|ref]"
    )
    blocks.append(replay_hint)
    return "\n\n".join(blocks)


def _summ(value: Any) -> str:
    """Compact value rendering for the notes column."""
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return f"[{len(value)}]"
    return str(value)
