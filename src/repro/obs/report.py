"""Human-readable reports over an archived telemetry directory.

``repro report DIR`` renders what :func:`repro.sim.runner.run_with_telemetry`
wrote: the manifest's provenance block, the headline summary metrics,
the phase timers and the busiest counters, plus event counts from
``events.jsonl`` when the JSONL exporter ran.  Everything is read back
from disk — reporting needs no simulation objects, so it works on
directories produced by other machines (or other versions).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..utils.tables import format_table
from .manifest import RunManifest
from .spans import load_spans, render_span_tree

__all__ = ["load_report", "format_report"]


def load_report(directory: Union[str, Path]) -> Dict[str, Any]:
    """Collect the report inputs from a telemetry directory.

    Returns a dict with the ``manifest`` (a :class:`RunManifest`) and,
    when present, ``event_counts`` / ``sample_counts`` aggregated from
    ``events.jsonl`` and the raw ``spans`` rows from ``spans.jsonl``.
    Raises ``FileNotFoundError`` if the directory has no manifest.

    An archived directory that lost files (partial copy, interrupted
    run, pruned exports) still reports: missing or truncated telemetry
    files are skipped and listed under ``"missing"`` instead of
    raising.
    """
    directory = Path(directory)
    manifest = RunManifest.load(directory)
    out: Dict[str, Any] = {"manifest": manifest, "directory": directory}
    missing: List[str] = sorted(
        {
            name
            for names in manifest.files.values()
            for name in names
            if not (directory / name).is_file()
        }
    )
    spans_path = directory / "spans.jsonl"
    if spans_path.is_file():
        # Tolerant parse: a crashed run's final line is often truncated
        # mid-write, and a postmortem reader wants the surviving spans.
        out["spans"] = load_spans(spans_path, strict=False)
    events_path = directory / "events.jsonl"
    if events_path.is_file():
        event_counts: Dict[str, int] = {}
        sample_counts: Dict[str, int] = {}
        with open(events_path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if record.get("type") == "event":
                    kind = record.get("kind", "?")
                    event_counts[kind] = event_counts.get(kind, 0) + 1
                elif record.get("type") == "sample":
                    name = record.get("series", "?")
                    sample_counts[name] = sample_counts.get(name, 0) + 1
        out["event_counts"] = event_counts
        out["sample_counts"] = sample_counts
    if missing:
        out["missing"] = missing
    return out


def format_report(data: Dict[str, Any]) -> str:
    """Render :func:`load_report` output as aligned ASCII tables."""
    manifest: RunManifest = data["manifest"]
    blocks: List[str] = []

    provenance = [
        ["created (UTC)", manifest.created_utc],
        ["repro version", manifest.repro_version],
        ["git revision", manifest.git_rev or "(unknown)"],
        ["seed", manifest.seed],
        ["config digest", manifest.config_digest[:16] + "..."],
        ["scheduler", str(manifest.config.get("scheduler", "?"))],
        ["activation", str(manifest.config.get("activation", "?"))],
        ["wall time (s)", manifest.wall_time_s],
        ["exporters", ", ".join(manifest.exporters) or "(none)"],
    ]
    blocks.append(format_table(["run", "value"], provenance, precision=3,
                               title=f"Telemetry report: {data['directory']}"))

    if manifest.summary:
        rows = [[k, v] for k, v in manifest.summary.items()]
        blocks.append(format_table(["summary metric", "value"], rows, precision=4))

    timers = manifest.instruments.get("timers", {})
    if timers:
        rows = [
            [name, s["count"], s["total_s"], s["mean_s"] * 1e3, s["max_s"] * 1e3]
            for name, s in sorted(
                timers.items(), key=lambda kv: kv[1]["total_s"], reverse=True
            )
        ]
        blocks.append(format_table(
            ["phase timer", "calls", "total s", "mean ms", "max ms"],
            rows, precision=4, title="Phase timings (heaviest first)",
        ))

    counters = manifest.instruments.get("counters", {})
    if counters:
        rows = [[name, value] for name, value in counters.items()]
        blocks.append(format_table(["counter", "total"], rows, precision=2))

    histograms = manifest.instruments.get("histograms", {})
    if histograms:
        rows = [
            [name, s["count"], s["mean"], s["min"], s["max"]]
            for name, s in histograms.items()
        ]
        blocks.append(format_table(
            ["histogram", "n", "mean", "min", "max"], rows, precision=3,
        ))

    if data.get("event_counts"):
        rows = sorted(data["event_counts"].items(), key=lambda kv: -kv[1])
        blocks.append(format_table(["trace event", "count"], rows,
                                   title="events.jsonl"))

    if data.get("spans"):
        spans = data["spans"]
        blocks.append(
            f"Span tree ({len(spans)} span(s), spans.jsonl; "
            "name x count, wall-clock total):\n"
            + render_span_tree(spans)
        )

    if data.get("missing"):
        blocks.append(
            "WARNING: manifest lists files missing from the archive "
            "(partial copy?): " + ", ".join(data["missing"])
        )

    return "\n\n".join(blocks)
