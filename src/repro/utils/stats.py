"""Statistics helpers for seed-averaged experiments.

The paper reports single curves; a reproduction should also say how
stable they are across seeds.  These helpers compute per-metric means,
standard deviations and Student-t confidence intervals from a batch of
:class:`~repro.sim.metrics.SimulationSummary` objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np
from scipy import stats as sps

__all__ = ["mean_std", "t_confidence_interval", "summarize_runs"]


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation.

    A single observation has zero deviation by convention.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1))


def t_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Two-sided Student-t confidence interval for the mean.

    Returns ``(low, high)``; degenerate (point) interval for a single
    observation.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values")
    m = float(arr.mean())
    if arr.size == 1:
        return m, m
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    if sem == 0.0:
        return m, m
    half = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1)) * sem
    return m - half, m + half


def summarize_runs(
    summaries: Iterable, confidence: float = 0.95
) -> Dict[str, Dict[str, float]]:
    """Per-metric statistics over several simulation summaries.

    Returns ``{metric: {mean, std, ci_low, ci_high, n}}``.
    """
    dicts = [s.as_dict() for s in summaries]
    if not dicts:
        raise ValueError("no summaries")
    out: Dict[str, Dict[str, float]] = {}
    for key in dicts[0]:
        values = [d[key] for d in dicts]
        m, s = mean_std(values)
        lo, hi = t_confidence_interval(values, confidence)
        out[key] = {"mean": m, "std": s, "ci_low": lo, "ci_high": hi, "n": float(len(values))}
    return out
