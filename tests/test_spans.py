"""Tests for repro.obs.spans: the hierarchical flight-recorder tracer.

Covers the tracer's parent/child bookkeeping, the byte-exact JSONL
round trip, the process-pool absorb/merge path (jobs=1 vs jobs=4 must
produce structurally identical traces), the null fast path, and the
report-side tree renderer.
"""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    load_spans,
    render_span_tree,
    spans_to_jsonl_lines,
)
from repro.experiments.executor import map_configs
from repro.sim.config import DAY_S, SimulationConfig

TINY = dict(
    n_sensors=30,
    n_targets=2,
    n_rvs=1,
    side_length_m=50.0,
    sim_time_s=0.05 * DAY_S,
    battery_capacity_j=400.0,
    initial_charge_range=(0.5, 0.8),
    dispatch_period_s=1800.0,
    seed=11,
)


def tiny_config(**overrides):
    params = dict(TINY)
    params.update(overrides)
    return SimulationConfig(**params)


class TestSpanTracer:
    def test_parent_child_ids(self):
        tr = SpanTracer()
        with tr.span("run") as run:
            with tr.span("tick") as tick:
                with tr.span("energy.advance") as adv:
                    pass
            with tr.span("tick") as tick2:
                pass
        rows = tr.to_rows()
        assert [r["id"] for r in rows] == [1, 2, 3, 4]
        assert [r["parent"] for r in rows] == [None, 1, 2, 1]
        assert run.span_id == 1 and tick.span_id == 2
        assert adv.parent_id == tick.span_id
        assert tick2.parent_id == run.span_id

    def test_timing_is_nested(self):
        tr = SpanTracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert outer.t0 <= inner.t0 <= inner.t1 <= outer.t1
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_attrs_and_events(self):
        tr = SpanTracer()
        with tr.span("dispatch", backlog=3) as sp:
            sp.set(plans=2, profit_j=1.5)
            tr.event("sortie.assigned", rv_id=0, clusters=(1, 2))
        row = tr.to_rows()[0]
        assert row["attrs"] == {"backlog": 3, "plans": 2, "profit_j": 1.5}
        (ev,) = row["events"]
        assert ev["name"] == "sortie.assigned"
        assert ev["rv_id"] == 0
        assert ev["clusters"] == [1, 2]  # tuples coerce at record time

    def test_event_without_open_span_is_dropped(self):
        tr = SpanTracer()
        tr.event("orphan")
        assert len(tr) == 0
        assert tr.current is None

    def test_attrs_json_safe_coercion(self):
        np = pytest.importorskip("numpy")
        tr = SpanTracer()
        with tr.span("s", n=np.int64(4), x=np.float64(0.5), seq=(1, np.int32(2))):
            pass
        attrs = tr.to_rows()[0]["attrs"]
        assert attrs == {"n": 4, "x": 0.5, "seq": [1, 2]}
        assert type(attrs["n"]) is int and type(attrs["x"]) is float
        json.dumps(attrs)

    def test_jsonl_round_trip_byte_identical(self, tmp_path):
        tr = SpanTracer()
        with tr.span("run", seed=3):
            with tr.span("tick", t=0.25) as sp:
                sp.event("invariant.violation", invariant="x", t_sim=0.25)
        path = tmp_path / "spans.jsonl"
        tr.write_jsonl(path)
        original = path.read_text()
        loaded = load_spans(path)
        assert loaded == tr.to_rows()
        assert "\n".join(spans_to_jsonl_lines(loaded)) + "\n" == original

    def test_load_spans_from_lines_and_fileobj(self, tmp_path):
        tr = SpanTracer()
        with tr.span("a"):
            pass
        lines = tr.to_jsonl_lines()
        assert load_spans(lines) == tr.to_rows()
        path = tmp_path / "s.jsonl"
        tr.write_jsonl(path)
        with open(path) as f:
            assert load_spans(f) == tr.to_rows()

    def test_absorb_renumbers_and_reroots(self):
        worker = SpanTracer()
        with worker.span("run", seed=9):
            with worker.span("tick"):
                pass
        parent = SpanTracer()
        with parent.span("executor.map") as sweep:
            parent.absorb(worker.to_rows(), parent=sweep,
                          root_attrs={"cell": 0, "cache": "miss"})
        rows = parent.to_rows()
        assert [(r["id"], r["parent"], r["name"]) for r in rows] == [
            (1, None, "executor.map"),
            (2, 1, "run"),
            (3, 2, "tick"),
        ]
        assert rows[1]["attrs"] == {"seed": 9, "cell": 0, "cache": "miss"}
        assert rows[2]["attrs"] == {}

    def test_absorb_without_parent_keeps_roots(self):
        worker = SpanTracer()
        with worker.span("run"):
            pass
        tr = SpanTracer()
        tr.absorb(worker.to_rows())
        assert tr.to_rows()[0]["parent"] is None


class TestNullTracer:
    def test_noop_surface(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("x", a=1) as sp:
            sp.set(b=2)
            sp.event("e")
        null.event("e")
        assert null.to_rows() == []
        assert null.to_jsonl_lines() == []
        assert null.absorb([{"id": 1, "name": "x"}]) == []
        assert len(null) == 0
        assert null.current is None

    def test_shared_singleton_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_write_jsonl_writes_nothing(self, tmp_path):
        path = tmp_path / "never.jsonl"
        NULL_TRACER.write_jsonl(path)
        assert not path.exists()


class TestRenderTree:
    def test_empty(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_aggregates_siblings_by_name(self):
        tr = SpanTracer()
        with tr.span("run"):
            for t in (0.0, 1.0, 2.0):
                with tr.span("tick", t=t) as sp:
                    sp.event("beat")
                    with tr.span("energy.advance"):
                        pass
        text = render_span_tree(tr.to_rows())
        lines = text.splitlines()
        assert lines[0].startswith("`- run  x1")
        assert any("tick  x3" in line and "[3 event(s)]" in line for line in lines)
        assert any("energy.advance  x3" in line for line in lines)

    def test_max_depth_truncates(self):
        tr = SpanTracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    pass
        text = render_span_tree(tr.to_rows(), max_depth=2)
        assert "b" in text and "c" not in text


class TestSpanTimerAgreement:
    """Phase span totals must agree with the aggregate PhaseTimers."""

    def test_phase_totals_and_counts_match(self):
        from repro.obs import Instruments
        from repro.sim.world import World

        obs = Instruments()
        sp = SpanTracer()
        World(tiny_config(sim_time_s=0.1 * DAY_S), instruments=obs,
              spans=sp).run()
        timers = obs.snapshot()["timers"]
        rows = sp.to_rows()
        for phase in ("energy.advance", "energy.recompute", "clusters.rebuild",
                      "gate.check", "fleet.dispatch", "scheduler.assign"):
            spans = [r for r in rows if r["name"] == phase]
            assert len(spans) == timers[phase]["count"], phase
            span_total = sum(r["t1"] - r["t0"] for r in spans)
            # Each span opens inside its timer, so the span total is a
            # hair smaller; the gap is per-entry bookkeeping overhead.
            assert span_total <= timers[phase]["total_s"] + 1e-6, phase
            assert span_total == pytest.approx(
                timers[phase]["total_s"], rel=0.5, abs=5e-3
            ), phase

    def test_run_span_covers_whole_run(self):
        from repro.obs import Instruments
        from repro.sim.world import World

        obs = Instruments()
        sp = SpanTracer()
        World(tiny_config(), instruments=obs, spans=sp).run()
        (run_row,) = [r for r in sp.to_rows() if r["name"] == "run"]
        run_s = run_row["t1"] - run_row["t0"]
        assert run_s <= obs.snapshot()["timers"]["world.run"]["total_s"] + 1e-6
        # Child phases nest inside the run span.
        for r in sp.to_rows():
            if r["parent"] == run_row["id"]:
                assert run_row["t0"] <= r["t0"] <= r["t1"] <= run_row["t1"]


def _structure(rows):
    return [(r["id"], r["parent"], r["name"]) for r in rows]


class TestExecutorSpanMerge:
    """`--jobs N` traces must read exactly like the serial one."""

    def configs(self):
        return [tiny_config(seed=s) for s in (1, 2, 3)]

    def test_jobs1_vs_jobs4_identical_structure(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        sp1 = SpanTracer()
        serial = map_configs(self.configs(), jobs=1, spans=sp1)
        sp4 = SpanTracer()
        pooled = map_configs(self.configs(), jobs=4, spans=sp4)
        assert [s.as_dict() for s in serial] == [s.as_dict() for s in pooled]
        assert _structure(sp1.to_rows()) == _structure(sp4.to_rows())
        # Attributes (cell tags, scheduler, seed) merge identically too;
        # only wall-clock readings and the sweep's `jobs` tag differ.
        for a, b in zip(sp1.to_rows(), sp4.to_rows()):
            drop = ("jobs",)
            assert {k: v for k, v in a["attrs"].items() if k not in drop} == \
                   {k: v for k, v in b["attrs"].items() if k not in drop}

    def test_cell_roots_are_tagged_and_ordered(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        sp = SpanTracer()
        map_configs(self.configs(), jobs=2, spans=sp)
        rows = sp.to_rows()
        sweep = rows[0]
        assert sweep["name"] == "executor.map"
        assert sweep["attrs"]["cells"] == 3
        cell_roots = [r for r in rows if r["name"] == "run"]
        assert [r["attrs"]["cell"] for r in cell_roots] == [0, 1, 2]
        assert all(r["parent"] == sweep["id"] for r in cell_roots)
        assert all(r["attrs"]["cache"] == "miss" for r in cell_roots)

    def test_summaries_identical_with_and_without_spans(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        plain = map_configs(self.configs(), jobs=1)
        traced = map_configs(self.configs(), jobs=1, spans=SpanTracer())
        assert [s.as_dict() for s in plain] == [s.as_dict() for s in traced]

    def test_cache_hits_become_events(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        configs = self.configs()
        map_configs(configs, jobs=1)  # warm the cache
        sp = SpanTracer()
        map_configs(configs, jobs=1, spans=sp)
        rows = sp.to_rows()
        sweep = rows[0]
        assert sweep["attrs"]["cache_hits"] == 3
        hits = [e for e in sweep["events"] if e["name"] == "executor.cache_hit"]
        assert [e["cell"] for e in hits] == [0, 1, 2]
        assert all(r["name"] != "run" for r in rows[1:])
