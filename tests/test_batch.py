"""The lockstep multi-world engine (repro.sim.batch) and its facades.

Three layers of evidence that ``REPRO_BATCH=1`` is a pure speedup:

* world-by-world parity — whole batches reproduce ``run_simulation``
  summaries bit-for-bit, including mixed horizons (compaction), mixed
  schedulers/ERPs inside one shape batch, and the hypothesis property
  that random horizon/seed draws agree between B=1 and B=32;
* facade equivalence — ``run_batch``, the executor's shape-batched
  miss path and the gym-style :class:`BatchedEnv` all serialize to the
  serial engine's bytes (and the env's *actions* deliberately don't);
* attribution — shape-batches of k cells count k tasks in the pool
  stats and stamp ``"batch"`` provenance on store blobs and streamed
  cell results.
"""

import contextlib
import json
import os
import pathlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.executor import (
    _batch_payloads,
    default_batch_size,
    iter_configs,
    map_configs,
)
from repro.experiments.pool import get_warm_pool, shm_available, shutdown_warm_pool
from repro.experiments.store import ResultStore
from repro.sim.batch import BatchedEngine, batchable_config, shape_signature
from repro.sim.config import SimulationConfig
from repro.sim.env import BatchedEnv
from repro.sim.runner import run_batch, run_simulation
from repro.sim.soa import batch_enabled, debug_batch, engine_provenance
from repro.sim.world import World

SMALL_CONFIG = dict(
    n_sensors=30,
    n_targets=5,
    n_rvs=2,
    side_length_m=60.0,
    sim_time_s=4 * 3600.0,
    tick_s=600.0,
    dispatch_period_s=1800.0,
    battery_capacity_j=250.0,
    initial_charge_range=(0.5, 0.8),
    seed=7,
)


def small(**overrides) -> SimulationConfig:
    return SimulationConfig(**{**SMALL_CONFIG, **overrides})


_KNOBS = (
    "REPRO_SOA", "REPRO_DEBUG_SOA", "REPRO_BATCH", "REPRO_DEBUG_BATCH",
    "REPRO_BATCH_SIZE", "REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL",
    "REPRO_SHM", "REPRO_START_METHOD", "REPRO_JOBS", "REPRO_PROCS",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Pin the engine knobs to their defaults for every test.

    The explicit post-yield scrub matters: the CLI publishes
    ``REPRO_BATCH`` by writing ``os.environ`` directly, which
    ``monkeypatch.delenv(raising=False)`` on an initially-absent
    variable would not undo.
    """
    for var in _KNOBS:
        monkeypatch.delenv(var, raising=False)
    shutdown_warm_pool()
    yield
    for var in _KNOBS:
        os.environ.pop(var, None)
    shutdown_warm_pool()


@contextlib.contextmanager
def batch_env(**env):
    """Set env knobs for the block (hypothesis-safe: no fixture)."""
    old = {k: os.environ.get(k) for k in env}
    os.environ.update({k: v for k, v in env.items() if v is not None})
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


class TestKnobs:
    def test_default_off(self, monkeypatch):
        assert not batch_enabled()
        assert not debug_batch()

    def test_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_DEBUG_BATCH", "1")
        assert batch_enabled()
        assert debug_batch()

    def test_engine_provenance_records_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        prov = engine_provenance()
        assert prov["batch"] is True
        assert prov["batch_debug"] is False

    def test_default_batch_size(self, monkeypatch):
        assert default_batch_size() == 16
        monkeypatch.setenv("REPRO_BATCH_SIZE", "3")
        assert default_batch_size() == 3

    @pytest.mark.parametrize("bad", ["0", "-2", "four"])
    def test_batch_size_rejects_bad_values(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_BATCH_SIZE", bad)
        with pytest.raises(ValueError):
            default_batch_size()


class TestShapeSignature:
    def test_signature_free_fields(self):
        base = small()
        for variant in (
            small(seed=99),
            small(scheduler="greedy"),
            small(erp=0.8),
            small(sim_time_s=2 * 3600.0),
        ):
            assert shape_signature(variant) == shape_signature(base)

    def test_shape_fields_split_batches(self):
        base = small()
        assert shape_signature(small(n_sensors=31)) != shape_signature(base)
        assert shape_signature(small(tick_s=300.0)) != shape_signature(base)
        assert shape_signature(small(n_rvs=3)) != shape_signature(base)

    def test_batchable_config_gates(self, monkeypatch):
        assert batchable_config(small())
        assert not batchable_config(small(self_discharge_fraction_per_day=0.01))
        monkeypatch.setenv("REPRO_DEBUG_SOA", "1")
        assert not batchable_config(small())


class TestRunBatchParity:
    def test_mixed_schedulers_and_seeds(self):
        configs = [
            small(seed=s, scheduler=sched, erp=erp)
            for s in (7, 8)
            for sched, erp in (("combined", 0.5), ("greedy", 0.2))
        ]
        batched = run_batch(configs)
        serial = [run_simulation(c) for c in configs]
        assert [b.as_dict() for b in batched] == [s.as_dict() for s in serial]

    def test_mixed_horizons_compact(self):
        configs = [
            small(seed=10 + i, sim_time_s=h)
            for i, h in enumerate((2 * 3600.0, 4 * 3600.0, 3 * 3600.0, 4 * 3600.0))
        ]
        batched = run_batch(configs)
        serial = [run_simulation(c) for c in configs]
        assert [b.as_dict() for b in batched] == [s.as_dict() for s in serial]

    def test_non_batchable_falls_back_in_order(self):
        configs = [
            small(seed=1),
            small(seed=2, self_discharge_fraction_per_day=0.02),
            small(seed=3),
        ]
        batched = run_batch(configs)
        serial = [run_simulation(c) for c in configs]
        assert [b.as_dict() for b in batched] == [s.as_dict() for s in serial]

    def test_debug_shadow_runs_clean(self):
        configs = [small(seed=s) for s in (5, 6)]
        shadowed = run_batch(configs, debug=True)
        serial = [run_simulation(c) for c in configs]
        assert [b.as_dict() for b in shadowed] == [s.as_dict() for s in serial]

    def test_debug_env_knob_arms_shadow(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_BATCH", "1")
        engine = BatchedEngine([small(seed=5)])
        assert engine.debug
        (summary,) = engine.run()
        assert summary.as_dict() == run_simulation(small(seed=5)).as_dict()


class TestBatchedVsSingleProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_horizons_agree_world_by_world(self, data):
        """B=32 lockstep == 32 independent B=1 engines, per world."""
        draws = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=2**16),
                    st.integers(min_value=2, max_value=8),  # ticks
                ),
                min_size=32,
                max_size=32,
            )
        )
        with batch_env(REPRO_SOA=None, REPRO_DEBUG_SOA=None):
            configs = [
                small(seed=seed, sim_time_s=ticks * SMALL_CONFIG["tick_s"])
                for seed, ticks in draws
            ]
            wide = run_batch(configs)
            narrow = [run_batch([c])[0] for c in configs]
        assert [w.as_dict() for w in wide] == [n.as_dict() for n in narrow]


class TestBatchedEnv:
    def test_reset_observation_shapes(self):
        env = BatchedEnv([small(seed=s) for s in (1, 2, 3)])
        obs = env.reset()
        n = SMALL_CONFIG["n_sensors"]
        assert obs["levels_j"].shape == (3, n)
        assert obs["alive"].all()
        assert (obs["t"] == 0.0).all()
        m = obs["ptr"].shape[1]
        assert obs["cluster_sizes"].shape == (3, m)
        # Clustered (target-covering) sensors carry a cluster id; the
        # rest stay -1.
        assert ((obs["membership"] >= 0).sum(axis=1) > 0).all()
        assert (obs["membership"] < m).all()

    def test_action_free_rollout_matches_serial(self):
        configs = [small(seed=s) for s in (1, 2)]
        env = BatchedEnv(configs)
        env.reset()
        done = np.zeros(2, dtype=bool)
        for _ in range(200):
            obs, rewards, done, info = env.step()
            assert rewards.shape == (2,)
            assert np.isfinite(rewards).all()
            if done.all():
                break
        assert done.all()
        serial = [run_simulation(c) for c in configs]
        assert [s.as_dict() for s in env.summaries] == [
            s.as_dict() for s in serial
        ]

    def test_mixed_horizons_pad_finished_rows(self):
        configs = [small(seed=1, sim_time_s=2 * 3600.0), small(seed=2)]
        env = BatchedEnv(configs)
        env.reset()
        obs, rewards, dones, info = env.step()
        while not dones[0]:
            obs, rewards, dones, info = env.step()
        assert not dones[1]
        assert env.summaries[0] is not None and env.summaries[1] is None
        # The finishing step pays out the world's final summary metric.
        assert (obs["levels_j"][0] == 0.0).all()
        assert (obs["membership"][0] == -1).all()
        assert (obs["levels_j"][1] > 0.0).any()

    def test_final_reward_is_summary_coverage(self):
        env = BatchedEnv([small(seed=1, sim_time_s=2 * 3600.0)])
        env.reset()
        dones = np.zeros(1, dtype=bool)
        while not dones.all():
            obs, rewards, dones, info = env.step()
        assert rewards[0] == env.summaries[0].avg_coverage_ratio

    def test_actions_change_the_trajectory(self):
        configs = [small(seed=s) for s in (1, 2)]
        free = BatchedEnv(configs)
        free.reset()
        steered = BatchedEnv(configs)
        steered.reset()
        for _ in range(200):
            _, _, free_done, _ = free.step()
            actions = steered.sample_actions()
            _, _, steered_done, _ = steered.step(actions)
            if free_done.all() and steered_done.all():
                break
        assert [s.as_dict() for s in free.summaries] != [
            s.as_dict() for s in steered.summaries
        ]

    def test_sample_actions_in_range(self):
        env = BatchedEnv([small(seed=s) for s in (1, 2)])
        env.reset()
        actions = env.sample_actions()
        sizes = env._require_engine().stacks.sizes
        assert actions.shape == (2, sizes.shape[1])
        assert (actions >= 0).all()
        assert (actions < np.maximum(sizes, 1)).all()

    def test_bad_action_shape_rejected(self):
        env = BatchedEnv([small(seed=1)])
        env.reset()
        with pytest.raises(ValueError, match="shape"):
            env.step(np.zeros((2, 2), dtype=np.int64))

    def test_actions_forbidden_under_debug_shadow(self):
        env = BatchedEnv([small(seed=1)], debug=True)
        env.reset()
        with pytest.raises(ValueError, match="shadow"):
            env.step(env.sample_actions())

    def test_step_before_reset_raises(self):
        env = BatchedEnv([small(seed=1)])
        with pytest.raises(RuntimeError, match="reset"):
            env.step()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchedEnv([])


GRID = [
    dict(seed=s, scheduler=sched, erp=erp)
    for s in (7, 8)
    for sched in ("combined", "greedy")
    for erp in (0.3, 0.6)
]


class TestExecutorBatching:
    def test_map_configs_byte_identical_to_serial(self, monkeypatch):
        configs = [small(**cell) for cell in GRID]
        serial = map_configs(configs, jobs=1)
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_SIZE", "3")
        batched = map_configs(configs, jobs=1)
        assert json.dumps([b.as_dict() for b in batched], sort_keys=True) == (
            json.dumps([s.as_dict() for s in serial], sort_keys=True)
        )

    def test_store_blobs_carry_batch_provenance(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BATCH", "1")
        store = ResultStore(tmp_path / "store")
        configs = [small(seed=s) for s in (1, 2)]
        map_configs(configs, jobs=1, store=store)
        for cfg in configs:
            blob = json.loads(
                store._blob_path(store.key_for(cfg)).read_text()
            )
            assert blob["source"] == "batch"

    def test_iter_configs_streams_batch_source(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BATCH", "1")
        store = ResultStore(tmp_path / "store")
        configs = [small(seed=s) for s in (1, 2, 3)]
        rows = list(iter_configs(configs, jobs=1, store=store))
        assert sorted(i for i, _, _ in rows) == [0, 1, 2]
        assert {src for _, _, src in rows} == {"batch"}
        again = list(iter_configs(configs, jobs=1, store=store))
        assert {src for _, _, src in again} == {"store"}

    def test_batch_payloads_group_and_chunk(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "2")
        configs = [small(seed=s) for s in range(5)] + [small(seed=9, n_sensors=31)]
        misses = list(range(len(configs)))
        chunks, payloads = _batch_payloads(configs, misses)
        assert sorted(len(c) for c in chunks) == [1, 1, 2, 2]
        assert [len(c) for c in chunks] == [len(p) for p in payloads]
        # Order within a shape group is preserved.
        flat = [j for chunk in chunks for j in chunk]
        assert sorted(flat) == misses
        assert chunks[0] == [0, 1]

    def test_warm_pool_counts_cells_not_chunks(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        monkeypatch.setenv("REPRO_BATCH_SIZE", "2")
        if not shm_available():
            monkeypatch.setenv("REPRO_SHM", "0")
        configs = [small(seed=s) for s in range(4)]
        serial = [run_simulation(c) for c in configs]
        pooled = map_configs(configs, jobs=2, warm=True)
        assert [p.as_dict() for p in pooled] == [s.as_dict() for s in serial]
        pool = get_warm_pool(2)
        assert pool.stats["tasks"] == 4  # 4 cells, not 2 chunks
        again = map_configs(configs, jobs=2, warm=True)
        assert [a.as_dict() for a in again] == [s.as_dict() for s in serial]
        assert pool.stats["tasks"] == 8
        assert pool.stats["warm_hits"] >= 4


class TestBenchHistoryCap:
    @pytest.fixture()
    def shared(self, monkeypatch, tmp_path):
        bench_dir = str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks")
        monkeypatch.syspath_prepend(bench_dir)
        import _shared

        monkeypatch.setattr(_shared, "RESULTS_DIR", tmp_path)
        return _shared

    def test_emit_trims_history_to_cap(self, shared, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_HISTORY_MAX", "3")
        for i in range(5):
            shared.emit("capped", "table", extra={"t_probe_s": float(i)})
        payload = json.loads((tmp_path / "BENCH_capped.json").read_text())
        assert len(payload["history"]) == 3
        assert [row["t_probe_s"] for row in payload["history"]] == [2.0, 3.0, 4.0]

    def test_history_cap_default_and_validation(self, shared, monkeypatch):
        assert shared.history_max() == 200
        monkeypatch.setenv("REPRO_BENCH_HISTORY_MAX", "7")
        assert shared.history_max() == 7
        for bad in ("0", "many"):
            monkeypatch.setenv("REPRO_BENCH_HISTORY_MAX", bad)
            with pytest.raises(ValueError):
                shared.history_max()


class TestCLI:
    def test_run_batch_flag_matches_serial(self, capsys, monkeypatch):
        from repro.cli import main

        argv = [
            "run", "--sensors", "30", "--targets", "5", "--days", "0.1",
            "--seed", "3", "--json",
        ]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--batch"]) == 0
        batched = json.loads(capsys.readouterr().out)
        assert os.environ.get("REPRO_BATCH") == "1"
        assert batched == serial

    def test_no_batch_flag_publishes_opt_out(self, monkeypatch):
        from repro.cli import main

        argv = [
            "run", "--sensors", "30", "--targets", "5", "--days", "0.05",
            "--no-batch", "--json",
        ]
        assert main(argv) == 0
        assert os.environ.get("REPRO_BATCH") == "0"


def test_worlds_reusable_for_screening():
    """run_batch screens with a tickless world, then batches it — the
    engine must schedule ticks itself for externally built worlds."""
    cfg = small(seed=4)
    world = World(cfg, external_tick=True)
    engine = BatchedEngine(worlds=[world])
    (summary,) = engine.run()
    assert summary.as_dict() == run_simulation(cfg).as_dict()
