"""Eq. (1) — minimum sensors for full coverage (Section II-B).

Regenerates the deployment-sizing numbers and empirically checks that
deploying Eq. (1)'s count actually approaches full grid coverage.
"""

import numpy as np

from repro.geometry import Field, covered_fraction_grid, hexagon_covering_bound, minimum_sensors_eq1
from repro.utils.tables import format_table

from _shared import emit


def bench_eq1_coverage_bound(benchmark):
    field = Field(200.0)
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for r in (8.0, 12.0, 16.0):
            n_eq1 = minimum_sensors_eq1(field.area, r)
            n_hex = hexagon_covering_bound(field.area, r)
            pts = field.deploy_uniform(3 * n_hex, rng)
            frac = covered_fraction_grid(pts, field.side_length, r, resolution=60)
            rows.append([r, n_eq1, n_hex, 100.0 * frac])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["sensing range (m)", "Eq.(1) N", "hexagon bound N", "random 3x coverage (%)"],
        rows,
        precision=1,
        title="Eq. (1) - minimum sensors for full coverage (Sa = 200 x 200 m)",
    )
    emit("eq1_coverage_bound", table)
    # Paper's Table II point: 500 deployed sensors exceed the Eq. (1)
    # minimum at ds = 8 m.
    assert minimum_sensors_eq1(field.area, 8.0) < 500
