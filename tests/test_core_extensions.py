"""Tests for the extension schedulers (FCFS, nearest-first, 2-opt
insertion, deadline-aware)."""

import numpy as np
import pytest

from repro.core.extensions import (
    DeadlineAwareScheduler,
    FCFSScheduler,
    NearestFirstScheduler,
    TwoOptInsertionScheduler,
)
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import make_scheduler, run_simulation


def req(node_id, x, y, demand=30.0, cluster=-1, t=0.0):
    return RechargeRequest(node_id, np.array([x, y]), demand, cluster, t)


def view(rv_id=0, pos=(0.0, 0.0), budget=1e9, em=1.0):
    return RVView(rv_id=rv_id, position=np.array(pos), budget_j=budget, em_j_per_m=em)


class TestFCFS:
    def test_serves_in_release_order(self, rng):
        lst = RechargeNodeList(
            [req(0, 50, 0, t=30.0), req(1, 5, 0, t=10.0), req(2, 25, 0, t=20.0)]
        )
        plans = FCFSScheduler().assign(lst, [view()], rng)
        assert plans[0].node_ids == (1, 2, 0)

    def test_budget_cuts_queue(self, rng):
        lst = RechargeNodeList([req(0, 10, 0, demand=40, t=0.0), req(1, 20, 0, demand=40, t=1.0)])
        plans = FCFSScheduler().assign(lst, [view(budget=55.0)], rng)
        assert plans[0].node_ids == (0,)
        assert 1 in lst

    def test_second_rv_continues_queue(self, rng):
        lst = RechargeNodeList([req(i, 10.0 * (i + 1), 0, demand=40, t=float(i)) for i in range(4)])
        views = [view(0, budget=105.0), view(1, pos=(20.0, 0.0), budget=1e9)]
        plans = FCFSScheduler().assign(lst, views, rng)
        assert plans[0].node_ids == (0, 1)
        assert plans[1].node_ids == (2, 3)


class TestNearestFirst:
    def test_visits_by_distance(self, rng):
        lst = RechargeNodeList([req(0, 30, 0), req(1, 10, 0), req(2, 20, 0)])
        plans = NearestFirstScheduler().assign(lst, [view()], rng)
        assert plans[0].node_ids == (1, 2, 0)

    def test_ignores_demand(self, rng):
        # A huge-demand far node loses to a near trivial one.
        lst = RechargeNodeList([req(0, 100, 0, demand=1e6), req(1, 1, 0, demand=1.0)])
        plans = NearestFirstScheduler().assign(lst, [view()], rng)
        assert plans[0].node_ids[0] == 1


class TestTwoOptInsertion:
    def test_never_longer_than_plain_insertion(self, rng):
        reqs = [req(i, float(x), float(y), demand=500.0)
                for i, (x, y) in enumerate(np.random.default_rng(5).uniform(0, 100, (10, 2)))]
        plain = make_scheduler("insertion", 1)
        fancy = TwoOptInsertionScheduler()
        p1 = plain.assign(RechargeNodeList(reqs), [view()], rng)[0]
        p2 = fancy.assign(RechargeNodeList(reqs), [view()], rng)[0]
        assert set(p2.node_ids) == set(p1.node_ids)
        assert p2.travel_m <= p1.travel_m + 1e-9

    def test_short_routes_pass_through(self, rng):
        lst = RechargeNodeList([req(0, 5, 0)])
        plans = TwoOptInsertionScheduler().assign(lst, [view()], rng)
        assert plans[0].node_ids == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoOptInsertionScheduler(max_rounds=0)


class TestDeadlineAware:
    def test_urgent_requests_preempt(self, rng):
        sched = DeadlineAwareScheduler(urgency_age_s=100.0)
        sched.observe_time(200.0)
        # Node 0: aged 200 s (urgent), tiny profit. Node 1: fresh, huge profit.
        lst = RechargeNodeList(
            [req(0, 90, 0, demand=10.0, t=0.0), req(1, 5, 0, demand=1000.0, t=190.0)]
        )
        plans = sched.assign(lst, [view()], rng)
        assert plans[0].node_ids == (0,)  # only the urgent pool is planned
        assert 1 in lst

    def test_no_urgent_behaves_like_insertion(self, rng):
        sched = DeadlineAwareScheduler(urgency_age_s=1e9)
        sched.observe_time(0.0)
        lst = RechargeNodeList([req(0, 5, 0, demand=100.0), req(1, 7, 0, demand=100.0)])
        plans = sched.assign(lst, [view()], rng)
        assert sorted(plans[0].node_ids) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineAwareScheduler(urgency_age_s=0.0)


class TestExtensionsInSimulation:
    @pytest.mark.parametrize("name", ["fcfs", "nearest", "insertion+2opt", "deadline"])
    def test_full_run(self, name):
        cfg = SimulationConfig.small(scheduler=name, sim_time_s=1 * DAY_S, seed=6)
        s = run_simulation(cfg)
        assert s.n_recharges > 0
        assert 0.0 <= s.avg_coverage_ratio <= 1.0

    def test_factory_knows_all_names(self):
        for name in ("fcfs", "nearest", "insertion+2opt", "deadline"):
            assert make_scheduler(name, 2).name == name
