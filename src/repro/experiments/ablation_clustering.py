"""Ablation A2 — balanced clustering (Algorithm 1) vs the nearest-target
baseline.

Two effects are measured:

* **static balance**: the cluster-size spread (max - min) over random
  deployments — the direct objective of Algorithm 1;
* **system effect**: RV traveling energy and coverage when the
  simulation runs with each clustering policy.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.clustering import balanced_clustering, nearest_target_clustering
from ..geometry.field import Field
from ..utils.tables import format_table
from .common import ExperimentScale, run_cell

__all__ = ["static_balance", "run_ablation", "format_ablation"]


def static_balance(
    n_sensors: int = 500,
    n_targets: int = 15,
    side: float = 200.0,
    sensing_range: float = 14.0,
    seeds: int = 20,
) -> Dict[str, float]:
    """Mean cluster-size spread over random instances, both policies."""
    spreads = {"balanced": [], "nearest_target": []}
    for seed in range(seeds):
        rng = np.random.default_rng(seed)
        f = Field(side)
        sensors = f.deploy_uniform(n_sensors, rng)
        targets = f.random_points(n_targets, rng)
        spreads["balanced"].append(
            balanced_clustering(sensors, targets, sensing_range).spread()
        )
        spreads["nearest_target"].append(
            nearest_target_clustering(sensors, targets, sensing_range).spread()
        )
    return {k: float(np.mean(v)) for k, v in spreads.items()}


def run_ablation(scale: ExperimentScale) -> Dict[str, Dict[str, float]]:
    """Simulated effect of the clustering policy (combined scheduler,
    ERP 0.6)."""
    out = {}
    for policy in ("balanced", "nearest_target"):
        cell = run_cell(scale, clustering=policy, erp=0.6, scheduler="combined")
        out[policy] = {
            "traveling_energy_mj": cell["traveling_energy_j"] / 1e6,
            "coverage_pct": 100.0 * cell["avg_coverage_ratio"],
            "n_recharges": cell["n_recharges"],
            "mean_latency_h": cell["mean_request_latency_s"] / 3600.0,
        }
    return out


def format_ablation(static: Dict[str, float], dynamic: Dict[str, Dict[str, float]]) -> str:
    rows: List[list] = []
    for policy in ("balanced", "nearest_target"):
        d = dynamic[policy]
        rows.append(
            [
                policy,
                static[policy],
                d["traveling_energy_mj"],
                d["coverage_pct"],
                d["mean_latency_h"],
            ]
        )
    return format_table(
        ["clustering", "size spread", "travel (MJ)", "coverage (%)", "latency (h)"],
        rows,
        title="Ablation A2 - balanced clustering vs nearest-target",
    )
