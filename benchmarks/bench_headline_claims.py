"""Section I headline claims — paper vs measured.

* activity management saves RV traveling energy (paper: 16%);
* Partition saves traveling distance vs greedy (paper: 41%);
* Combined saves traveling distance vs greedy (paper: 13%);
* nonfunctional nodes reduced vs greedy (paper: 23% / 52%).

Reuses the Fig. 4 cells and the shared ERP sweep.
"""

import numpy as np

from repro.experiments import SCHEMES, activity_saving_percent
from repro.experiments.headline import format_headline

from _shared import emit, get_fig4, get_sweep


def bench_headline_claims(benchmark):
    def compute():
        fig4 = get_fig4()
        sweep = get_sweep()
        act = activity_saving_percent(fig4)

        def mean(s, metric):
            return float(np.mean(sweep[s][metric]))

        def pct(base, ours):
            return 100.0 * (base - ours) / base if base > 0 else 0.0

        return {
            "activity_mgmt_saving_pct": float(np.mean([act[s] for s in SCHEMES])),
            "partition_distance_saving_pct": pct(
                mean("greedy", "traveling_distance_m"), mean("partition", "traveling_distance_m")
            ),
            "combined_distance_saving_pct": pct(
                mean("greedy", "traveling_distance_m"), mean("combined", "traveling_distance_m")
            ),
            "partition_nonfunctional_reduction_pct": pct(
                mean("greedy", "avg_nonfunctional_fraction"),
                mean("partition", "avg_nonfunctional_fraction"),
            ),
            "combined_nonfunctional_reduction_pct": pct(
                mean("greedy", "avg_nonfunctional_fraction"),
                mean("combined", "avg_nonfunctional_fraction"),
            ),
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("headline_claims", format_headline(result))
    # The directional claims that must hold: the joint scheme saves RV
    # energy, and partition saves distance vs greedy.
    assert result["activity_mgmt_saving_pct"] > 0
    assert result["partition_distance_saving_pct"] > 0
