"""Unit tests for repro.energy.consumption."""

import pytest

from repro.energy.consumption import (
    CC2480_RADIO,
    PAPER_NODE_POWER,
    PIR_DETECTOR,
    NodePowerModel,
    RadioModel,
    SensingModel,
)


class TestRadioModel:
    def test_airtime(self):
        r = RadioModel(bitrate_bps=250_000, overhead_bytes=18)
        # (20 + 18) bytes * 8 bits / 250 kbps
        assert r.airtime_s(20) == pytest.approx(38 * 8 / 250_000)

    def test_tx_energy_is_current_times_voltage_times_airtime(self):
        r = RadioModel()
        assert r.tx_energy_j(20) == pytest.approx(27e-3 * 3.0 * r.airtime_s(20))

    def test_rx_equals_tx_for_symmetric_radio(self):
        r = RadioModel()
        assert r.rx_energy_j(20) == pytest.approx(r.tx_energy_j(20))

    def test_idle_power(self):
        assert RadioModel().idle_power_w == pytest.approx(5e-6 * 3.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            RadioModel().airtime_s(-1)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(tx_current_a=0.0)
        with pytest.raises(ValueError):
            RadioModel(idle_current_a=-1e-6)
        with pytest.raises(ValueError):
            RadioModel(overhead_bytes=-1)


class TestSensingModel:
    def test_paper_pir_values(self):
        # 10 mA at 3 V active; 170 uA idle.
        assert PIR_DETECTOR.active_power_w == pytest.approx(0.030)
        assert PIR_DETECTOR.idle_power_w == pytest.approx(510e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensingModel(active_current_a=0.0)
        with pytest.raises(ValueError):
            SensingModel(voltage_v=-3.0)


class TestNodePowerModel:
    def test_idle_power_combines_detector_and_radio(self):
        m = PAPER_NODE_POWER
        assert m.idle_power_w == pytest.approx(
            PIR_DETECTOR.idle_power_w + CC2480_RADIO.idle_power_w
        )

    def test_active_extra_positive_and_sensing_dominated(self):
        m = PAPER_NODE_POWER
        extra = m.active_sensing_power_w
        assert extra > 0
        # At lambda = 15 pkt/min the sensing draw dominates the radio.
        assert extra == pytest.approx(
            PIR_DETECTOR.active_power_w - PIR_DETECTOR.idle_power_w, rel=0.01
        )

    def test_relay_power_linear_in_rate(self):
        m = PAPER_NODE_POWER
        assert m.relay_power_w(2.0) == pytest.approx(2 * m.relay_power_w(1.0))

    def test_relay_power_negative_rejected(self):
        with pytest.raises(ValueError):
            PAPER_NODE_POWER.relay_power_w(-0.5)

    def test_relay_per_packet_is_rx_plus_tx(self):
        m = PAPER_NODE_POWER
        per_pkt = m.radio.rx_energy_j(m.payload_bytes) + m.radio.tx_energy_j(m.payload_bytes)
        assert m.relay_power_w(1.0) == pytest.approx(per_pkt)

    def test_notification_energy_is_one_tx(self):
        m = PAPER_NODE_POWER
        assert m.notification_energy_j() == pytest.approx(m.radio.tx_energy_j(m.payload_bytes))

    def test_paper_packet_rate(self):
        assert PAPER_NODE_POWER.packet_rate_hz == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodePowerModel(packet_rate_hz=-1.0)
        with pytest.raises(ValueError):
            NodePowerModel(payload_bytes=-3)
