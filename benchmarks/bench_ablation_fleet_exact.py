"""Ablation A6 — fleet schedulers vs the exact multi-RV optimum.

On small instances (n <= 9, 2 RVs) the Partition- and Combined-Scheme
plans are compared with the provably optimal fleet schedule from the
subset-partition DP — the multi-RV counterpart of ablation A1.
"""

import numpy as np

from repro.core.combined import CombinedScheduler
from repro.core.mip import RechargeInstance, solve_exact_fleet, verify_routes
from repro.core.partition import PartitionScheduler
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView
from repro.utils.tables import format_table

from _shared import emit


def _plan_profit(scheduler, inst, n_rvs, seed):
    reqs = [
        RechargeRequest(i, inst.positions[i], float(inst.demands[i])) for i in range(inst.n)
    ]
    views = [
        RVView(rv_id=k, position=inst.start, budget_j=inst.capacity_j, em_j_per_m=inst.em_j_per_m)
        for k in range(n_rvs)
    ]
    plans = scheduler.assign(RechargeNodeList(reqs), views, np.random.default_rng(seed))
    return sum(verify_routes(inst, [list(p.node_ids)]) for p in plans.values())


def bench_ablation_fleet_exact(benchmark):
    def run():
        rows = []
        for demand_scale in (1500.0, 4000.0):
            gaps = {"partition": [], "combined": []}
            for seed in range(8):
                rng = np.random.default_rng(seed)
                n = 8
                inst = RechargeInstance(
                    positions=rng.uniform(0, 200, size=(n, 2)),
                    demands=rng.uniform(0.5, 1.0, size=n) * demand_scale,
                    start=np.array([100.0, 100.0]),
                    em_j_per_m=5.6,
                    capacity_j=demand_scale * 4.0,
                )
                opt = solve_exact_fleet(inst, 2).profit
                if opt <= 0:
                    continue
                for name, sched in (
                    ("partition", PartitionScheduler(2)),
                    ("combined", CombinedScheduler()),
                ):
                    heuristic = _plan_profit(sched, inst, 2, seed)
                    gaps[name].append(100.0 * (opt - heuristic) / opt)
            for name in ("partition", "combined"):
                if gaps[name]:
                    rows.append(
                        [name, demand_scale, float(np.mean(gaps[name])), float(np.max(gaps[name]))]
                    )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["scheme", "demand scale (J)", "mean gap (%)", "max gap (%)"],
        rows,
        precision=2,
        title="Ablation A6 - fleet schedulers vs exact 2-RV optimum (8 nodes)",
    )
    emit("ablation_fleet_exact", table)
    # In the paper's regime (high demands) both schemes stay close.
    high = [r for r in rows if r[1] >= 4000.0]
    assert all(r[2] < 15.0 for r in high)
