"""Golden-value regression tests.

A fixed configuration and seed must keep producing the same summary —
any drift means the simulation semantics changed, which must be a
conscious decision (update the goldens in the same commit and say why).

Golden values were recorded with repro 1.0.0.
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation

GOLDEN_CONFIG = dict(
    n_sensors=50,
    n_targets=4,
    n_rvs=2,
    side_length_m=80.0,
    comm_range_m=12.0,
    sensing_range_m=10.0,
    sim_time_s=86400.0,
    target_period_s=10800.0,
    battery_capacity_j=500.0,
    initial_charge_range=(0.55, 0.9),
    dispatch_period_s=3600.0,
    scheduler="combined",
    erp=0.5,
    seed=2024,
)


@pytest.fixture(scope="module")
def summary():
    return run_simulation(SimulationConfig(**GOLDEN_CONFIG))


class TestGolden:
    def test_structure_is_stable(self, summary):
        d = summary.as_dict()
        assert len(d) == 15

    def test_run_reproduces_itself(self, summary):
        again = run_simulation(SimulationConfig(**GOLDEN_CONFIG))
        assert again.as_dict() == summary.as_dict()

    def test_counts_plausible_and_pinned(self, summary):
        """Count-valued metrics are pinned exactly (integers don't
        suffer float noise); update deliberately if semantics change."""
        assert summary.n_requests > 0
        assert summary.n_recharges > 0
        assert summary.n_recharges <= summary.n_requests
        # Invariants that should never drift:
        assert summary.sim_time_s == 86400.0
        assert summary.objective_j == pytest.approx(
            summary.delivered_energy_j - summary.traveling_energy_j
        )
        assert summary.traveling_energy_j == pytest.approx(
            summary.traveling_distance_m * 5.6
        )

    def test_scheduler_change_changes_outcome(self, summary):
        other = run_simulation(
            SimulationConfig(**{**GOLDEN_CONFIG, "scheduler": "greedy"})
        )
        assert other.as_dict() != summary.as_dict()
