"""Benchmark-suite configuration.

Puts the benchmarks directory on sys.path so the suite's shared module
(`_shared`) imports regardless of the pytest rootdir, and prints the
selected experiment scale once per session.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_report_header(config):
    scale = os.environ.get("REPRO_SCALE", "bench")
    return f"repro experiment scale: {scale} (set REPRO_SCALE=smoke|bench|paper)"
