"""Single-source shortest paths on a CSR graph.

A from-scratch binary-heap Dijkstra — the paper routes sensing data to
the base station "using Dijkstra's shortest path algorithm" (Section V).
Implemented directly on the CSR arrays of
:class:`repro.network.topology.Topology` with the standard lazy-deletion
heap; the test suite cross-validates it against
:func:`networkx.single_source_dijkstra_path_length`.
"""

from __future__ import annotations

import heapq
import weakref
from collections import OrderedDict
from typing import Tuple

import numpy as np

__all__ = ["shortest_paths"]

# Weight arrays already scanned for negative entries, keyed on array
# identity (same OrderedDict + weakref discipline as
# :func:`repro.geometry.points.kdtree_for`).  A Topology runs one
# Dijkstra per sensor against the same weight array; validating it once
# instead of n times removes an O(E) scan from every source.  Weights
# are treated as immutable after the first call, like every other
# position/weight array in this library.
_VALIDATED_WEIGHTS: "OrderedDict[int, weakref.ref]" = OrderedDict()
_VALIDATED_WEIGHTS_MAX = 64


def _check_nonnegative(weights: np.ndarray) -> None:
    key = id(weights)
    hit = _VALIDATED_WEIGHTS.get(key)
    if hit is not None and hit() is weights:
        _VALIDATED_WEIGHTS.move_to_end(key)
        return
    if np.any(weights < 0):
        raise ValueError("Dijkstra requires non-negative weights")
    try:
        ref = weakref.ref(weights)
    except TypeError:  # non-weakref-able input (e.g. a list): skip caching
        return
    _VALIDATED_WEIGHTS[key] = ref
    while len(_VALIDATED_WEIGHTS) > _VALIDATED_WEIGHTS_MAX:
        _VALIDATED_WEIGHTS.popitem(last=False)


def shortest_paths(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    source: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dijkstra from ``source`` over a CSR adjacency.

    Args:
        indptr: CSR row pointer, length ``n + 1``.
        indices: CSR column indices (directed arcs).
        weights: non-negative arc lengths aligned with ``indices``.
        source: start vertex.

    Returns:
        ``(dist, parent)`` — ``dist[v]`` is the shortest distance from
        ``source`` to ``v`` (``inf`` if unreachable); ``parent[v]`` is
        the predecessor of ``v`` on one shortest path (``-1`` for the
        source and unreachable vertices).
    """
    n = len(indptr) - 1
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    _check_nonnegative(weights)
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.intp)
    done = np.zeros(n, dtype=bool)
    dist[source] = 0.0
    heap: list = [(0.0, source)]
    while heap:
        d_u, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        start, stop = indptr[u], indptr[u + 1]
        for k in range(start, stop):
            v = indices[k]
            if done[v]:
                continue
            nd = d_u + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, int(v)))
    return dist, parent
