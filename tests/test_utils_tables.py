"""Unit tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in out
        assert "20" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_precision(self):
        out = format_table(["x"], [[3.14159]], precision=1)
        assert "3.1" in out and "3.14" not in out

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series(
            "erp", [0.0, 0.5], {"greedy": [1.0, 2.0], "partition": [3.0, 4.0]}
        )
        header = out.splitlines()[0]
        assert "erp" in header and "greedy" in header and "partition" in header
        assert "4.000" in out
