"""Experiment drivers — one module per figure of the paper's evaluation.

See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
recorded paper-vs-measured results.
"""

from .cache import cached_run, cached_run_seeds
from .executor import (
    CellResult,
    GridJob,
    default_jobs,
    iter_configs,
    map_cells,
    map_configs,
    submit_grid,
    sweep_grid,
)
from .common import (
    ERP_GRID,
    SCHEMES,
    ExperimentScale,
    current_scale,
    run_cell,
    run_cell_stats,
    run_erp_sweep,
)
from .fig4_activity import activity_saving_percent, format_fig4, run_fig4
from .fig5_tradeoff import format_fig5, run_fig5
from .fig6_schemes import format_panel, panel_a, panel_b, panel_c, panel_d, run_fig6
from .fig7_profit import format_fig7_panel
from .headline import compute_headline, format_headline

__all__ = [
    "CellResult",
    "ERP_GRID",
    "GridJob",
    "SCHEMES",
    "ExperimentScale",
    "activity_saving_percent",
    "cached_run",
    "cached_run_seeds",
    "compute_headline",
    "current_scale",
    "default_jobs",
    "iter_configs",
    "submit_grid",
    "format_fig4",
    "format_fig5",
    "format_fig7_panel",
    "format_headline",
    "format_panel",
    "map_cells",
    "map_configs",
    "panel_a",
    "panel_b",
    "panel_c",
    "panel_d",
    "run_cell",
    "run_cell_stats",
    "run_erp_sweep",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "sweep_grid",
]
