"""Shared utilities: table rendering and run statistics."""

from .profiling import Timer, profile_call
from .stats import mean_std, summarize_runs, t_confidence_interval
from .tables import format_series, format_table

__all__ = [
    "Timer",
    "format_series",
    "format_table",
    "mean_std",
    "profile_call",
    "summarize_runs",
    "t_confidence_interval",
]
