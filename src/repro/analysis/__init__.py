"""Closed-form deployment estimators, validated against the simulator."""

from .estimators import (
    DeploymentModel,
    coverage_probability,
    expected_cluster_size,
    fleet_size_lower_bound,
    full_time_member_power_w,
    request_rate_per_day,
    rr_member_power_w,
    threshold_crossing_interval_s,
)

__all__ = [
    "DeploymentModel",
    "coverage_probability",
    "expected_cluster_size",
    "fleet_size_lower_bound",
    "full_time_member_power_w",
    "request_rate_per_day",
    "rr_member_power_w",
    "threshold_crossing_interval_s",
]
