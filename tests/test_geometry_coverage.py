"""Unit tests for repro.geometry.coverage."""

import numpy as np
import pytest

from repro.geometry.coverage import (
    covered_fraction_grid,
    detection_matrix,
    detectors_of_targets,
)


class TestDetectionMatrix:
    def test_basic(self):
        sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
        targets = np.array([[1.0, 0.0], [9.0, 0.0]])
        m = detection_matrix(sensors, targets, 2.0)
        assert m.tolist() == [[True, False], [False, True]]

    def test_boundary_inclusive(self):
        m = detection_matrix([[0.0, 0.0]], [[3.0, 4.0]], 5.0)
        assert m[0, 0]

    def test_empty_inputs(self):
        assert detection_matrix(np.empty((0, 2)), [[0, 0]], 1.0).shape == (0, 1)
        assert detection_matrix([[0, 0]], np.empty((0, 2)), 1.0).shape == (1, 0)

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            detection_matrix([[0, 0]], [[1, 1]], -1.0)


class TestDetectorsOfTargets:
    def test_matches_matrix(self, rng):
        sensors = rng.uniform(0, 50, size=(60, 2))
        targets = rng.uniform(0, 50, size=(7, 2))
        m = detection_matrix(sensors, targets, 8.0)
        det = detectors_of_targets(sensors, targets, 8.0)
        for j in range(7):
            assert det[j].tolist() == np.flatnonzero(m[:, j]).tolist()


class TestCoveredFraction:
    def test_zero_without_sensors(self):
        assert covered_fraction_grid(np.empty((0, 2)), 10.0, 2.0) == 0.0

    def test_full_with_huge_range(self):
        assert covered_fraction_grid([[5.0, 5.0]], 10.0, 100.0) == 1.0

    def test_partial(self):
        # One disk of radius 5 centered in a 10x10 field covers ~ pi*25/100.
        frac = covered_fraction_grid([[5.0, 5.0]], 10.0, 5.0, resolution=200)
        assert frac == pytest.approx(np.pi * 25 / 100, abs=0.01)

    def test_monotone_in_range(self):
        pts = [[2.0, 2.0], [8.0, 8.0]]
        f1 = covered_fraction_grid(pts, 10.0, 1.0)
        f2 = covered_fraction_grid(pts, 10.0, 3.0)
        assert f2 > f1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            covered_fraction_grid([[0, 0]], -1.0, 1.0)
        with pytest.raises(ValueError):
            covered_fraction_grid([[0, 0]], 1.0, 1.0, resolution=0)
