#!/usr/bin/env python
"""The paper's motivating scenario: monitoring rare animals.

Sensors are densely deployed so each animal (target) is watched by
several sensors at once; the redundancy is exactly what the paper's
activity management exploits.  This example:

1. forms balanced clusters around the animals (Algorithm 1) and prints
   the cluster map and its size balance;
2. traces a few hours of round-robin duty rotation inside one cluster;
3. compares round-robin vs full-time activation over a simulated day:
   sensor energy consumed, recharge requests generated, and RV travel.

Run:  python examples/animal_monitoring.py
"""

import numpy as np

from repro import SimulationConfig, World, balanced_clustering
from repro.core.activation import RoundRobinActivator
from repro.geometry import Field
from repro.sim import DAY_S


def cluster_map() -> None:
    print("=== 1. balanced clusters around the animals ===")
    rng = np.random.default_rng(3)
    field = Field(100.0)
    sensors = field.deploy_uniform(150, rng)
    animals = field.random_points(4, rng)
    clusters = balanced_clustering(sensors, animals, sensing_range=14.0)
    for c in clusters:
        pos = animals[c.cluster_id]
        print(
            f"  animal {c.cluster_id} at ({pos[0]:5.1f}, {pos[1]:5.1f}): "
            f"{c.size} watchers -> sensors {c.members.tolist()}"
        )
    sizes = clusters.sizes()
    print(f"  cluster sizes: {sizes.tolist()} (spread = {clusters.spread()})\n")


def rotation_trace() -> None:
    print("=== 2. round-robin duty rotation (one cluster, 6 slots) ===")
    rng = np.random.default_rng(3)
    field = Field(100.0)
    sensors = field.deploy_uniform(150, rng)
    animals = field.random_points(4, rng)
    clusters = balanced_clustering(sensors, animals, sensing_range=14.0)
    act = RoundRobinActivator(clusters)
    alive = np.ones(150, dtype=bool)
    for slot in range(6):
        on_duty = act.active_sensor_per_cluster(alive)
        print(f"  slot {slot}: on duty per animal -> {on_duty.tolist()}")
        act.rotate(alive)
    print()


def activation_comparison() -> None:
    print("=== 3. round-robin vs full-time over one simulated day ===")
    rows = []
    for activation in ("round_robin", "full_time"):
        cfg = SimulationConfig.small(
            activation=activation, scheduler="combined", sim_time_s=1 * DAY_S, seed=11
        )
        w = World(cfg)
        s = w.run()
        rows.append((activation, s))
    for activation, s in rows:
        print(
            f"  {activation:12s}: energy recharged {s.delivered_energy_j / 1000:7.1f} kJ, "
            f"requests {s.n_requests:4d}, RV travel {s.traveling_distance_m / 1000:5.2f} km, "
            f"coverage {100 * s.avg_coverage_ratio:6.2f} %"
        )
    rr, ft = rows[0][1], rows[1][1]
    if ft.delivered_energy_j > 0:
        saved = 100 * (1 - rr.delivered_energy_j / ft.delivered_energy_j)
        print(f"  -> round-robin cut the network's energy appetite by {saved:.0f}%")


if __name__ == "__main__":
    cluster_map()
    rotation_trace()
    activation_comparison()
