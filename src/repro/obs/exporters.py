"""Pluggable telemetry exporters, registered by name.

An exporter turns one run's :class:`TelemetryBundle` — the instrument
snapshot, the final summary, the configuration, and (optionally) the
trace recorder — into files inside a telemetry directory.  Exporters
register in :data:`repro.registry.EXPORTERS` exactly like schedulers
register in ``SCHEDULERS``, so third parties can add formats without
touching the runner or the CLI::

    from repro.registry import EXPORTERS

    @EXPORTERS.register("sqlite")
    def _build():
        return MySqliteExporter()

Built-ins:

* ``jsonl`` — ``events.jsonl`` (the trace's JSONL round-trip format)
  plus ``metrics.jsonl`` (one JSON object per instrument);
* ``prometheus`` — ``metrics.prom``, a Prometheus text-format snapshot;
* ``csv`` — ``series.csv`` (long-format trace time series) and
  ``instruments.csv``.

This module never imports :mod:`repro.sim`; the trace is duck-typed
(anything with ``events``, ``series`` and ``to_jsonl_lines()`` works),
which keeps ``repro.obs`` importable from the simulation state without
an import cycle.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..registry import EXPORTERS

__all__ = [
    "CsvExporter",
    "JsonlExporter",
    "PrometheusExporter",
    "TelemetryBundle",
    "DEFAULT_EXPORTERS",
]

#: The exporter names a telemetry run enables when none are requested.
DEFAULT_EXPORTERS = ("jsonl", "prometheus", "csv")


@dataclass
class TelemetryBundle:
    """Everything one run hands to its exporters.

    Attributes:
        instruments: an ``Instruments.snapshot()`` dict.
        summary: the final ``SimulationSummary.as_dict()``.
        config: the run's ``config_to_dict`` view.
        trace: the run's ``TraceRecorder`` (or ``None`` when only
            instruments were collected).
    """

    instruments: Dict[str, Any] = field(default_factory=dict)
    summary: Dict[str, float] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Any] = None


def _prom_name(name: str) -> str:
    """A dotted instrument name as a Prometheus metric name."""
    safe = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{safe}"


class JsonlExporter:
    """``events.jsonl`` + ``metrics.jsonl``: the line-oriented formats.

    ``events.jsonl`` is written by the trace recorder itself (one event
    or series sample per line), so a telemetry directory and a saved
    trace are the same format; ``metrics.jsonl`` holds one object per
    instrument with a ``"instrument"`` kind tag.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        out_dir = Path(out_dir)
        written: List[Path] = []
        if bundle.trace is not None:
            events = out_dir / "events.jsonl"
            with open(events, "w") as f:
                for line in bundle.trace.to_jsonl_lines():
                    f.write(line + "\n")
            written.append(events)
        metrics = out_dir / "metrics.jsonl"
        with open(metrics, "w") as f:
            snap = bundle.instruments
            for kind in ("counters", "gauges"):
                for name, value in snap.get(kind, {}).items():
                    f.write(json.dumps(
                        {"instrument": kind[:-1], "name": name, "value": value}
                    ) + "\n")
            for kind in ("histograms", "timers"):
                for name, summary in snap.get(kind, {}).items():
                    f.write(json.dumps(
                        {"instrument": kind[:-1], "name": name, **summary}
                    ) + "\n")
        written.append(metrics)
        return written


class PrometheusExporter:
    """``metrics.prom``: a Prometheus text-format (0.0.4) snapshot.

    Counters and gauges map directly; histograms and timers are exposed
    as summaries (``_count`` / ``_sum``, timers in seconds).  The final
    simulation summary rides along as ``repro_summary_*`` gauges so a
    scrape of an archived run carries its headline figures.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        lines: List[str] = []
        snap = bundle.instruments
        for name, value in snap.get("counters", {}).items():
            metric = _prom_name(name) + "_total"
            lines += [f"# TYPE {metric} counter", f"{metric} {value:g}"]
        for name, value in snap.get("gauges", {}).items():
            metric = _prom_name(name)
            lines += [f"# TYPE {metric} gauge", f"{metric} {value:g}"]
        for name, summary in snap.get("histograms", {}).items():
            metric = _prom_name(name)
            lines += [
                f"# TYPE {metric} summary",
                f"{metric}_count {summary['count']:g}",
                f"{metric}_sum {summary['total']:g}",
            ]
        for name, summary in snap.get("timers", {}).items():
            metric = _prom_name(name) + "_seconds"
            lines += [
                f"# TYPE {metric} summary",
                f"{metric}_count {summary['count']:g}",
                f"{metric}_sum {summary['total_s']:g}",
            ]
        for key, value in bundle.summary.items():
            metric = _prom_name(f"summary.{key}")
            lines += [f"# TYPE {metric} gauge", f"{metric} {value:g}"]
        path = Path(out_dir) / "metrics.prom"
        path.write_text("\n".join(lines) + "\n")
        return [path]


class CsvExporter:
    """``series.csv`` + ``instruments.csv``: spreadsheet-friendly views.

    ``series.csv`` is the long-format dump of the trace's named time
    series (``series,time_s,value``); ``instruments.csv`` flattens the
    instrument snapshot to ``kind,name,field,value`` rows.
    """

    def export(self, out_dir: Path, bundle: TelemetryBundle) -> List[Path]:
        out_dir = Path(out_dir)
        written: List[Path] = []
        if bundle.trace is not None:
            series_path = out_dir / "series.csv"
            with open(series_path, "w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(["series", "time_s", "value"])
                for name, samples in bundle.trace.series.items():
                    for t, v in samples:
                        writer.writerow([name, repr(float(t)), repr(float(v))])
            written.append(series_path)
        inst_path = out_dir / "instruments.csv"
        with open(inst_path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["kind", "name", "field", "value"])
            snap = bundle.instruments
            for kind in ("counters", "gauges"):
                for name, value in snap.get(kind, {}).items():
                    writer.writerow([kind[:-1], name, "value", repr(float(value))])
            for kind in ("histograms", "timers"):
                for name, summary in snap.get(kind, {}).items():
                    for fieldname, value in summary.items():
                        writer.writerow([kind[:-1], name, fieldname, repr(float(value))])
        written.append(inst_path)
        return written


EXPORTERS.register(
    "jsonl",
    JsonlExporter,
    doc="events.jsonl + metrics.jsonl (shared trace round-trip format).",
)
EXPORTERS.register(
    "prometheus",
    PrometheusExporter,
    doc="metrics.prom: Prometheus text-format snapshot.",
)
EXPORTERS.register(
    "csv",
    CsvExporter,
    doc="series.csv + instruments.csv time-series tables.",
)
