"""2-opt local search for open tours.

Not part of the paper's algorithms — provided as the ablation the
DESIGN.md calls out (A3): how much RV distance a classical 2-opt
post-pass recovers on top of the nearest-neighbour / insertion tours.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geometry.points import as_points
from .tour import open_tour_length

__all__ = ["two_opt"]


def two_opt(
    points: np.ndarray,
    order: Sequence[int],
    max_rounds: int = 50,
) -> List[int]:
    """Improve an *open* tour with first-improvement 2-opt moves.

    Endpoints stay fixed (the RV's entry point and final destination are
    pinned by the scheduler); only the interior visiting order changes.
    Terminates when a full sweep finds no improving move or after
    ``max_rounds`` sweeps.

    Returns:
        The improved order (a new list; the input is not mutated).
    """
    points = as_points(points)
    order = list(int(i) for i in order)
    n = len(order)
    if n < 4:
        return order
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")

    def seg(a: int, b: int) -> float:
        d = points[a] - points[b]
        return float(np.hypot(d[0], d[1]))

    best_len = open_tour_length(points, order)
    for _ in range(max_rounds):
        improved = False
        # Reverse order[i:j+1]; endpoints 0 and n-1 never move.
        for i in range(1, n - 2):
            for j in range(i + 1, n - 1):
                a, b = order[i - 1], order[i]
                c, d = order[j], order[j + 1]
                delta = seg(a, c) + seg(b, d) - seg(a, b) - seg(c, d)
                if delta < -1e-12:
                    order[i : j + 1] = reversed(order[i : j + 1])
                    best_len += delta
                    improved = True
        if not improved:
            break
    return order
