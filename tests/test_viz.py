"""Tests for the ASCII and SVG visualizations."""

import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World
from repro.viz.ascii import render_field, render_series
from repro.viz.svg import field_svg, series_svg, write_svg


@pytest.fixture(scope="module")
def snapshot():
    cfg = SimulationConfig.small(sim_time_s=0.2 * DAY_S, seed=4)
    w = World(cfg)
    w.sim.run_until(cfg.sim_time_s / 2)
    return w.snapshot(), cfg


class TestAsciiField:
    def test_renders_grid_with_markers(self, snapshot):
        snap, cfg = snapshot
        out = render_field(snap, cfg.side_length_m, width=50, height=25)
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert len(lines) == 25 + 3  # grid + borders + legend
        assert "B" in out  # base station
        assert "T" in out  # targets
        assert "." in out or "o" in out

    def test_no_legend(self, snapshot):
        snap, cfg = snapshot
        out = render_field(snap, cfg.side_length_m, legend=False)
        assert "vehicle" not in out

    def test_too_small_grid(self, snapshot):
        snap, cfg = snapshot
        with pytest.raises(ValueError):
            render_field(snap, cfg.side_length_m, width=1)


class TestAsciiSeries:
    def test_basic_chart(self):
        out = render_series(
            {"a": ([0, 1, 2], [0.0, 1.0, 4.0]), "b": ([0, 1, 2], [4.0, 1.0, 0.0])},
            title="demo",
        )
        assert "demo" in out
        assert "* a" in out and "+ b" in out

    def test_flat_series(self):
        out = render_series({"flat": ([0, 1], [2.0, 2.0])})
        assert "flat" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series({})


class TestSvg:
    def test_field_svg_wellformed(self, snapshot):
        snap, cfg = snapshot
        svg = field_svg(snap, cfg.side_length_m, sensing_range=cfg.sensing_range_m, title="t")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<circle" in svg and "<rect" in svg

    def test_field_svg_parses_as_xml(self, snapshot):
        import xml.etree.ElementTree as ET

        snap, cfg = snapshot
        ET.fromstring(field_svg(snap, cfg.side_length_m))

    def test_series_svg_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        svg = series_svg(
            {"greedy": ([0, 0.5, 1.0], [3.1, 2.9, 2.4])},
            title="Fig 6a",
            x_label="ERP",
            y_label="MJ",
        )
        ET.fromstring(svg)
        assert "Fig 6a" in svg and "ERP" in svg

    def test_series_svg_escapes(self):
        svg = series_svg({"a<b": ([0, 1], [0, 1])}, title="x & y")
        assert "a&lt;b" in svg and "x &amp; y" in svg

    def test_write_svg(self, tmp_path):
        path = tmp_path / "chart.svg"
        write_svg(path, series_svg({"s": ([0, 1], [1, 2])}))
        assert path.read_text().startswith("<svg")

    def test_validation(self, snapshot):
        snap, cfg = snapshot
        with pytest.raises(ValueError):
            field_svg(snap, cfg.side_length_m, size_px=10)
        with pytest.raises(ValueError):
            series_svg({})
