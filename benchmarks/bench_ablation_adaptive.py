"""Ablation A5 — adaptive ERP (AIMD) vs the static sweep.

The paper picks K offline by sweeping Fig. 5; the adaptive controller
searches online. This bench compares the adaptive run against static
K in {0, 0.6, 1.0} on the experiment configuration and reports where
the controller settled.
"""

from repro.experiments import current_scale, run_cell
from repro.utils.tables import format_table

from _shared import emit


def bench_ablation_adaptive_erp(benchmark):
    scale = current_scale()

    def run():
        rows = []
        for erp in (0.0, 0.6, 1.0):
            cell = run_cell(scale, scheduler="combined", erp=erp)
            rows.append(
                [
                    f"static K={erp:.1f}",
                    cell["traveling_energy_j"] / 1e6,
                    100.0 * cell["avg_coverage_ratio"],
                    100.0 * cell["avg_nonfunctional_fraction"],
                ]
            )
        cfg = scale.base_config(scheduler="combined", erp=0.2, adaptive_erp=True)
        final_ks = []
        travel, cov, nonf = [], [], []
        for seed in scale.seeds:
            from repro.sim.world import World

            w = World(cfg.with_overrides(seed=seed))
            s = w.run()
            final_ks.append(w.erc.erp)
            travel.append(s.traveling_energy_j / 1e6)
            cov.append(100.0 * s.avg_coverage_ratio)
            nonf.append(100.0 * s.avg_nonfunctional_fraction)
        n = len(scale.seeds)
        rows.append(
            [
                f"adaptive (K -> {sum(final_ks) / n:.2f})",
                sum(travel) / n,
                sum(cov) / n,
                sum(nonf) / n,
            ]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["policy", "travel (MJ)", "coverage (%)", "nonfunc (%)"],
        rows,
        title="Ablation A5 - adaptive ERP vs static K (combined scheduler)",
    )
    emit("ablation_adaptive_erp", table)
    # The adaptive run must not travel more than the K=0 baseline.
    static0, adaptive = rows[0], rows[-1]
    assert adaptive[1] <= static0[1] * 1.05
