"""Unit tests for repro.geometry.field (incl. the paper's Eq. (1))."""

import math

import numpy as np
import pytest

from repro.geometry.field import Field, hexagon_covering_bound, minimum_sensors_eq1


class TestField:
    def test_base_station_at_center(self):
        f = Field(200.0)
        assert np.allclose(f.base_station, [100.0, 100.0])

    def test_area(self):
        assert Field(200.0).area == pytest.approx(40000.0)

    def test_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            Field(0.0)
        with pytest.raises(ValueError):
            Field(-5.0)

    def test_contains(self):
        f = Field(10.0)
        mask = f.contains([[5, 5], [0, 0], [10, 10], [10.1, 5], [-0.1, 5]])
        assert mask.tolist() == [True, True, True, False, False]

    def test_deploy_uniform_inside(self, rng):
        f = Field(50.0)
        pts = f.deploy_uniform(500, rng)
        assert pts.shape == (500, 2)
        assert f.contains(pts).all()

    def test_deploy_zero(self, rng):
        assert Field(10.0).deploy_uniform(0, rng).shape == (0, 2)

    def test_deploy_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            Field(10.0).deploy_uniform(-1, rng)

    def test_deploy_deterministic_per_seed(self):
        f = Field(30.0)
        a = f.deploy_uniform(20, np.random.default_rng(7))
        b = f.deploy_uniform(20, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_random_points_alias(self, rng):
        f = Field(30.0)
        assert f.random_points(5, rng).shape == (5, 2)


class TestEq1:
    def test_paper_parameters(self):
        # Sa = 200^2, r = 8: N = 3*sqrt(3)*40000 / (2*pi^2*64)
        expected = math.ceil(3 * math.sqrt(3) * 40000 / (2 * math.pi**2 * 64))
        assert minimum_sensors_eq1(40000.0, 8.0) == expected

    def test_scales_linearly_with_area(self):
        n1 = minimum_sensors_eq1(10000.0, 5.0)
        n2 = minimum_sensors_eq1(40000.0, 5.0)
        assert n2 in (4 * n1 - 4, 4 * n1 - 3, 4 * n1 - 2, 4 * n1 - 1, 4 * n1)

    def test_decreases_with_range(self):
        assert minimum_sensors_eq1(10000.0, 10.0) < minimum_sensors_eq1(10000.0, 5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            minimum_sensors_eq1(0.0, 5.0)
        with pytest.raises(ValueError):
            minimum_sensors_eq1(100.0, 0.0)

    def test_field_method_matches(self):
        f = Field(200.0)
        assert f.minimum_sensors(8.0) == minimum_sensors_eq1(40000.0, 8.0)


class TestHexagonBound:
    def test_value(self):
        # 2*Sa / (3*sqrt(3)*r^2)
        expected = math.ceil(2 * 40000 / (3 * math.sqrt(3) * 64))
        assert hexagon_covering_bound(40000.0, 8.0) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            hexagon_covering_bound(-1.0, 5.0)
        with pytest.raises(ValueError):
            hexagon_covering_bound(100.0, -2.0)

    def test_bounds_disagree_documented(self):
        """Eq. (1) as printed is looser than the classical bound."""
        assert minimum_sensors_eq1(40000.0, 8.0) < hexagon_covering_bound(40000.0, 8.0)
