"""Cross-module integration tests.

These exercise whole slices of the system: schedulers against the MIP
constraint checker, the world against conservation-style invariants,
and reproducibility across module boundaries.
"""

import numpy as np
import pytest

from repro.core.combined import CombinedScheduler
from repro.core.greedy import GreedyScheduler
from repro.core.insertion import InsertionScheduler
from repro.core.mip import RechargeInstance, verify_routes
from repro.core.partition import PartitionScheduler
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World

ALL_SCHEDULERS = [
    GreedyScheduler(),
    InsertionScheduler(),
    PartitionScheduler(3),
    CombinedScheduler(),
]


def random_instance(seed, n=20, budget=15000.0):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 200, size=(n, 2))
    demands = rng.uniform(500, 1500, size=n)
    clusters = rng.integers(-1, 4, size=n)
    reqs = [
        RechargeRequest(i, positions[i], float(demands[i]), int(clusters[i]))
        for i in range(n)
    ]
    views = [
        RVView(rv_id=i, position=rng.uniform(0, 200, size=2), budget_j=budget, em_j_per_m=5.6)
        for i in range(3)
    ]
    return positions, demands, reqs, views


class TestSchedulersSatisfyFormulation:
    """Every scheduler's output must be a feasible JRSSAM solution."""

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plans_pass_verify_routes(self, scheduler, seed):
        positions, demands, reqs, views = random_instance(seed)
        lst = RechargeNodeList(reqs)
        plans = scheduler.assign(lst, views, np.random.default_rng(seed))
        # Budget check per RV view, node-disjointness across the fleet.
        routes = []
        for rv_id, plan in plans.items():
            view = next(v for v in views if v.rv_id == rv_id)
            inst = RechargeInstance(
                positions,
                demands,
                start=view.position,
                em_j_per_m=view.em_j_per_m,
                capacity_j=view.budget_j,
            )
            # Each single route must be feasible against its own RV.
            verify_routes(inst, [list(plan.node_ids)])
            routes.append(list(plan.node_ids))
        # Fleet-level: no node served twice.
        flat = [n for r in routes for n in r]
        assert len(flat) == len(set(flat))

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_assigned_nodes_removed_from_list(self, scheduler):
        _, _, reqs, views = random_instance(7)
        lst = RechargeNodeList(reqs)
        plans = scheduler.assign(lst, views, np.random.default_rng(7))
        assigned = {n for p in plans.values() for n in p.node_ids}
        remaining = set(lst.node_ids.tolist())
        assert assigned.isdisjoint(remaining)
        assert assigned | remaining == set(range(20))

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS, ids=lambda s: s.name)
    def test_plan_accounting_consistent(self, scheduler):
        positions, demands, reqs, views = random_instance(3)
        lst = RechargeNodeList(reqs)
        plans = scheduler.assign(lst, views, np.random.default_rng(3))
        for plan in plans.values():
            # Travel equals the waypoint polyline length.
            seg = np.diff(plan.waypoints, axis=0)
            assert plan.travel_m == pytest.approx(
                float(np.hypot(seg[:, 0], seg[:, 1]).sum()), rel=1e-9
            )
            # Demand equals the sum of served nodes' demands.
            assert plan.demand_j == pytest.approx(
                float(demands[list(plan.node_ids)].sum())
            )


class TestWorldConservation:
    def world(self, **kw):
        defaults = dict(
            n_sensors=50,
            n_targets=3,
            n_rvs=2,
            side_length_m=70.0,
            sim_time_s=1 * DAY_S,
            battery_capacity_j=400.0,
            initial_charge_range=(0.5, 0.8),
            dispatch_period_s=1800.0,
            seed=13,
        )
        defaults.update(kw)
        return World(SimulationConfig(**defaults))

    def test_rv_books_close(self):
        w = self.world()
        s = w.run()
        for rv in w.rvs:
            assert rv.stats.moving_energy_j == pytest.approx(
                rv.stats.distance_m * w.cfg.rv_moving_cost_j_per_m
            )
        assert s.n_recharges == sum(rv.stats.nodes_recharged for rv in w.rvs)

    def test_delivered_bounded_by_possible_consumption(self):
        """RVs cannot deliver more than the network could ever absorb:
        initial deficit plus the worst-case drain over the horizon."""
        w = self.world()
        initial = w.bank.levels_j.copy()
        s = w.run()
        capacity = w.cfg.battery_capacity_j
        initial_deficit = float(np.sum(capacity - initial))
        # Absolute worst-case power: every sensor active + relaying hard.
        worst_power = w.cfg.n_sensors * (
            w.power.idle_power_w + w.power.active_sensing_power_w + w.power.relay_power_w(10.0)
        )
        assert s.delivered_energy_j <= initial_deficit + worst_power * s.sim_time_s

    def test_requested_mask_consistent_with_list(self):
        w = self.world()
        w.sim.run_until(w.cfg.sim_time_s / 3)
        listed = set(w.requests.node_ids.tolist())
        flagged = set(np.flatnonzero(w.requested).tolist())
        # Everything listed is flagged; flagged-but-not-listed nodes are
        # en route to being served (assigned to an RV itinerary).
        assert listed <= flagged
        in_itineraries = {n for rv in w.rvs for n in rv.itinerary}
        assert flagged - listed <= in_itineraries | flagged

    def test_run_is_reproducible_through_public_api(self):
        from repro import run_simulation

        cfg = SimulationConfig.small(seed=99)
        a = run_simulation(cfg)
        b = run_simulation(cfg)
        assert a.as_dict() == b.as_dict()


class TestActivationIntegration:
    def test_round_robin_spreads_load(self):
        """Within a surviving cluster, member battery levels stay closer
        together under round-robin than under full-time monitoring of a
        single unlucky sensor — the load-balancing claim of III-C."""
        cfg = SimulationConfig(
            n_sensors=60,
            n_targets=2,
            n_rvs=0,  # no recharging: watch pure drain
            side_length_m=60.0,
            sensing_range_m=20.0,
            sim_time_s=0.3 * DAY_S,
            battery_capacity_j=4000.0,
            initial_charge_range=(1.0, 1.0),
            target_period_s=2 * DAY_S,  # no relocation during the run
            seed=3,
        )
        w = World(cfg)
        w.sim.run_until(cfg.sim_time_s)
        w._advance_energy()
        for c in w.cluster_set:
            if c.size >= 2:
                levels = w.bank.levels_j[c.members]
                spread = levels.max() - levels.min()
                # One rotation slot of active drain bounds the spread.
                bound = (
                    w.power.active_sensing_power_w * cfg.tick_s * 2
                    + w.power.notification_energy_j() * 50
                )
                assert spread <= bound
