"""Fig. 5 — trade-off between energy efficiency and network performance.

Regenerates the two greedy-scheduler series against ERP: traveling
energy (declining) and target missing rate (climbing past ERP ~0.6).
Reuses the shared sweep's greedy slice.
"""

from repro.experiments import ERP_GRID, format_fig5

from _shared import emit, get_sweep


def bench_fig5_tradeoff(benchmark):
    def extract():
        sweep = get_sweep()
        g = sweep["greedy"]
        return {
            "erp": list(ERP_GRID),
            "traveling_energy_mj": [v / 1e6 for v in g["traveling_energy_j"]],
            "missing_rate_pct": [100.0 * (1.0 - v) for v in g["avg_coverage_ratio"]],
        }

    result = benchmark.pedantic(extract, rounds=1, iterations=1)
    emit("fig5_tradeoff", format_fig5(result))
    # Shape: traveling energy declines from ERP 0 to ERP 1.
    assert result["traveling_energy_mj"][-1] <= result["traveling_energy_mj"][0] * 1.02
    # Shape: the missing rate is (weakly) worse at full postponement.
    assert result["missing_rate_pct"][-1] >= result["missing_rate_pct"][0] - 0.5
