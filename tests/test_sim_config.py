"""Unit tests for SimulationConfig (incl. the paper's Table II)."""

import pytest

from repro.sim.config import DAY_S, HOUR_S, SimulationConfig


class TestTableII:
    """The paper() configuration must match Table II exactly."""

    def test_parameters(self):
        cfg = SimulationConfig.paper()
        assert cfg.n_sensors == 500
        assert cfg.n_targets == 15
        assert cfg.n_rvs == 3
        assert cfg.side_length_m == 200.0
        assert cfg.comm_range_m == 12.0
        assert cfg.sensing_range_m == 8.0
        assert cfg.sim_time_s == 120 * DAY_S
        assert cfg.target_period_s == 3 * HOUR_S
        assert cfg.threshold_fraction == 0.5
        assert cfg.rv_moving_cost_j_per_m == 5.6
        assert cfg.rv_speed_mps == 1.0

    def test_packet_rate(self):
        cfg = SimulationConfig.paper()
        assert cfg.power_model.packet_rate_hz == pytest.approx(15 / 60)
        assert cfg.power_model.payload_bytes == 20


class TestValidation:
    def test_bad_scheduler(self):
        with pytest.raises(ValueError):
            SimulationConfig(scheduler="magic")

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            SimulationConfig(activation="sometimes")

    def test_bad_clustering(self):
        with pytest.raises(ValueError):
            SimulationConfig(clustering="voronoi")

    def test_bad_erp(self):
        with pytest.raises(ValueError):
            SimulationConfig(erp=1.5)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_sensors=-1)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            SimulationConfig(threshold_fraction=2.0)

    def test_bad_initial_range(self):
        with pytest.raises(ValueError):
            SimulationConfig(initial_charge_range=(0.9, 0.5))

    def test_bad_times(self):
        with pytest.raises(ValueError):
            SimulationConfig(sim_time_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(dispatch_period_s=0.0)


class TestVariants:
    def test_with_overrides(self):
        cfg = SimulationConfig.paper().with_overrides(erp=0.6, scheduler="greedy")
        assert cfg.erp == 0.6
        assert cfg.scheduler == "greedy"
        assert cfg.n_sensors == 500  # untouched

    def test_small_is_fast_scale(self):
        cfg = SimulationConfig.small()
        assert cfg.n_sensors < 200
        assert cfg.sim_time_s <= 3 * DAY_S

    def test_experiment_documented_deviations(self):
        cfg = SimulationConfig.experiment()
        assert cfg.sensing_range_m == 14.0
        assert cfg.target_period_s == 48 * HOUR_S
        assert cfg.n_sensors == 500  # Table II scale preserved

    def test_experiment_accepts_overrides(self):
        cfg = SimulationConfig.experiment(erp=0.8, scheduler="partition")
        assert cfg.erp == 0.8

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(Exception):
            cfg.erp = 0.5  # type: ignore[misc]
