"""Tour utilities shared by the TSP heuristics and the schedulers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.points import as_points

__all__ = ["leg_lengths", "tour_length", "open_tour_length", "validate_tour"]


def leg_lengths(waypoints: np.ndarray) -> np.ndarray:
    """Length of each consecutive leg of a ``(k, 2)`` polyline.

    The one vectorized measurement every route-length consumer (tour
    utilities, route expansion, planned-route accounting) shares, so
    they all sum the identical per-leg ``np.hypot`` values.
    """
    seg = np.diff(waypoints, axis=0)
    return np.hypot(seg[:, 0], seg[:, 1])


def open_tour_length(points: np.ndarray, order: Sequence[int]) -> float:
    """Length of the open path visiting ``points[order]`` in sequence."""
    points = as_points(points)
    order = np.asarray(order, dtype=np.intp)
    if order.size < 2:
        return 0.0
    return float(leg_lengths(points[order]).sum())


def tour_length(points: np.ndarray, order: Sequence[int]) -> float:
    """Length of the closed tour through ``points[order]`` (returns to start)."""
    points = as_points(points)
    order = np.asarray(order, dtype=np.intp)
    if order.size < 2:
        return 0.0
    closed = np.concatenate([order, order[:1]])
    return open_tour_length(points, closed)


def validate_tour(order: Sequence[int], n: int) -> None:
    """Check that ``order`` is a permutation of ``range(n)``.

    Raises:
        ValueError: if the tour skips or repeats a city.
    """
    order = np.asarray(order, dtype=np.intp)
    if order.size != n or not np.array_equal(np.sort(order), np.arange(n)):
        raise ValueError(f"tour {order.tolist()} is not a permutation of range({n})")
