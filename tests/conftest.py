"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def square_points():
    """Four corners of the unit square plus the center."""
    return np.array(
        [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.5, 0.5]], dtype=float
    )
