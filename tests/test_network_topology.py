"""Unit tests for repro.network.topology."""

import numpy as np
import pytest

from repro.network.topology import Topology


def line_positions(n, spacing):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestTopology:
    def test_chain_graph(self):
        topo = Topology(line_positions(4, 1.0), comm_range=1.5)
        assert topo.n_edges == 3
        assert sorted(topo.neighbors(1).tolist()) == [0, 2]

    def test_weights_are_distances(self):
        topo = Topology(line_positions(3, 2.0), comm_range=2.5)
        assert np.allclose(topo.neighbor_weights(0), [2.0])

    def test_no_edges_beyond_range(self):
        topo = Topology(line_positions(3, 10.0), comm_range=5.0)
        assert topo.n_edges == 0
        assert topo.degree(0) == 0

    def test_base_station_appended(self):
        pts = line_positions(3, 1.0)
        topo = Topology(pts, comm_range=1.5, base_station=[1.0, 1.0])
        assert len(topo) == 4
        assert topo.base_index == 3
        # Base at (1,1) is within 1.5 of all three sensors.
        assert sorted(topo.neighbors(3).tolist()) == [0, 1, 2]

    def test_symmetry(self, rng):
        pts = rng.uniform(0, 30, size=(40, 2))
        topo = Topology(pts, comm_range=8.0)
        for u in range(40):
            for v in topo.neighbors(u):
                assert u in topo.neighbors(int(v))

    def test_connected_to_base(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [50.0, 50.0]])
        topo = Topology(pts, comm_range=1.5, base_station=[0.0, 1.0])
        mask = topo.is_connected_to_base()
        assert mask.tolist() == [True, True, False]

    def test_connected_to_base_requires_base(self):
        topo = Topology(line_positions(3, 1.0), comm_range=1.5)
        with pytest.raises(ValueError):
            topo.is_connected_to_base()

    def test_to_networkx_matches(self, rng):
        pts = rng.uniform(0, 20, size=(25, 2))
        topo = Topology(pts, comm_range=6.0, base_station=[10.0, 10.0])
        g = topo.to_networkx()
        assert g.number_of_nodes() == 26
        assert g.number_of_edges() == topo.n_edges
        for u, v, data in g.edges(data=True):
            d = np.hypot(*(topo.points[u] - topo.points[v]))
            assert data["weight"] == pytest.approx(d)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Topology(line_positions(3, 1.0), comm_range=0.0)

    def test_empty_network_with_base(self):
        topo = Topology(np.empty((0, 2)), comm_range=5.0, base_station=[0.0, 0.0])
        assert len(topo) == 1
        assert topo.n_sensors == 0
