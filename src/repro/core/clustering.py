"""Balanced cluster formation (the paper's Algorithm 1).

A cluster is the set of sensors assigned to monitor one target.  The
balanced clustering algorithm equalizes cluster sizes so no cluster
drains (and therefore requests recharge) much faster than the others:

* **Phase 1** builds, for every target ``i``, the candidate set ``P(i)``
  of sensors whose sensing disk contains it, and the pool ``A`` of all
  sensors that can see at least one target.  A sensor's *load* is the
  number of targets it can see; ``A`` is processed in ascending load
  order so sensors with fewer options are placed first.
* **Phase 2** walks ``A`` and assigns each sensor to the eligible
  target whose cluster is currently smallest (ties broken by target
  index, matching a stable ascending sort of the size counter ``U``).

Every sensor monitors at most one target (constraint (5)); targets seen
by no sensor simply get an empty cluster — constraint (6) is a property
of the deployment density, not something assignment can conjure.

A nearest-target baseline (:func:`nearest_target_clustering`) is
provided for the clustering ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry.coverage import detectors_of_targets
from ..geometry.points import as_points

__all__ = ["Cluster", "ClusterSet", "balanced_clustering", "nearest_target_clustering"]


@dataclass(frozen=True)
class Cluster:
    """One target's cluster.

    Attributes:
        cluster_id: index of the target this cluster monitors.
        members: sensor indices, sorted ascending — the round-robin
            rotation order starts from the lowest ID (Section III-C).
    """

    cluster_id: int
    members: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.members, dtype=np.intp)
        object.__setattr__(self, "members", np.sort(m))

    @property
    def size(self) -> int:
        return len(self.members)


class ClusterSet:
    """All clusters of one target epoch, plus the sensor-to-cluster map.

    Args:
        clusters: one :class:`Cluster` per target (index-aligned).
        n_sensors: total sensors in the network, for the membership map.
    """

    def __init__(self, clusters: Sequence[Cluster], n_sensors: int) -> None:
        self.clusters: List[Cluster] = list(clusters)
        self.n_sensors = int(n_sensors)
        self.membership = np.full(n_sensors, -1, dtype=np.int64)
        for c in self.clusters:
            if np.any(self.membership[c.members] >= 0):
                raise ValueError("a sensor was assigned to more than one cluster")
            self.membership[c.members] = c.cluster_id

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __getitem__(self, idx: int) -> Cluster:
        return self.clusters[idx]

    def sizes(self) -> np.ndarray:
        """Cluster sizes, index-aligned with targets."""
        return np.array([c.size for c in self.clusters], dtype=np.int64)

    def clustered_mask(self) -> np.ndarray:
        """Boolean mask over sensors: belongs to some cluster."""
        return self.membership >= 0

    def cluster_of(self, sensor: int) -> int:
        """Cluster id of ``sensor`` or ``-1``."""
        return int(self.membership[sensor])

    def spread(self) -> int:
        """Max minus min cluster size over non-empty-capable clusters —
        the balance figure of merit (0 is perfectly balanced)."""
        sizes = self.sizes()
        if len(sizes) == 0:
            return 0
        return int(sizes.max() - sizes.min())


def balanced_clustering(
    sensors: np.ndarray,
    targets: np.ndarray,
    sensing_range: float,
) -> ClusterSet:
    """Algorithm 1: balanced cluster formation.

    Args:
        sensors: ``(n, 2)`` sensor positions.
        targets: ``(m, 2)`` target positions.
        sensing_range: detection radius ``ds``.

    Returns:
        A :class:`ClusterSet` with one cluster per target.  Sensors that
        see no target stay unassigned; targets seen by no sensor get an
        empty cluster.
    """
    sensors = as_points(sensors)
    targets = as_points(targets)
    m = len(targets)
    n = len(sensors)

    # --- Phase 1: candidate sets P(i), pool A, sensor loads. ---
    candidates = detectors_of_targets(sensors, targets, sensing_range)
    load = np.zeros(n, dtype=np.int64)
    eligible = [set() for _ in range(n)]  # targets each sensor can see
    for t_idx, det in enumerate(candidates):
        for s in det:
            load[s] += 1
            eligible[s].add(t_idx)
    pool = np.flatnonzero(load > 0)
    # Ascending load; ties by sensor id for determinism.
    pool = pool[np.lexsort((pool, load[pool]))]

    # --- Phase 2: fill the smallest eligible cluster first. ---
    counts = np.zeros(m, dtype=np.int64)
    assignment: List[List[int]] = [[] for _ in range(m)]
    for s in pool:
        opts = eligible[s]
        if not opts:
            continue
        # sort(U, 'ascending') with stable target-index tie-break, then
        # take the first target whose P-set contains the sensor.
        best = min(opts, key=lambda t: (counts[t], t))
        assignment[best].append(int(s))
        counts[best] += 1

    clusters = [Cluster(t, np.array(mem, dtype=np.intp)) for t, mem in enumerate(assignment)]
    return ClusterSet(clusters, n)


def nearest_target_clustering(
    sensors: np.ndarray,
    targets: np.ndarray,
    sensing_range: float,
) -> ClusterSet:
    """Baseline: each covering sensor joins its *nearest* detected target.

    The natural unbalanced strategy the paper's balancing argument is
    made against — dense spots produce fat clusters, sparse spots
    starve.  Used by the clustering ablation (DESIGN.md A2).
    """
    sensors = as_points(sensors)
    targets = as_points(targets)
    m = len(targets)
    n = len(sensors)
    assignment: List[List[int]] = [[] for _ in range(m)]
    if m > 0 and n > 0:
        diff = sensors[:, None, :] - targets[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        in_range = dist <= sensing_range
        sees_any = in_range.any(axis=1)
        masked = np.where(in_range, dist, np.inf)
        nearest = np.argmin(masked, axis=1)
        for s in np.flatnonzero(sees_any):
            assignment[nearest[s]].append(int(s))
    clusters = [Cluster(t, np.array(mem, dtype=np.intp)) for t, mem in enumerate(assignment)]
    return ClusterSet(clusters, n)
