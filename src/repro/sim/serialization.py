"""JSON-friendly (de)serialization of configurations and summaries.

Configurations nest frozen dataclasses (charge model, radio, detector);
this module flattens them to plain dicts so runs can be described in
JSON files, launched from the CLI, and archived next to their results.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..energy.consumption import NodePowerModel, RadioModel, SensingModel
from ..energy.recharge import ChargeModel
from .config import SimulationConfig
from .metrics import SimulationSummary

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "restore_arrays",
    "snapshot_arrays",
    "summary_to_dict",
]


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """A plain-dict (JSON-serializable) view of a configuration."""
    return {
        "n_sensors": config.n_sensors,
        "n_targets": config.n_targets,
        "n_rvs": config.n_rvs,
        "side_length_m": config.side_length_m,
        "comm_range_m": config.comm_range_m,
        "sensing_range_m": config.sensing_range_m,
        "sim_time_s": config.sim_time_s,
        "target_period_s": config.target_period_s,
        "threshold_fraction": config.threshold_fraction,
        "rv_moving_cost_j_per_m": config.rv_moving_cost_j_per_m,
        "rv_speed_mps": config.rv_speed_mps,
        "erp": config.erp,
        "adaptive_erp": config.adaptive_erp,
        "rv_depot_dwell_s": config.rv_depot_dwell_s,
        "scheduler": config.scheduler,
        "activation": config.activation,
        "clustering": config.clustering,
        "target_mobility": config.target_mobility,
        "target_speed_mps": config.target_speed_mps,
        "routing_metric": config.routing_metric,
        "battery_capacity_j": config.battery_capacity_j,
        "self_discharge_fraction_per_day": config.self_discharge_fraction_per_day,
        "initial_charge_range": list(config.initial_charge_range),
        "rv_capacity_j": config.rv_capacity_j,
        "tick_s": config.tick_s,
        "dispatch_period_s": config.dispatch_period_s,
        "dispatch_on_idle": config.dispatch_on_idle,
        "seed": config.seed,
        "charge_model": {
            "power_w": config.charge_model.power_w,
            "efficiency": config.charge_model.efficiency,
        },
        "power_model": {
            "packet_rate_hz": config.power_model.packet_rate_hz,
            "payload_bytes": config.power_model.payload_bytes,
            "radio": {
                "tx_current_a": config.power_model.radio.tx_current_a,
                "rx_current_a": config.power_model.radio.rx_current_a,
                "idle_current_a": config.power_model.radio.idle_current_a,
                "voltage_v": config.power_model.radio.voltage_v,
                "bitrate_bps": config.power_model.radio.bitrate_bps,
                "overhead_bytes": config.power_model.radio.overhead_bytes,
            },
            "sensing": {
                "active_current_a": config.power_model.sensing.active_current_a,
                "idle_current_a": config.power_model.sensing.idle_current_a,
                "voltage_v": config.power_model.sensing.voltage_v,
            },
        },
    }


def config_from_dict(data: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_dict`
    output (missing keys fall back to the defaults)."""
    data = dict(data)
    charge = data.pop("charge_model", None)
    power = data.pop("power_model", None)
    kwargs: Dict[str, Any] = dict(data)
    if "initial_charge_range" in kwargs:
        kwargs["initial_charge_range"] = tuple(kwargs["initial_charge_range"])
    if charge is not None:
        kwargs["charge_model"] = ChargeModel(**charge)
    if power is not None:
        power = dict(power)
        radio = RadioModel(**power.pop("radio", {}))
        sensing = SensingModel(**power.pop("sensing", {}))
        kwargs["power_model"] = NodePowerModel(radio=radio, sensing=sensing, **power)
    return SimulationConfig(**kwargs)


def summary_to_dict(summary: SimulationSummary) -> Dict[str, float]:
    """Alias of :meth:`SimulationSummary.as_dict` for API symmetry."""
    return summary.as_dict()


def snapshot_arrays(state) -> Dict[str, np.ndarray]:
    """A flat-array snapshot of one :class:`SimulationState`.

    Every array is copied out of the live state, so two snapshots can
    be compared field-by-field (``np.array_equal``) regardless of which
    tick engine produced them — the SoA/reference equivalence tests
    assert bit-equality of exactly this dict.  Works with or without
    ``state.arrays``: the canonical buffers are the source of truth
    either way.
    """
    alive = state.bank.alive_mask()
    snap: Dict[str, np.ndarray] = {
        "time_s": np.array(state.now),
        "levels_j": state.bank.levels_j.copy(),
        "requested": state.requested.copy(),
        "alive": alive,
        "membership": state.cluster_set.membership.copy(),
        "pending_requests": np.asarray(state.requests.node_ids, dtype=np.int64),
    }
    if state.activator is not None:
        snap["active"] = state.activator.active_mask(alive)
    return snap


def restore_arrays(state, snapshot: Dict[str, np.ndarray]) -> None:
    """Write a :func:`snapshot_arrays` dict back into a live state —
    the inverse of the snapshot for the *canonical* buffers.

    Battery levels and request flags are written in place so the SoA
    views established by ``SimulationState.__post_init__`` stay aliased
    to the same memory; the clock is rebased to the snapshot time.

    The derived fields of the snapshot (``alive``, ``membership``,
    ``active``, ``pending_requests``) are not state of their own — they
    live in the cluster set, activator, and request backlog — so the
    full restore (:func:`repro.sim.replay.restore_world`) rebuilds those
    components and then re-derives the fields; this function only
    handles the flat arrays both engines share.
    """
    state.bank.levels_j[:] = snapshot["levels_j"]
    state.requested[:] = snapshot["requested"]
    state.sim.now = float(snapshot["time_s"])
