"""Unit tests for Algorithm 3 (insertion) and its chained repetition."""

import numpy as np
import pytest

from repro.core.insertion import (
    InsertionScheduler,
    build_insertion_sequence,
    expand_stops,
    plan_single_rv,
    plan_single_rv_chained,
)
from repro.core.requests import (
    RechargeNodeList,
    RechargeRequest,
    aggregate_by_cluster,
)
from repro.core.scheduling import RVView


def req(node_id, x, y, demand, cluster=-1):
    return RechargeRequest(node_id, np.array([x, y]), demand, cluster)


def view(rv_id=0, pos=(0.0, 0.0), budget=1e9, em=1.0):
    return RVView(rv_id=rv_id, position=np.array(pos), budget_j=budget, em_j_per_m=em)


def stops_of(reqs):
    return aggregate_by_cluster(reqs)


class TestBuildSequence:
    def test_destination_is_max_profit(self):
        stops = stops_of([req(0, 100, 0, 500), req(1, 10, 0, 50)])
        order = build_insertion_sequence(stops, [0, 0], 1e9, em_j_per_m=1.0)
        # Profits: 400 vs 40 -> destination is stop 0, and stop 1 lies
        # on the way (positive delta) so it is inserted before it.
        assert order == [1, 0]

    def test_on_path_nodes_inserted(self):
        stops = stops_of([req(0, 100, 0, 200), req(1, 50, 1, 60), req(2, 25, -1, 60)])
        order = build_insertion_sequence(stops, [0, 0], 1e9, em_j_per_m=1.0)
        assert order[-1] == 0
        assert set(order) == {0, 1, 2}
        # Inserted stops appear in travel order along the path.
        assert order == [2, 1, 0]

    def test_negative_delta_not_inserted(self):
        # A node far off the path with tiny demand is not worth the detour.
        stops = stops_of([req(0, 100, 0, 500), req(1, 50, 80, 1.0)])
        order = build_insertion_sequence(stops, [0, 0], 1e9, em_j_per_m=1.0)
        assert order == [0]

    def test_budget_limits_insertions(self):
        stops = stops_of([req(0, 10, 0, 50), req(1, 5, 0, 50)])
        # Destination is node 1 (profit 45 > 40); budget 70 covers it
        # (travel 5 + demand 50 = 55) but not also inserting node 0
        # (extra travel 5 + demand 50 = 55 more).
        order = build_insertion_sequence(stops, [0, 0], 70.0, em_j_per_m=1.0)
        assert order == [1]
        # With a bigger budget both fit.
        order = build_insertion_sequence(stops, [0, 0], 120.0, em_j_per_m=1.0)
        assert order == [0, 1] or order == [1, 0]
        assert set(order) == {0, 1}

    def test_unaffordable_instance_empty(self):
        stops = stops_of([req(0, 100, 0, 500)])
        assert build_insertion_sequence(stops, [0, 0], 10.0, em_j_per_m=1.0) == []

    def test_empty_stops(self):
        assert build_insertion_sequence([], [0, 0], 100.0, 1.0) == []

    def test_zero_budget(self):
        stops = stops_of([req(0, 1, 0, 1)])
        assert build_insertion_sequence(stops, [0, 0], 0.0, 1.0) == []

    def test_efficiency_inflates_cost(self):
        stops = stops_of([req(0, 1, 0, 50)])
        assert build_insertion_sequence(stops, [0, 0], 60.0, 1.0, charge_efficiency=0.5) == []
        assert build_insertion_sequence(stops, [0, 0], 102.0, 1.0, charge_efficiency=0.5) == [0]


class TestExpandStops:
    def test_cluster_expands_nearest_neighbor(self):
        reqs = [req(0, 50, 0, 10, cluster=1), req(1, 54, 0, 10, cluster=1), req(2, 52, 0, 10, cluster=1)]
        stops = stops_of(reqs)
        route = expand_stops(stops, [0], rv_position=np.array([0.0, 0.0]))
        assert route.node_ids == (0, 2, 1)
        assert route.travel_m == pytest.approx(54.0)
        assert route.demand_j == pytest.approx(30.0)

    def test_multi_stop_travel_measured_on_members(self):
        reqs = [req(0, 10, 0, 5), req(1, 20, 0, 5)]
        stops = stops_of(reqs)
        route = expand_stops(stops, [0, 1], rv_position=np.array([0.0, 0.0]))
        assert route.travel_m == pytest.approx(20.0)
        assert route.waypoints.shape == (3, 2)


class TestPlanSingleRV:
    def test_profit_accounting(self):
        plan = plan_single_rv([req(0, 10, 0, 100)], view(em=2.0))
        assert plan.profit_j == pytest.approx(100 - 20)

    def test_none_when_unaffordable(self):
        assert plan_single_rv([req(0, 10, 0, 100)], view(budget=5.0)) is None


class TestChained:
    def test_chains_until_list_empty(self):
        reqs = [req(i, 10.0 + i, 0, 20) for i in range(6)]
        plan = plan_single_rv_chained(reqs, view())
        assert len(plan.node_ids) == 6
        assert reqs == []  # consumed

    def test_chain_respects_budget(self):
        reqs = [req(0, 10, 0, 50), req(1, 90, 0, 50)]
        # Budget 70: serves node 0 (60) but cannot continue to node 1.
        plan = plan_single_rv_chained(reqs, view(budget=70.0))
        assert plan.node_ids == (0,)
        assert [r.node_id for r in reqs] == [1]

    def test_empty_list(self):
        assert plan_single_rv_chained([], view()) is None


class TestInsertionScheduler:
    def test_consumes_requests(self, rng):
        lst = RechargeNodeList([req(i, 5.0 * (i + 1), 0, 30) for i in range(4)])
        plans = InsertionScheduler().assign(lst, [view()], rng)
        assert len(lst) == 0
        assert sorted(plans[0].node_ids) == [0, 1, 2, 3]

    def test_sequential_rvs_share(self, rng):
        lst = RechargeNodeList(
            [req(0, 10, 0, 30), req(1, 12, 0, 30), req(2, 150, 0, 30), req(3, 152, 0, 30)]
        )
        views = [view(0, pos=(0, 0), budget=110.0), view(1, pos=(162, 0), budget=110.0)]
        plans = InsertionScheduler().assign(lst, views, rng)
        assert sorted(plans[0].node_ids) == [0, 1]
        assert sorted(plans[1].node_ids) == [2, 3]

    def test_cluster_served_atomically(self, rng):
        lst = RechargeNodeList(
            [req(0, 50, 0, 10, cluster=3), req(1, 51, 0, 10, cluster=3), req(2, 49, 0, 10, cluster=3)]
        )
        plans = InsertionScheduler().assign(lst, [view()], rng)
        assert sorted(plans[0].node_ids) == [0, 1, 2]
