"""The Combined-Scheme for multiple RVs (Section IV-D.2).

RVs are scheduled one after another against the *entire* recharge node
list: the first idle RV gets the best insertion sequence over the whole
list, its nodes are removed, the next RV plans over the remainder, and
so on.  RVs therefore keep a global view — they may travel farther than
under the Partition-Scheme, but high-profit nodes anywhere in the field
are always reachable, which is why the paper finds the Combined-Scheme
recharges the most energy and leaves the fewest nonfunctional sensors
(52% fewer than greedy).

Mechanically this is exactly the
:class:`~repro.core.insertion.InsertionScheduler` applied to a fleet —
the class exists to carry the paper's name and the scheme's identity in
experiment configs.
"""

from __future__ import annotations

from .insertion import InsertionScheduler

__all__ = ["CombinedScheduler"]


class CombinedScheduler(InsertionScheduler):
    """Sequential global scheduling of every RV (Combined-Scheme)."""

    name = "combined"
