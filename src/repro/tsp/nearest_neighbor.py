"""Nearest-neighbour tour construction.

The paper guides the recharging tour *inside* a cluster with "a
canonical TSP algorithm, such as the nearest neighbor algorithm with
time complexity O(nc^2)" (Section IV-C).  This module implements exactly
that heuristic for open paths starting from the RV's entry point.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.points import as_points, distances_from

__all__ = ["nearest_neighbor_order"]


def nearest_neighbor_order(
    points: np.ndarray,
    start: Optional[np.ndarray] = None,
) -> List[int]:
    """Visit order produced by the nearest-neighbour heuristic.

    Args:
        points: ``(n, 2)`` cities to visit.
        start: optional external starting position (e.g. the RV's
            current location).  When given, the first city is the one
            nearest ``start``; otherwise city 0 starts the tour.

    Returns:
        A permutation of ``range(n)`` as a Python list.  Ties resolve to
        the lowest index, keeping the heuristic deterministic.
    """
    points = as_points(points)
    n = len(points)
    if n == 0:
        return []
    remaining = np.ones(n, dtype=bool)
    if start is not None:
        d0 = distances_from(start, points)
        current = int(np.argmin(d0))
    else:
        current = 0
    order = [current]
    remaining[current] = False
    for _ in range(n - 1):
        d = distances_from(points[current], points)
        d[~remaining] = np.inf
        current = int(np.argmin(d))
        order.append(current)
        remaining[current] = False
    return order
