"""Unit tests for the metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector


def finalize(collector, t_end=100.0, **kw):
    args = dict(
        rv_distance_m=0.0,
        rv_moving_energy_j=0.0,
        delivered_energy_j=0.0,
        n_sorties=0,
        events_fired=0,
    )
    args.update(kw)
    return collector.finalize(t_end, **args)


class TestTimeWeighting:
    def test_constant_signal(self):
        m = MetricsCollector()
        m.start(0.0, coverage=0.8, nonfunctional=0.1, operational=90.0)
        s = finalize(m, 100.0)
        assert s.avg_coverage_ratio == pytest.approx(0.8)
        assert s.avg_nonfunctional_fraction == pytest.approx(0.1)
        assert s.avg_operational_sensors == pytest.approx(90.0)
        assert s.missing_rate == pytest.approx(0.2)

    def test_step_change_weighted(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 100.0)
        m.record(50.0, 0.0, 0.5, 50.0)
        s = finalize(m, 100.0)
        assert s.avg_coverage_ratio == pytest.approx(0.5)
        assert s.avg_nonfunctional_fraction == pytest.approx(0.25)
        assert s.avg_operational_sensors == pytest.approx(75.0)

    def test_out_of_order_rejected(self):
        m = MetricsCollector()
        m.start(10.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            m.record(5.0, 1.0, 0.0, 1.0)

    def test_record_before_start_initializes(self):
        m = MetricsCollector()
        m.record(0.0, 0.5, 0.0, 10.0)
        s = finalize(m, 10.0)
        assert s.avg_coverage_ratio == pytest.approx(0.5)


class TestRequestLatency:
    def test_latency_tracked(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 1.0)
        m.note_request(7, 10.0)
        m.note_recharge(7, 25.0)
        s = finalize(m, 100.0)
        assert s.n_requests == 1
        assert s.n_recharges == 1
        assert s.mean_request_latency_s == pytest.approx(15.0)

    def test_unmatched_recharge_ignored_in_latency(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 1.0)
        m.note_recharge(3, 5.0)
        s = finalize(m, 10.0)
        assert s.n_recharges == 1
        assert s.mean_request_latency_s == 0.0


class TestSummary:
    def test_objective_is_delivered_minus_travel(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 1.0)
        s = finalize(m, 10.0, rv_moving_energy_j=300.0, delivered_energy_j=1000.0)
        assert s.objective_j == pytest.approx(700.0)
        assert s.objective_mj == pytest.approx(700.0 / 1e6)

    def test_recharging_cost(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 200.0)
        s = finalize(m, 10.0, rv_distance_m=5000.0)
        assert s.recharging_cost_m_per_sensor == pytest.approx(25.0)

    def test_recharging_cost_no_operational(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 1.0, 0.0)
        s = finalize(m, 10.0, rv_distance_m=100.0)
        assert s.recharging_cost_m_per_sensor == float("inf")

    def test_as_dict_roundtrip(self):
        m = MetricsCollector()
        m.start(0.0, 1.0, 0.0, 5.0)
        s = finalize(m, 10.0)
        d = s.as_dict()
        assert d["sim_time_s"] == 10.0
        assert set(d) >= {
            "traveling_energy_j",
            "avg_coverage_ratio",
            "recharging_cost_m_per_sensor",
        }
