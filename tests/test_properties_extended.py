"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.erc import AdaptiveEnergyRequestController
from repro.network.linkquality import prr_from_distance
from repro.sim.config import SimulationConfig
from repro.sim.serialization import config_from_dict, config_to_dict
from repro.utils.stats import mean_std, t_confidence_interval
from repro.utils.tables import format_table


@given(
    st.floats(0.0, 1.0),
    st.sampled_from(["greedy", "partition", "combined", "fcfs", "deadline"]),
    st.sampled_from(["round_robin", "full_time"]),
    st.sampled_from(["jump", "waypoint"]),
    st.sampled_from(["distance", "etx"]),
    st.booleans(),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_config_serialization_roundtrip(erp, sched, act, mob, metric, adaptive, seed):
    cfg = SimulationConfig.small(
        erp=erp,
        scheduler=sched,
        activation=act,
        target_mobility=mob,
        routing_metric=metric,
        adaptive_erp=adaptive,
        seed=seed,
    )
    assert config_from_dict(config_to_dict(cfg)) == cfg


@given(
    st.lists(st.floats(0.0, 30.0), min_size=1, max_size=30),
    st.floats(5.0, 30.0),
    st.floats(0.0, 1.0),
    st.floats(0.01, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_prr_bounds_and_monotonicity(distances, rng_m, grey, edge):
    d = np.sort(np.asarray(distances))
    prr = prr_from_distance(d, rng_m, grey_start_fraction=grey, edge_prr=edge)
    assert np.all(prr >= 0.0) and np.all(prr <= 1.0)
    # Non-increasing with distance.
    assert np.all(np.diff(prr) <= 1e-12)
    # Inside range, PRR is at least the edge value.
    inside = d <= rng_m
    assert np.all(prr[inside] >= edge - 1e-12)


@given(
    st.floats(0.0, 1.0),
    st.lists(st.booleans(), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_adaptive_erp_stays_in_bounds(initial, death_pattern):
    ctl = AdaptiveEnergyRequestController(
        initial_erp=initial, adjust_period_s=10.0, step_up=0.1, backoff=0.5
    )
    t = 0.0
    for died in death_pattern:
        t += 10.0
        if died:
            ctl.observe_deaths(1)
        ctl.maybe_adjust(t)
        assert 0.0 <= ctl.erp <= 1.0
    # History times strictly increase.
    times = [h[0] for h in ctl.history]
    assert times == sorted(times)


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_confidence_interval_contains_mean(values):
    m, s = mean_std(values)
    lo, hi = t_confidence_interval(values)
    assert lo - 1e-6 <= m <= hi + 1e-6
    assert s >= 0.0


@given(
    st.lists(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=2, max_size=2),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_format_table_always_renders(rows):
    out = format_table(["a", "b"], rows)
    lines = out.splitlines()
    # Header + separator + one line per row.
    assert len(lines) == 2 + len(rows)
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # perfectly aligned
