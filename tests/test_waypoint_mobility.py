"""Tests for the random-waypoint target mobility extension."""

import numpy as np
import pytest

from repro.geometry.field import Field
from repro.mobility.waypoint import RandomWaypointProcess
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.runner import run_simulation


class TestRandomWaypoint:
    def make(self, rng, m=5, period=3600.0, speed=1.0, side=100.0):
        return RandomWaypointProcess(Field(side), m, period, rng, speed_mps=speed)

    def test_positions_stay_inside(self, rng):
        tp = self.make(rng)
        for _ in range(20):
            tp.relocate()
            assert Field(100.0).contains(tp.positions).all()

    def test_displacement_bounded_by_speed(self, rng):
        tp = self.make(rng, speed=0.5, period=600.0)
        before = tp.positions.copy()
        tp.relocate()
        moved = np.hypot(*(tp.positions - before).T)
        assert np.all(moved <= 0.5 * 600.0 + 1e-6)

    def test_short_period_moves_straight(self, rng):
        """For a period too short to reach the waypoint, the step length
        equals exactly speed * period."""
        tp = self.make(rng, speed=0.1, period=10.0, side=1000.0)
        before = tp.positions.copy()
        tp.relocate()
        moved = np.hypot(*(tp.positions - before).T)
        assert np.allclose(moved, 1.0, atol=1e-6)

    def test_long_period_crosses_waypoints(self, rng):
        """A very long period forces waypoint renewals (the loop must
        terminate and keep positions valid)."""
        tp = self.make(rng, speed=5.0, period=50_000.0)
        tp.relocate()
        assert Field(100.0).contains(tp.positions).all()
        assert tp.epoch == 1

    def test_epoch_counts(self, rng):
        tp = self.make(rng)
        tp.relocate()
        tp.relocate()
        assert tp.epoch == 2

    def test_next_relocation_grid(self, rng):
        tp = self.make(rng, period=100.0)
        assert tp.next_relocation_after(0.0) == 100.0
        assert tp.next_relocation_after(150.0) == 200.0

    def test_zero_targets(self, rng):
        tp = self.make(rng, m=0)
        tp.relocate()
        assert tp.positions.shape == (0, 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            self.make(rng, m=-1)
        with pytest.raises(ValueError):
            self.make(rng, period=0.0)
        with pytest.raises(ValueError):
            self.make(rng, speed=-1.0)

    def test_deterministic(self):
        a = self.make(np.random.default_rng(5))
        b = self.make(np.random.default_rng(5))
        a.relocate()
        b.relocate()
        assert np.array_equal(a.positions, b.positions)


class TestWaypointInWorld:
    def test_simulation_runs(self):
        cfg = SimulationConfig.small(
            target_mobility="waypoint", target_speed_mps=0.3, sim_time_s=1 * DAY_S, seed=2
        )
        s = run_simulation(cfg)
        assert s.n_recharges > 0
        assert 0 <= s.avg_coverage_ratio <= 1

    def test_mobility_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(target_mobility="teleport")
        with pytest.raises(ValueError):
            SimulationConfig(target_speed_mps=0.0)

    def test_serialization_roundtrip(self):
        from repro.sim.serialization import config_from_dict, config_to_dict

        cfg = SimulationConfig.small(
            target_mobility="waypoint",
            target_speed_mps=0.7,
            self_discharge_fraction_per_day=0.01,
            rv_depot_dwell_s=120.0,
            adaptive_erp=True,
        )
        assert config_from_dict(config_to_dict(cfg)) == cfg


class TestSelfDischarge:
    def test_leak_drains_faster(self):
        base = dict(sim_time_s=1 * DAY_S, n_rvs=0, seed=9)
        no_leak = run_simulation(SimulationConfig.small(**base))
        leak = run_simulation(
            SimulationConfig.small(self_discharge_fraction_per_day=0.2, **base)
        )
        # Leaking batteries deplete sooner (or at least not later).
        assert leak.avg_nonfunctional_fraction >= no_leak.avg_nonfunctional_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(self_discharge_fraction_per_day=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(self_discharge_fraction_per_day=-0.1)
