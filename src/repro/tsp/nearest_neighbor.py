"""Nearest-neighbour tour construction.

The paper guides the recharging tour *inside* a cluster with "a
canonical TSP algorithm, such as the nearest neighbor algorithm with
time complexity O(nc^2)" (Section IV-C).  This module implements exactly
that heuristic for open paths starting from the RV's entry point.

The per-step "nearest unvisited city" pick is a masked argmin kernel
(:func:`repro.core.kernels.masked_argmin`); on the vectorized path the
city/city legs come out of the shared distance cache's pairwise matrix
(measured once) instead of a fresh ``distances_from`` per step.  Both
paths are bit-identical — the matrix rows hold the same ``np.hypot``
values the per-step measurement produces.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..geometry.points import as_points, distances_from

__all__ = ["nearest_neighbor_order"]


def nearest_neighbor_order(
    points: np.ndarray,
    start: Optional[np.ndarray] = None,
) -> List[int]:
    """Visit order produced by the nearest-neighbour heuristic.

    Args:
        points: ``(n, 2)`` cities to visit.
        start: optional external starting position (e.g. the RV's
            current location).  When given, the first city is the one
            nearest ``start``; otherwise city 0 starts the tour.

    Returns:
        A permutation of ``range(n)`` as a Python list.  Ties resolve to
        the lowest index, keeping the heuristic deterministic.
    """
    # Imported lazily: repro.core pulls this module in at package-init
    # time (requests -> nearest_neighbor), so a module-level import of
    # core.kernels here would be circular.
    from ..core import kernels

    points = as_points(points)
    n = len(points)
    if n == 0:
        return []
    cache = kernels.distance_cache_for(points) if kernels.vectorize_enabled() else None
    remaining = np.ones(n, dtype=bool)
    if start is not None:
        d0 = cache.from_point(start) if cache is not None else distances_from(start, points)
        current = kernels.masked_argmin(d0, remaining)
    else:
        current = 0
    order = [current]
    remaining[current] = False
    for _ in range(n - 1):
        d = cache.row(current) if cache is not None else distances_from(points[current], points)
        current = kernels.masked_argmin(d, remaining)
        order.append(current)
        remaining[current] = False
    return order
