"""Unit tests for the TSP toolkit."""

import itertools

import numpy as np
import pytest

from repro.tsp.nearest_neighbor import nearest_neighbor_order
from repro.tsp.tour import open_tour_length, tour_length, validate_tour
from repro.tsp.two_opt import two_opt


class TestTourLength:
    def test_open_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert open_tour_length(pts, [0, 1, 2, 3]) == pytest.approx(3.0)

    def test_closed_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert tour_length(pts, [0, 1, 2, 3]) == pytest.approx(4.0)

    def test_short_tours(self):
        pts = np.array([[0, 0], [1, 0]], dtype=float)
        assert open_tour_length(pts, [0]) == 0.0
        assert tour_length(pts, [1]) == 0.0

    def test_validate_accepts_permutation(self):
        validate_tour([2, 0, 1], 3)

    def test_validate_rejects_repeat(self):
        with pytest.raises(ValueError):
            validate_tour([0, 0, 1], 3)

    def test_validate_rejects_short(self):
        with pytest.raises(ValueError):
            validate_tour([0, 1], 3)


class TestNearestNeighbor:
    def test_line_visits_in_order(self):
        pts = np.column_stack([np.arange(5) * 1.0, np.zeros(5)])
        assert nearest_neighbor_order(pts, start=[-1.0, 0.0]) == [0, 1, 2, 3, 4]

    def test_no_start_begins_at_zero(self):
        pts = np.array([[0, 0], [5, 0], [1, 0]], dtype=float)
        order = nearest_neighbor_order(pts)
        assert order[0] == 0
        assert order == [0, 2, 1]

    def test_is_permutation(self, rng):
        pts = rng.uniform(0, 10, size=(20, 2))
        order = nearest_neighbor_order(pts, start=[0.0, 0.0])
        validate_tour(order, 20)

    def test_empty(self):
        assert nearest_neighbor_order(np.empty((0, 2))) == []

    def test_single(self):
        assert nearest_neighbor_order(np.array([[1.0, 1.0]])) == [0]

    def test_within_factor_of_optimal_small(self, rng):
        """NN on 7 cities: never worse than 2x the optimal open path."""
        pts = rng.uniform(0, 10, size=(7, 2))
        start = np.array([0.0, 0.0])
        nn = nearest_neighbor_order(pts, start=start)
        nn_len = open_tour_length(np.vstack([start, pts]), [0] + [i + 1 for i in nn])
        best = min(
            open_tour_length(np.vstack([start, pts]), [0] + [i + 1 for i in perm])
            for perm in itertools.permutations(range(7))
        )
        assert nn_len <= 2.0 * best + 1e-9


class TestTwoOpt:
    def test_fixes_crossing(self):
        # Path 0 -> 2 -> 1 -> 3 along a line is longer than 0 -> 1 -> 2 -> 3.
        pts = np.column_stack([np.arange(4) * 1.0, np.zeros(4)])
        improved = two_opt(pts, [0, 2, 1, 3])
        assert improved == [0, 1, 2, 3]

    def test_never_lengthens(self, rng):
        pts = rng.uniform(0, 10, size=(15, 2))
        order = list(rng.permutation(15))
        before = open_tour_length(pts, order)
        after_order = two_opt(pts, order)
        after = open_tour_length(pts, after_order)
        assert after <= before + 1e-9

    def test_keeps_endpoints(self, rng):
        pts = rng.uniform(0, 10, size=(12, 2))
        order = list(range(12))
        improved = two_opt(pts, order)
        assert improved[0] == 0 and improved[-1] == 11

    def test_is_permutation(self, rng):
        pts = rng.uniform(0, 10, size=(10, 2))
        improved = two_opt(pts, list(rng.permutation(10)))
        validate_tour(improved, 10)

    def test_short_tours_unchanged(self):
        pts = np.zeros((3, 2))
        assert two_opt(pts, [2, 0, 1]) == [2, 0, 1]

    def test_does_not_mutate_input(self, rng):
        pts = rng.uniform(0, 10, size=(8, 2))
        order = [3, 1, 4, 0, 2, 5, 6, 7]
        original = list(order)
        two_opt(pts, order)
        assert order == original

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            two_opt(np.zeros((5, 2)), [0, 1, 2, 3, 4], max_rounds=0)
