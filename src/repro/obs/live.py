"""The live fleet telemetry plane: MetricsBus, SLOs, and HTTP endpoints.

Everything before this module was post-hoc: instruments were snapshot
at the end of a run, the sweep service answered one-shot ``stats``
RPCs, and worker health was only visible when a crash surfaced as a
respawn count.  This module adds the online layer:

* :class:`MetricsBus` — aggregates worker-side instrument deltas
  (piggybacked on the WarmPool's existing duplex pipes, one delta per
  task reply) into a parent-side registry.  Counters and histogram
  counts merge additively, which is commutative, so the totals are
  deterministic regardless of worker reply order — the same property
  span ``absorb()`` relies on.
* :class:`LiveServer` — a stdlib ``ThreadingHTTPServer`` on a daemon
  thread serving ``/metrics`` (Prometheus exposition via the same
  renderer as the file exporter), ``/healthz`` (per-worker state with
  ok/degraded/unhealthy thresholds) and ``/statusz`` (one JSON blob:
  in-flight jobs, latency histograms, store/cache/shm totals, batch
  occupancy).
* :class:`SloRule` / :class:`SloEvaluator` — objectives such as
  ``pool.task_s:p99<=0.5`` parsed from ``REPRO_SLO`` and checked
  against the bus at request boundaries, feeding violations through
  :meth:`repro.obs.monitors.MonitorSet.check_slo` into the standard
  pipeline (``monitors.violations`` counter, span events,
  ``REPRO_STRICT_MONITORS`` fail-fast).

The zero-overhead contract holds: nothing here is constructed unless
the plane is armed (``REPRO_LIVE`` / ``repro serve --live-port``), so
the default path allocates no bus, starts no threads and opens no
sockets.

Knobs:

* ``REPRO_LIVE`` — ``1`` arms the plane on an ephemeral port; any
  other integer is used as the port; unset/``0`` leaves it off.
* ``REPRO_LIVE_INTERVAL_S`` — sampler refresh period (default 1.0 s).
* ``REPRO_SLO`` — ``;``-separated rules, e.g.
  ``pool.task_s:p99<=0.5;pool.respawns:rate<=0.1``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional

from .exporters import prometheus_lines
from .instruments import DEFAULT_LATENCY_BUCKETS, Histogram, Instruments, PhaseTimer

__all__ = [
    "MetricsBus",
    "LiveServer",
    "SloRule",
    "SloEvaluator",
    "parse_slo_rules",
    "live_port_from_env",
    "live_interval_from_env",
    "set_worker_instruments",
    "worker_instruments",
]


# -- worker-side instrument hook --------------------------------------
#
# A warm-pool worker that streams stats owns one Instruments registry
# for its whole life.  Task functions that want to book into it (the
# batch runner recording occupancy) cannot be handed it through the
# payload — payloads are user data — so the worker parks it in this
# module-level slot and task code asks for it.  In the parent process
# the slot stays None and callers fall back to their usual defaults.

_WORKER_INSTRUMENTS: Optional[Instruments] = None


def set_worker_instruments(instruments: Optional[Instruments]) -> None:
    """Install (or clear) the current process's worker registry."""
    global _WORKER_INSTRUMENTS
    _WORKER_INSTRUMENTS = instruments


def worker_instruments() -> Optional[Instruments]:
    """The worker registry, or None outside a streaming worker."""
    return _WORKER_INSTRUMENTS


# -- knobs ------------------------------------------------------------


def live_port_from_env() -> Optional[int]:
    """The port ``REPRO_LIVE`` asks for: None off, 0 ephemeral.

    ``REPRO_LIVE=1`` means "armed, pick a free port" (1 is a reserved
    port nobody can bind anyway); any other positive integer is the
    port itself; ``0``/empty/unset leaves the plane off.
    """
    raw = os.environ.get("REPRO_LIVE", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_LIVE must be an integer, got {raw!r}")
    if value <= 0:
        return None
    return 0 if value == 1 else value


def live_interval_from_env() -> float:
    """Sampler refresh period from ``REPRO_LIVE_INTERVAL_S`` (>= 0.05 s)."""
    raw = os.environ.get("REPRO_LIVE_INTERVAL_S", "").strip()
    if not raw:
        return 1.0
    return max(0.05, float(raw))


# -- metrics bus ------------------------------------------------------


class MetricsBus:
    """Parent-side aggregation point for worker instrument deltas.

    Workers snapshot-and-reset their local registry after each task
    and attach the delta to the reply tuple; the pool calls
    :meth:`absorb` as replies drain.  Counters and histogram/timer
    summaries fold additively into one parent :class:`Instruments`
    (order-independent); gauges are point-in-time per worker, so they
    are kept on per-worker rows instead of being summed into
    nonsense.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.instruments = Instruments()
        #: wid -> {"deltas": int, "counters": {...}, "gauges": {...}}
        self._per_worker: Dict[int, Dict[str, Any]] = {}

    def absorb(self, delta: Optional[Dict[str, Any]], worker: int) -> None:
        """Fold one worker snapshot delta into the aggregate."""
        if not delta:
            return
        with self._lock:
            row = self._per_worker.setdefault(
                worker, {"deltas": 0, "counters": {}, "gauges": {}}
            )
            row["deltas"] += 1
            for name, value in delta.get("counters", {}).items():
                self.instruments.counter(name).inc(value)
                row["counters"][name] = row["counters"].get(name, 0.0) + value
            for name, value in delta.get("gauges", {}).items():
                row["gauges"][name] = value
            for name, summary in delta.get("histograms", {}).items():
                buckets = summary.get("bucket_bounds") or (
                    DEFAULT_LATENCY_BUCKETS if "buckets" in summary else None
                )
                self.instruments.histogram(name, buckets).merge(summary)
            for name, summary in delta.get("timers", {}).items():
                buckets = summary.get("bucket_bounds") or (
                    DEFAULT_LATENCY_BUCKETS if "buckets" in summary else None
                )
                remapped = {
                    "count": summary.get("count", 0),
                    "total": summary.get("total_s", 0.0),
                    "min": summary.get("min_s", 0.0),
                    "max": summary.get("max_s", 0.0),
                }
                if "buckets" in summary:
                    remapped["buckets"] = summary["buckets"]
                self.instruments.timer(name, buckets).merge(remapped)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self.instruments.snapshot()

    def worker_rows(self) -> Dict[int, Dict[str, Any]]:
        """Per-worker cumulative totals (JSON-friendly copy)."""
        with self._lock:
            return {
                wid: {
                    "deltas": row["deltas"],
                    "counters": dict(row["counters"]),
                    "gauges": dict(row["gauges"]),
                }
                for wid, row in self._per_worker.items()
            }

    def bucket_bounds(self) -> Dict[str, List[float]]:
        """Instrument name -> bucket upper bounds, for exposition."""
        with self._lock:
            out: Dict[str, List[float]] = {}
            for name in self.instruments.names():
                inst = self.instruments._instruments[name]
                if isinstance(inst, (Histogram, PhaseTimer)) and inst.buckets:
                    out[name] = list(inst.buckets)
            return out


# -- SLO rules --------------------------------------------------------


@dataclass(frozen=True)
class SloRule:
    """One parsed objective: ``<instrument>:<stat><=<threshold>``.

    Stats: ``p50``/``p90``/``p99`` (bucketed histogram quantiles),
    ``mean``, ``max``, ``count``, ``total``, ``value`` (counter or
    gauge reading), ``rate`` (counter value divided by elapsed
    seconds since the evaluator armed).
    """

    instrument: str
    stat: str
    threshold: float

    @property
    def name(self) -> str:
        return f"{self.instrument}:{self.stat}<={self.threshold:g}"


def parse_slo_rules(spec: str) -> List[SloRule]:
    """Parse a ``REPRO_SLO`` spec: ``;``-separated rule strings."""
    rules: List[SloRule] = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        head, sep, raw_threshold = part.partition("<=")
        if not sep:
            raise ValueError(f"SLO rule {part!r} must contain '<='")
        instrument, sep, stat = head.partition(":")
        if not sep or not instrument or not stat:
            raise ValueError(f"SLO rule {part!r} must look like 'name:stat<=value'")
        stat = stat.strip().lower()
        if stat not in ("p50", "p90", "p99", "mean", "max", "count", "total", "value", "rate"):
            raise ValueError(f"SLO rule {part!r}: unknown stat {stat!r}")
        rules.append(SloRule(instrument.strip(), stat, float(raw_threshold)))
    return rules


class SloEvaluator:
    """Checks SLO rules against a bus and reports through monitors.

    Evaluation happens at request boundaries in the service's accept
    thread — never inside the HTTP handler threads — so a strict
    violation raises where the service can actually fail fast rather
    than silently killing a scrape thread.
    """

    _QUANTILES = {"p50": 0.50, "p90": 0.90, "p99": 0.99}

    def __init__(self, rules: List[SloRule], monitors: Any) -> None:
        self.rules = rules
        self.monitors = monitors
        self._armed_at = time.monotonic()
        self.last_results: List[Dict[str, Any]] = []

    def _observe(self, rule: SloRule, instruments: Instruments) -> Optional[float]:
        inst = instruments._instruments.get(rule.instrument)
        if inst is None:
            return None
        if rule.stat in self._QUANTILES:
            if getattr(inst, "buckets", None) is None:
                return None
            return inst.quantile(self._QUANTILES[rule.stat])
        if rule.stat == "rate":
            elapsed = max(1e-9, time.monotonic() - self._armed_at)
            return getattr(inst, "value", getattr(inst, "count", 0.0)) / elapsed
        if rule.stat == "value":
            return getattr(inst, "value", None)
        if rule.stat in ("mean", "max", "count", "total"):
            return getattr(inst, rule.stat, None)
        return None

    def evaluate(self, bus: MetricsBus, t: float = 0.0) -> List[Dict[str, Any]]:
        """Check every rule; returns per-rule results (also cached)."""
        results: List[Dict[str, Any]] = []
        with bus._lock:
            for rule in self.rules:
                observed = self._observe(rule, bus.instruments)
                row = {
                    "rule": rule.name,
                    "observed": observed,
                    "threshold": rule.threshold,
                }
                if observed is None:
                    row["ok"] = True  # nothing recorded yet
                    results.append(row)
                    continue
                row["observed"] = float(observed)
                results.append(row)
        # Monitor calls outside the bus lock: strict mode raises.
        for row in results:
            if "ok" not in row:
                row["ok"] = self.monitors.check_slo(
                    row["rule"], row["observed"], row["threshold"], t
                )
        self.last_results = results
        return results


# -- HTTP endpoints ---------------------------------------------------


class _LiveHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /statusz to the server's callables."""

    server_version = "repro-live/1"

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # stay quiet; the service owns stdout

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        live: "LiveServer" = self.server.live  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = live.render_metrics().encode("utf-8")
                self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path == "/healthz":
                payload = live.health_fn()
                status = 503 if payload.get("status") == "unhealthy" else 200
                self._send(
                    status,
                    "application/json",
                    json.dumps(payload, sort_keys=True).encode("utf-8"),
                )
            elif path == "/statusz":
                payload = live.status_fn()
                self._send(
                    200,
                    "application/json",
                    json.dumps(payload, sort_keys=True).encode("utf-8"),
                )
            else:
                self._send(404, "text/plain", b"not found: try /metrics /healthz /statusz\n")
        except BrokenPipeError:  # client went away mid-write
            pass
        except Exception as exc:  # defensive: a scrape must not kill the server
            try:
                self._send(500, "text/plain", f"error: {exc!r}\n".encode("utf-8"))
            except Exception:
                pass


class LiveServer:
    """The embedded HTTP plane: /metrics, /healthz, /statusz.

    Binds 127.0.0.1 only (this is an operator plane, not a public
    API); ``port=0`` picks a free ephemeral port, exposed as
    ``self.port``.  A background sampler thread refreshes gauges via
    ``sample_fn`` every ``interval_s`` so scrapes see fresh
    point-in-time values without blocking the service loop.  All
    threads are daemons and ``close()`` is idempotent.
    """

    def __init__(
        self,
        bus: MetricsBus,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        status_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        health_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        sample_fn: Optional[Callable[[], None]] = None,
        interval_s: float = 1.0,
        extra_summary_fn: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        self.bus = bus
        self.status_fn = status_fn or (lambda: {})
        self.health_fn = health_fn or (lambda: {"status": "idle"})
        self.extra_summary_fn = extra_summary_fn
        self._httpd = ThreadingHTTPServer((host, port), _LiveHandler)
        self._httpd.daemon_threads = True
        self._httpd.live = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.25},
            name="repro-live-http",
            daemon=True,
        )
        self._serve_thread.start()
        self._stop = threading.Event()
        self._sampler: Optional[threading.Thread] = None
        if sample_fn is not None:
            def _loop() -> None:
                while not self._stop.wait(interval_s):
                    try:
                        sample_fn()
                    except Exception:
                        pass  # sampling must never take the plane down
            self._sampler = threading.Thread(
                target=_loop, name="repro-live-sampler", daemon=True
            )
            self._sampler.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def render_metrics(self) -> str:
        """The current bus state as Prometheus exposition text."""
        snapshot = self.bus.snapshot()
        summary = self.extra_summary_fn() if self.extra_summary_fn else None
        lines = prometheus_lines(snapshot, summary, self.bus.bucket_bounds())
        return "\n".join(lines) + "\n"

    def close(self) -> None:
        self._stop.set()
        try:
            self._httpd.shutdown()
        except Exception:
            pass
        self._httpd.server_close()
        if self._sampler is not None:
            self._sampler.join(timeout=2.0)
        self._serve_thread.join(timeout=2.0)

    def __enter__(self) -> "LiveServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
