"""Opt-in on-disk cache for experiment cells.

Figure sweeps re-run many identical simulations (e.g. regenerating
Fig. 6a after 6b at the same scale).  With ``REPRO_CACHE=<dir>`` set,
every completed run is stored as JSON keyed by the SHA-256 of its full
serialized configuration *plus a code token* (the package version and,
when the package lives in a git checkout, the current commit) — so a
cache hit is always the same simulation produced by the same code, and
upgrading or editing the simulator invalidates stale cells instead of
replaying them.  Unset (the default), everything runs fresh.

The executor (:mod:`repro.experiments.executor`) performs lookups and
stores in the parent process via :func:`cache_lookup` /
:func:`cache_store`; the ``cached_run*`` helpers remain the
single-config convenience API.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Dict, List, Optional, Sequence

from ..obs.manifest import git_revision
from ..sim.config import SimulationConfig
from ..sim.metrics import SimulationSummary
from ..sim.runner import run_simulation
from ..sim.serialization import config_to_dict

__all__ = [
    "cache_dir",
    "cache_lookup",
    "cache_store",
    "code_token",
    "config_key",
    "cached_run",
    "cached_run_seeds",
    "summary_from_dict",
]


def cache_dir() -> Optional[pathlib.Path]:
    """The cache directory from ``REPRO_CACHE``, or None (disabled)."""
    value = os.environ.get("REPRO_CACHE", "").strip()
    if not value:
        return None
    path = pathlib.Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


_CODE_TOKEN: Optional[Dict[str, Optional[str]]] = None


def code_token() -> Dict[str, Optional[str]]:
    """The code-identity part of the cache key, computed once.

    ``version`` is the installed package version; ``git_rev`` is the
    commit of the checkout the package is imported from (via the
    manifest helper, ``None`` outside a repository).  Together they make
    cached cells self-invalidating across code changes.
    """
    global _CODE_TOKEN
    if _CODE_TOKEN is None:
        from .. import __version__

        _CODE_TOKEN = {
            "version": __version__,
            "git_rev": git_revision(pathlib.Path(__file__).resolve().parent),
        }
    return _CODE_TOKEN


def config_key(config: SimulationConfig) -> str:
    """A stable content hash of the *complete* configuration + code.

    Two processes running the same code over the same configuration
    agree on the key; a different package version or git revision never
    collides with previously cached cells.
    """
    payload = json.dumps(
        {"config": config_to_dict(config), "code": code_token()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def summary_from_dict(data: dict) -> SimulationSummary:
    """Rebuild a summary from its :meth:`SimulationSummary.as_dict`.

    Count-valued fields are restored to ints.
    """
    kwargs = dict(data)
    for int_field in ("n_recharges", "n_sorties", "n_requests", "events_fired"):
        kwargs[int_field] = int(kwargs[int_field])
    return SimulationSummary(**kwargs)


def cache_lookup(config: SimulationConfig) -> Optional[SimulationSummary]:
    """The cached summary for ``config``, or None (miss / cache off)."""
    directory = cache_dir()
    if directory is None:
        return None
    path = directory / f"{config_key(config)}.json"
    if not path.exists():
        return None
    return summary_from_dict(json.loads(path.read_text()))


def cache_store(config: SimulationConfig, summary: SimulationSummary) -> None:
    """Store a completed run (no-op with the cache disabled)."""
    directory = cache_dir()
    if directory is None:
        return
    path = directory / f"{config_key(config)}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(summary.as_dict()))
    tmp.replace(path)  # atomic on POSIX: parallel writers can't corrupt


def cached_run(config: SimulationConfig) -> SimulationSummary:
    """Run one simulation, consulting/filling the cache when enabled."""
    hit = cache_lookup(config)
    if hit is not None:
        return hit
    summary = run_simulation(config)
    cache_store(config, summary)
    return summary


def cached_run_seeds(
    config: SimulationConfig, seeds: Sequence[int]
) -> List[SimulationSummary]:
    """Seed fan-out through the cache.

    Lookups happen here (in the caller's process); misses are executed
    through the executor's process pool, which honors
    ``REPRO_JOBS``/``REPRO_PROCS`` parallelism, and then stored.
    """
    from .executor import map_configs

    return map_configs([config.with_overrides(seed=s) for s in seeds])
