"""Fig. 6(a) — traveling energy of RVs vs ERP for the three schemes.

Paper shape: the Partition-Scheme saves the most traveling energy (41%
vs greedy), and all three decline as ERP grows.
"""

import numpy as np

from repro.experiments import ERP_GRID, format_panel, panel_a

from _shared import emit, get_sweep


def bench_fig6a_traveling_energy(benchmark):
    series = benchmark.pedantic(lambda: panel_a(get_sweep()), rounds=1, iterations=1)
    emit("fig6a_traveling_energy", format_panel("a", series, ERP_GRID))
    # Shape: partition is the cheapest scheme on (ERP-averaged) travel.
    means = {s: float(np.mean(v)) for s, v in series.items()}
    assert means["partition"] <= means["greedy"]
    assert means["partition"] <= means["combined"]
    # Shape: ERC reduces travel for every scheme.
    for s, v in series.items():
        assert v[-1] <= v[0] * 1.05, s
