"""Tests for the structured trace recorder and its World integration."""

import json

import numpy as np
import pytest

from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.trace import EventKind, NullRecorder, TraceRecorder
from repro.sim.world import World


def traced_world(**overrides):
    defaults = dict(
        n_sensors=40,
        n_targets=3,
        n_rvs=1,
        side_length_m=60.0,
        sim_time_s=0.5 * DAY_S,
        battery_capacity_j=400.0,
        initial_charge_range=(0.5, 0.8),
        dispatch_period_s=1800.0,
        seed=42,
    )
    defaults.update(overrides)
    trace = TraceRecorder()
    world = World(SimulationConfig(**defaults), trace=trace)
    return world, trace


class TestTraceRecorder:
    def test_emit_and_query(self):
        t = TraceRecorder()
        t.emit(1.0, EventKind.NODE_RECHARGED, 5, 100.0)
        t.emit(2.0, EventKind.SENSOR_DEPLETED, 6)
        assert t.count(EventKind.NODE_RECHARGED) == 1
        assert t.of_kind(EventKind.SENSOR_DEPLETED)[0].subject == 6
        assert list(t.between(0.5, 1.5))[0].kind is EventKind.NODE_RECHARGED

    def test_series(self):
        t = TraceRecorder()
        t.sample_series(0.0, "x", 1.0)
        t.sample_series(5.0, "x", 2.0)
        times, values = t.series_arrays("x")
        assert times.tolist() == [0.0, 5.0]
        assert values.tolist() == [1.0, 2.0]

    def test_series_arrays_never_sampled_matches_empty(self):
        """A never-sampled series and an empty one behave identically."""
        t = TraceRecorder()
        t.series["empty"] = []
        for name in ("empty", "missing"):
            times, values = t.series_arrays(name)
            assert times.shape == (0,)
            assert values.shape == (0,)

    def test_request_latencies_matching(self):
        t = TraceRecorder()
        t.emit(0.0, EventKind.REQUEST_RELEASED, 1)
        t.emit(10.0, EventKind.NODE_RECHARGED, 1, 50.0)
        t.emit(12.0, EventKind.NODE_RECHARGED, 2, 50.0)  # never requested
        lats = t.request_latencies()
        assert lats == [(1, 10.0)]

    def test_request_latencies_re_released(self):
        """A node whose request is re-released before service counts once,
        from the latest release; a full serve/re-release cycle counts twice."""
        t = TraceRecorder()
        t.emit(0.0, EventKind.REQUEST_RELEASED, 7)
        t.emit(4.0, EventKind.REQUEST_RELEASED, 7)  # re-release, still pending
        t.emit(10.0, EventKind.NODE_RECHARGED, 7, 50.0)
        t.emit(20.0, EventKind.REQUEST_RELEASED, 7)  # new cycle after service
        t.emit(23.0, EventKind.NODE_RECHARGED, 7, 50.0)
        assert t.request_latencies() == [(7, 6.0), (7, 3.0)]

    def test_between_boundaries(self):
        """between() is inclusive at t0 and exclusive at t1."""
        t = TraceRecorder()
        t.emit(1.0, EventKind.ROTATION, 0)
        t.emit(2.0, EventKind.ROTATION, 1)
        t.emit(3.0, EventKind.ROTATION, 2)
        got = [e.subject for e in t.between(1.0, 3.0)]
        assert got == [0, 1]
        assert list(t.between(5.0, 9.0)) == []

    def test_rv_trail_filters_by_rv(self):
        t = TraceRecorder()
        t.emit(1.0, EventKind.RV_ARRIVED, 0, 12)
        t.emit(2.0, EventKind.RV_ARRIVED, 1, 34)  # other RV
        t.emit(3.0, EventKind.RV_ARRIVED, 0, 56)
        assert t.rv_trail(0) == [(1.0, 12), (3.0, 56)]
        assert t.rv_trail(2) == []

    def test_summary_counts_unit(self):
        t = TraceRecorder()
        assert t.summary_counts() == {}
        t.emit(0.0, EventKind.ROTATION)
        t.emit(1.0, EventKind.ROTATION)
        t.emit(2.0, EventKind.SENSOR_DEPLETED, 3)
        assert t.summary_counts() == {"rotation": 2, "sensor_depleted": 1}

    def test_null_recorder_is_noop(self):
        n = NullRecorder()
        n.emit(0.0, EventKind.ROTATION)
        n.sample_series(0.0, "x", 1.0)
        assert not n.enabled


class TestTraceJsonl:
    def test_round_trip_exact(self, tmp_path):
        t = TraceRecorder()
        t.emit(0.5, EventKind.REQUEST_RELEASED, 3)
        t.emit(1.5, EventKind.NODE_RECHARGED, 3, 42.25)
        t.sample_series(0.0, "coverage", 0.9)
        t.sample_series(2.0, "coverage", 0.8)
        t.sample_series(1.0, "backlog", 4.0)
        path = t.write_jsonl(tmp_path / "trace.jsonl")
        back = TraceRecorder.read_jsonl(path)
        assert back.events == t.events
        assert back.series == t.series
        # Load -> re-emit reproduces the file byte for byte, so an
        # archived trace and a live one are interchangeable on disk.
        assert back.write_jsonl(tmp_path / "again.jsonl").read_bytes() == \
            path.read_bytes()

    def test_round_trip_from_world_run(self, tmp_path):
        world, trace = traced_world()
        world.run()
        back = TraceRecorder.read_jsonl(trace.write_jsonl(tmp_path / "t.jsonl"))
        assert back.events == trace.events
        assert back.series == trace.series
        assert back.summary_counts() == trace.summary_counts()

    def test_lines_are_tagged_json(self, tmp_path):
        t = TraceRecorder()
        t.emit(0.0, EventKind.ROTATION)
        t.sample_series(0.0, "x", 1.0)
        lines = list(t.to_jsonl_lines())
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["event", "sample"]

    def test_unknown_type_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "t": 0.0, "kind": "rotation"}\n'
                        '{"type": "bogus"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            TraceRecorder.read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('\n{"type": "sample", "t": 1.0, "series": "x", "value": 2.0}\n\n')
        back = TraceRecorder.read_jsonl(path)
        assert back.series == {"x": [(1.0, 2.0)]}


class TestWorldTracing:
    def test_recharge_events_match_metrics(self):
        world, trace = traced_world()
        summary = world.run()
        assert trace.count(EventKind.NODE_RECHARGED) == summary.n_recharges
        assert trace.count(EventKind.REQUEST_RELEASED) == summary.n_requests

    def test_relocations_traced(self):
        world, trace = traced_world()
        world.run()
        expected = int(world.cfg.sim_time_s // world.cfg.target_period_s)
        assert trace.count(EventKind.TARGETS_RELOCATED) == expected

    def test_events_time_ordered(self):
        world, trace = traced_world()
        world.run()
        times = [e.time_s for e in trace.events]
        assert times == sorted(times)

    def test_series_sampled(self):
        world, trace = traced_world()
        world.run()
        for name in ("coverage", "nonfunctional", "operational", "backlog"):
            times, values = trace.series_arrays(name)
            assert len(times) > 10
            assert np.all(np.diff(times) >= 0)

    def test_rv_trail_matches_recharges(self):
        world, trace = traced_world()
        world.run()
        trail = trace.rv_trail(0)
        recharged = trace.of_kind(EventKind.NODE_RECHARGED)
        assert len(trail) == len(recharged)

    def test_latencies_match_summary(self):
        world, trace = traced_world()
        summary = world.run()
        lats = [l for _, l in trace.request_latencies()]
        if lats:
            assert np.mean(lats) == pytest.approx(summary.mean_request_latency_s, rel=1e-6)

    def test_summary_counts(self):
        world, trace = traced_world()
        world.run()
        counts = trace.summary_counts()
        assert counts["node_recharged"] == trace.count(EventKind.NODE_RECHARGED)

    def test_tracing_does_not_change_results(self):
        """A traced run and an untraced run are bit-identical."""
        world_t, _ = traced_world(seed=5)
        s1 = world_t.run()
        cfg = world_t.cfg
        s2 = World(cfg).run()
        assert s1.as_dict() == s2.as_dict()
