"""The Energy Request Control gate and the recharge backlog.

:class:`RequestGate` owns the base station's view of demand: it runs
the configured ERC policy over the below-threshold mask, releases
requests onto the shared :class:`~repro.core.requests.RechargeNodeList`,
keeps the per-sensor ``requested`` flags, and clears both when an RV
refills a node.  Adaptive policies get their depletion feedback and
periodic adjustment hook through here as well, so the rest of the
system never touches the ERC object directly.
"""

from __future__ import annotations

import logging

import numpy as np

from ...core.erc import EnergyRequestController
from ...core.requests import RechargeRequest
from ...registry import ERC_POLICIES, erc_policy_name
from ..soa import _shadow_compare, debug_soa, erc_release_scan, erc_scan_applicable
from ..trace import EventKind
from .state import SimulationState

__all__ = ["RequestGate"]

logger = logging.getLogger(__name__)


class RequestGate:
    """ERC thresholding + recharge-node-list maintenance.

    Args:
        state: the shared simulation state (the gate maintains
            ``state.requests`` and ``state.requested``).
        erc: an ERC policy instance; built from the registry
            (``static`` or ``adaptive`` per the config) when omitted.
    """

    def __init__(
        self, state: SimulationState, erc: EnergyRequestController = None
    ) -> None:
        self.s = state
        if erc is None:
            erc = ERC_POLICIES.build(
                erc_policy_name(state.cfg.adaptive_erp), config=state.cfg
            )
        self.erc = erc
        # The array ERC scan replays exactly the base gate semantics; a
        # policy that overrides nodes_to_release keeps its own code.
        self.soa = state.arrays is not None and erc_scan_applicable(self.erc)
        self._debug_soa = debug_soa()
        obs = state.instruments
        self._t_check = obs.timer("gate.check")
        self._c_released = obs.counter("gate.requests_released")
        self._c_recharges = obs.counter("gate.recharges")
        self._g_backlog = obs.gauge("gate.backlog")
        self._sp = state.spans

    @property
    def requests(self):
        """The base station's pending-request list."""
        return self.s.requests

    @property
    def requested(self):
        """Boolean per sensor: request currently on the list."""
        return self.s.requested

    def check(self) -> bool:
        """Run the ERC gate; returns True if anything was released."""
        with self._t_check, self._sp.span("gate.check") as span:
            released = self._check()
            span.set(released=released)
            return released

    def _check(self) -> bool:
        s = self.s
        if self.soa:
            a = s.arrays
            # Same elementwise `<` as below_threshold_mask, written into
            # the preallocated gate scratch so the scan allocates only
            # its (small) release list.
            below = np.less(s.bank.levels_j, s.bank.threshold_j, out=a.below_scratch)
            to_release = erc_release_scan(
                a.cluster_id, a.sizes, below, s.requested, self.erc.erp, arrays=a
            )
            if self._debug_soa:
                ref = self.erc.nodes_to_release(s.cluster_set, below, s.requested)
                _shadow_compare(
                    "gate.release",
                    np.asarray(to_release, dtype=np.int64),
                    np.asarray(ref, dtype=np.int64),
                )
        else:
            below = s.bank.below_threshold_mask()
            to_release = self.erc.nodes_to_release(s.cluster_set, below, s.requested)
        if s.monitors.enabled:
            # Independent re-derivation of the max(ceil(nc*K), 1) gate,
            # before the masks below are mutated by the release loop.
            if self.soa:
                s.monitors.check_erc_release_arrays(
                    s.arrays.cluster_id,
                    s.arrays.sizes,
                    below,
                    s.requested,
                    to_release,
                    self.erc.erp,
                    s.now,
                    cluster_set=s.cluster_set,
                )
            else:
                s.monitors.check_erc_release(
                    s.cluster_set, below, s.requested, to_release, self.erc.erp, s.now
                )
        return self._release(to_release)

    def _release(self, to_release) -> bool:
        """Put ``to_release`` onto the backlog and update all request
        bookkeeping; returns True if anything was released.

        Factored out of :meth:`_check` so the batched engine
        (:mod:`repro.sim.batch`), which computes the release sets for a
        whole batch of worlds with one scan, reuses exactly the serial
        release path per world.
        """
        s = self.s
        for node in to_release:
            s.requests.add(
                RechargeRequest(
                    node_id=int(node),
                    position=s.sensor_pos[node],
                    demand_j=float(s.bank.demands_j[node]),
                    cluster_id=s.cluster_set.cluster_of(int(node)),
                    release_time_s=s.now,
                )
            )
            s.requested[node] = True
            s.metrics.note_request(int(node), s.now)
            if s.trace.enabled:
                s.trace.emit(
                    s.now,
                    EventKind.REQUEST_RELEASED,
                    int(node),
                    float(s.bank.demands_j[node]),
                )
        if to_release:
            logger.debug(
                "t=%.0fs: ERC released %d request(s), backlog %d",
                s.now, len(to_release), len(s.requests),
            )
            self._c_released.inc(len(to_release))
            if s.blackbox.enabled:
                s.blackbox.note("erc_released", [int(n) for n in to_release])
                s.blackbox.note("erp", float(self.erc.erp))
        self._g_backlog.set(len(s.requests))
        return bool(to_release)

    def mark_recharged(self, node: int) -> None:
        """Clear a node's request state after an RV refilled it."""
        self.s.requested[node] = False
        self.s.requests.remove(node)  # in case it was still listed
        self.s.metrics.note_recharge(node, self.s.now)
        self._c_recharges.inc()
        self._g_backlog.set(len(self.s.requests))

    def note_deaths(self, count: int) -> None:
        """Forward sensor depletions to policies that adapt on them."""
        observe = getattr(self.erc, "observe_deaths", None)
        if observe is not None:
            observe(count)

    def maybe_adjust(self) -> None:
        """Give adaptive policies their periodic tuning opportunity."""
        adjust = getattr(self.erc, "maybe_adjust", None)
        if adjust is not None:
            adjust(self.s.now)
