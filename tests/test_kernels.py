"""The vectorized scheduling kernels (repro.core.kernels).

Three layers of guarantees:

* each kernel's vectorized path is **bit-identical** to its scalar
  reference path (property-based, random inputs);
* the :class:`DistanceCache` / :func:`distance_cache_for` registry
  returns the same measurements as direct geometry calls and actually
  shares state on array identity;
* end to end, every registered scheduler produces the same plans with
  ``REPRO_VECTORIZE=0`` and ``=1``, and the 2-opt pass replays the
  exact scalar first-improvement move sequence.
"""

import contextlib
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import kernels
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView
from repro.geometry.points import distances_from, pairwise_distances
from repro.registry import SCHEDULERS
from repro.tsp.tour import leg_lengths, open_tour_length, validate_tour
from repro.tsp.two_opt import _two_opt_reference, _two_opt_vectorized, two_opt

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def points_strategy(min_n=1, max_n=14):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(2)),
        elements=coords,
    )


@contextlib.contextmanager
def env(**kv):
    """Temporarily set/unset environment knobs (hypothesis-safe: no
    function-scoped fixtures)."""
    old = {k: os.environ.get(k) for k in kv}
    for k, v in kv.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v
    try:
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def both_paths(call):
    """Run ``call`` on the vectorized and the reference path."""
    with env(REPRO_VECTORIZE="1", REPRO_DEBUG_VECTORIZE=None):
        vec = call()
    with env(REPRO_VECTORIZE="0", REPRO_DEBUG_VECTORIZE=None):
        ref = call()
    return vec, ref


# ----------------------------------------------------------------------
# knobs and counters
# ----------------------------------------------------------------------


class TestKnobs:
    def test_default_is_vectorized(self):
        with env(REPRO_VECTORIZE=None):
            assert kernels.vectorize_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no"])
    def test_opt_out_values(self, value):
        with env(REPRO_VECTORIZE=value):
            assert not kernels.vectorize_enabled()

    def test_debug_default_off(self):
        with env(REPRO_DEBUG_VECTORIZE=None):
            assert not kernels.debug_vectorize()

    def test_calls_counted_per_path(self):
        kernels.reset_kernel_calls()
        d = np.array([1.0, 2.0])
        with env(REPRO_VECTORIZE="1"):
            kernels.profit_vector(d, d, 1.0)
        with env(REPRO_VECTORIZE="0"):
            kernels.profit_vector(d, d, 1.0)
        assert kernels.KERNEL_CALLS == {"vectorized": 1, "reference": 1}
        kernels.reset_kernel_calls()
        assert kernels.KERNEL_CALLS == {"vectorized": 0, "reference": 0}

    def test_debug_mode_runs_both_and_passes(self):
        kernels.reset_kernel_calls()
        with env(REPRO_VECTORIZE="1", REPRO_DEBUG_VECTORIZE="1"):
            out = kernels.profit_vector(np.array([5.0]), np.array([1.0]), 2.0)
        assert out[0] == 3.0

    def test_debug_mode_raises_on_divergence(self):
        with env(REPRO_VECTORIZE="1", REPRO_DEBUG_VECTORIZE="1"):
            with pytest.raises(AssertionError, match="diverged"):
                kernels._dispatch(
                    "boom", lambda: 1.0, lambda: 2.0, lambda a, b: a == b
                )


# ----------------------------------------------------------------------
# distance cache
# ----------------------------------------------------------------------


class TestDistanceCache:
    def test_pairwise_matches_direct(self, rng):
        pts = rng.uniform(0, 50, size=(12, 2))
        cache = kernels.DistanceCache(pts)
        assert np.array_equal(cache.pairwise, pairwise_distances(pts))

    def test_row_without_matrix_matches_direct(self, rng):
        pts = rng.uniform(0, 50, size=(9, 2))
        cache = kernels.DistanceCache(pts)
        row = cache.row(3)
        assert cache._pairwise is None  # single row must not build the matrix
        assert np.array_equal(row, distances_from(pts[3], pts))
        assert cache.row(3) is row  # memoized

    def test_row_slices_existing_matrix(self, rng):
        pts = rng.uniform(0, 50, size=(7, 2))
        cache = kernels.DistanceCache(pts)
        _ = cache.pairwise
        assert np.array_equal(cache.row(2), pairwise_distances(pts)[2])

    def test_from_point_memoizes_per_origin(self, rng):
        pts = rng.uniform(0, 50, size=(8, 2))
        cache = kernels.DistanceCache(pts)
        origin = np.array([1.0, 2.0])
        first = cache.from_point(origin)
        assert np.array_equal(first, distances_from(origin, pts))
        # An equal-valued but distinct array hits the same memo entry.
        assert cache.from_point(np.array([1.0, 2.0])) is first

    def test_registry_shares_on_identity(self, rng):
        pts = rng.uniform(0, 50, size=(6, 2))
        assert kernels.distance_cache_for(pts) is kernels.distance_cache_for(pts)

    def test_registry_distinct_arrays_get_distinct_caches(self, rng):
        a = rng.uniform(0, 50, size=(6, 2))
        b = a.copy()
        assert kernels.distance_cache_for(a) is not kernels.distance_cache_for(b)


# ----------------------------------------------------------------------
# per-kernel vec == ref (property-based)
# ----------------------------------------------------------------------


demand_arrays = st.integers(1, 20).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(0, 500, allow_nan=False)),
        arrays(np.float64, n, elements=st.floats(0, 200, allow_nan=False)),
    )
)


class TestKernelEquivalence:
    @given(demand_arrays, st.floats(0, 10, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_profit_vector(self, dd, em):
        demands, dists = dd
        vec, ref = both_paths(lambda: kernels.profit_vector(demands, dists, em))
        assert np.array_equal(vec, ref)

    @given(demand_arrays, st.floats(0, 10, allow_nan=False), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_greedy_pick_with_mask(self, dd, em, pyrand):
        demands, dists = dd
        mask = np.array([pyrand.random() < 0.7 for _ in demands])
        vec, ref = both_paths(lambda: kernels.greedy_pick(demands, dists, em, mask=mask))
        assert vec == ref
        if not mask.any():
            assert vec is None

    @given(demand_arrays)
    @settings(max_examples=50, deadline=None)
    def test_masked_argmax_argmin(self, dd):
        values, _ = dd
        mask = np.ones(len(values), dtype=bool)
        vmax, rmax = both_paths(lambda: kernels.masked_argmax(values, mask))
        assert vmax == rmax == int(np.argmax(values))
        vmin, rmin = both_paths(lambda: kernels.masked_argmin(values, mask))
        assert vmin == rmin == int(np.argmin(values))

    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_argmax_2d(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-10, 10, size=(rows, cols))
        mask = rng.random((rows, cols)) < 0.6
        vec, ref = both_paths(lambda: kernels.masked_argmax_2d(values, mask))
        assert vec == ref
        if vec is not None:
            assert mask[vec]

    @given(points_strategy(min_n=2, max_n=12), st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_kmeans_assign(self, pts, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, len(pts) + 1))
        centroids = pts[rng.choice(len(pts), size=k, replace=False)]
        vec, ref = both_paths(lambda: kernels.kmeans_assign(pts, centroids))
        assert np.array_equal(vec, ref)
        assert vec.dtype == np.intp

    @given(st.integers(0, 2**32 - 1), st.integers(2, 14))
    @settings(max_examples=50, deadline=None)
    def test_insertion_eval(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 80, size=(n, 2))
        demands = rng.uniform(1, 100, size=n)
        dmat = pairwise_distances(pts)
        rv = rng.uniform(0, 80, size=2)
        dist0 = distances_from(rv, pts)
        split = int(rng.integers(1, n + 1))
        route = list(rng.permutation(n)[:split])
        remaining = [i for i in range(n) if i not in route]
        if not remaining:
            return
        vec, ref = both_paths(
            lambda: kernels.insertion_eval(dmat, dist0, demands, route, remaining, 5.6, 0.8)
        )
        assert np.array_equal(vec[0], ref[0])
        assert np.array_equal(vec[1], ref[1])
        assert vec[0].shape == (len(route), len(remaining))

    @given(st.integers(0, 2**32 - 1), st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_uplink_etx_vector(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 60, size=(n + 1, 2))  # +1: a base-station row
        parent = rng.integers(-1, n + 1, size=n + 1)
        parent[parent == np.arange(n + 1)] = -1  # no self-loops
        vec, ref = both_paths(
            lambda: kernels.uplink_etx_vector(pts, parent, n, 12.0)
        )
        assert np.array_equal(vec, ref)
        assert np.all(vec >= 1.0)


# ----------------------------------------------------------------------
# 2-opt: vectorized sweep replays the scalar move sequence
# ----------------------------------------------------------------------


class TestTwoOptEquivalence:
    @given(points_strategy(min_n=4, max_n=30), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_replays_reference_moves(self, pts, seed):
        rng = np.random.default_rng(seed)
        order = [int(i) for i in rng.permutation(len(pts))]
        ref = _two_opt_reference(pts, list(order), 50)
        vec = _two_opt_vectorized(pts, list(order), 50)
        assert vec == ref  # identical order, not merely identical length

    @given(points_strategy(min_n=4, max_n=25), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_never_lengthens_and_permutes(self, pts, seed):
        rng = np.random.default_rng(seed)
        order = [int(i) for i in rng.permutation(len(pts))]
        before = open_tour_length(pts, order)
        for vectorize in ("0", "1"):
            with env(REPRO_VECTORIZE=vectorize):
                improved = two_opt(pts, list(order))
            validate_tour(improved, len(pts))
            assert improved[0] == order[0]
            assert improved[-1] == order[-1]
            assert open_tour_length(pts, improved) <= before + 1e-9

    def test_leg_lengths_matches_tour_length(self, rng):
        pts = rng.uniform(0, 40, size=(9, 2))
        order = list(range(9))
        assert float(leg_lengths(pts[order]).sum()) == open_tour_length(pts, order)


# ----------------------------------------------------------------------
# end to end: every registered scheduler, vec == ref
# ----------------------------------------------------------------------


def _random_instance(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 16))
    pts = rng.uniform(0, 80, size=(n, 2))
    demands = rng.uniform(10, 150, size=n)
    clusters = rng.integers(-1, 3, size=n)
    requests = RechargeNodeList(
        RechargeRequest(i, pts[i], float(demands[i]), int(clusters[i]))
        for i in range(n)
    )
    views = [
        RVView(
            rv_id=j,
            position=rng.uniform(0, 80, size=2),
            budget_j=float(rng.uniform(2000, 20000)),
            em_j_per_m=5.6,
            charge_efficiency=0.8,
            depot=np.array([40.0, 40.0]),
        )
        for j in range(int(rng.integers(1, 4)))
    ]
    return requests, views


def _plan_fingerprint(plans):
    return {
        rv_id: (
            plan.node_ids,
            plan.waypoints.tobytes(),
            plan.travel_m,
            plan.demand_j,
            plan.profit_j,
        )
        for rv_id, plan in plans.items()
    }


class TestUplinkEtxEndToEnd:
    def test_state_uplink_etx_bit_identical(self):
        """``SimulationState.from_config`` under ETX routing yields a
        bit-identical ``uplink_etx`` vector on both kernel paths."""
        from repro.sim.components.state import SimulationState
        from repro.sim.config import SimulationConfig

        cfg = SimulationConfig(
            n_sensors=40,
            side_length_m=60.0,
            comm_range_m=12.0,
            routing_metric="etx",
            seed=2024,
        )
        etx = {}
        for vectorize in ("1", "0"):
            with env(REPRO_VECTORIZE=vectorize):
                etx[vectorize] = SimulationState.from_config(cfg).uplink_etx
        assert np.array_equal(etx["1"], etx["0"])
        assert np.all(etx["1"] >= 1.0)
        assert np.any(etx["1"] > 1.0)  # grey-zone links exist at this density


class TestSchedulersVectorizedVsReference:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS.names()))
    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_assign_identical(self, name, seed):
        fingerprints = {}
        for vectorize in ("1", "0"):
            scheduler = SCHEDULERS.build(name, fleet_size=3)
            observe = getattr(scheduler, "observe_time", None)
            if observe is not None:
                observe(0.0)
            requests, views = _random_instance(seed)
            with env(REPRO_VECTORIZE=vectorize, REPRO_DEBUG_VECTORIZE=None):
                plans = scheduler.assign(requests, views, np.random.default_rng(7))
            fingerprints[vectorize] = _plan_fingerprint(plans)
        assert fingerprints["1"] == fingerprints["0"]
