"""The persistent warm worker pool (repro.experiments.pool).

The two load-bearing properties: byte-identity with the serial
executor (pool reuse amortizes cost, never state), and resilience —
crashed workers are respawned with their in-flight tasks resubmitted,
task exceptions propagate without poisoning the pool, and nothing
warm-pool-related is even imported unless a caller opts in.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.executor import _TASK_FNS, map_configs
from repro.experiments.pool import (
    WarmPool,
    get_warm_pool,
    shm_available,
    shutdown_warm_pool,
)
from repro.obs import Instruments

TINY = ExperimentScale("tiny", days=1.0, seeds=(1, 2))


@pytest.fixture(autouse=True)
def _clean_pool_env(monkeypatch):
    """Isolate every test from ambient pool/cache knobs and make sure
    no shared pool outlives a test."""
    for var in (
        "REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL",
        "REPRO_SHM", "REPRO_START_METHOD",
    ):
        monkeypatch.delenv(var, raising=False)
    yield
    shutdown_warm_pool()


def _tiny_configs():
    cfg = TINY.base_config(scheduler="greedy", erp=0.2)
    return [cfg.with_overrides(seed=s) for s in TINY.seeds]


def test_warm_sweep_byte_identical_to_serial():
    configs = _tiny_configs()
    serial = map_configs(configs, jobs=1)
    warm = map_configs(configs, jobs=2, warm=True)
    assert json.dumps([s.as_dict() for s in warm], sort_keys=True) == json.dumps(
        [s.as_dict() for s in serial], sort_keys=True
    )


def test_pool_survives_across_calls_and_counts_warm_hits():
    configs = _tiny_configs()
    obs = Instruments()
    map_configs(configs, jobs=2, warm=True)
    pool = get_warm_pool(2)
    pids_before = sorted(w.proc.pid for w in pool._workers.values())
    map_configs(configs, jobs=2, warm=True, instruments=obs)
    assert sorted(w.proc.pid for w in pool._workers.values()) == pids_before
    assert pool.stats["warm_hits"] >= 1
    assert obs.snapshot()["counters"]["pool.warm_hits"] == 1


def test_ping_and_healthy():
    with WarmPool(jobs=2) as pool:
        pids = pool.ping()
        assert pids  # at least one worker answered
        assert all(isinstance(p, int) for p in pids)
        assert pool.healthy
        assert pool.workers_alive == 2
    assert not pool.healthy


def test_shm_shipping_identical_to_pickle_fallback():
    configs = _tiny_configs()
    if not shm_available():  # pragma: no cover - env-dependent
        pytest.skip("multiprocessing.shared_memory unavailable")
    with WarmPool(jobs=2, use_shm=True) as shm_pool:
        via_shm = shm_pool.run("run", configs)
        assert shm_pool.stats["shm_bytes"] > 0
    with WarmPool(jobs=2, use_shm=False) as pickle_pool:
        via_pickle = pickle_pool.run("run", configs)
        assert pickle_pool.stats["shm_bytes"] == 0
    assert [s.as_dict() for s in via_shm] == [s.as_dict() for s in via_pickle]


def test_repro_shm_env_disables_shm(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    assert not shm_available()
    monkeypatch.delenv("REPRO_SHM")
    # default: on whenever the module imports (it does on py3.8+)
    assert shm_available()


def _die_once_then_answer(flag_path):
    """Worker task: hard-kill the worker on first sight of the payload,
    succeed on the resubmission (the flag file survives the crash)."""
    if not os.path.exists(flag_path):
        open(flag_path, "w").close()
        os._exit(42)
    return "survived"


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="crash-injection patching needs fork inheritance",
)
def test_crashed_worker_respawned_and_task_resubmitted(tmp_path, monkeypatch):
    monkeypatch.setitem(_TASK_FNS, "die-once", _die_once_then_answer)
    obs = Instruments()
    with WarmPool(jobs=1, start_method="fork") as pool:
        out = pool.run("die-once", [str(tmp_path / "crashed.flag")], instruments=obs)
    assert out == ["survived"]
    assert pool.stats["respawns"] == 1
    assert obs.snapshot()["counters"]["pool.respawns"] == 1


def _raise_for_test(payload):
    raise ValueError(f"boom: {payload}")


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="task-table patching needs fork inheritance",
)
def test_task_exception_propagates_and_pool_stays_usable(monkeypatch):
    monkeypatch.setitem(_TASK_FNS, "boom", _raise_for_test)
    with WarmPool(jobs=1, start_method="fork") as pool:
        with pytest.raises(ValueError, match="boom"):
            pool.run("boom", ["x"])
        assert pool.ping()  # same workers still answer


def test_idle_reap_then_transparent_cold_start():
    with WarmPool(jobs=1, idle_timeout_s=0.05) as pool:
        pool.ping()
        assert pool.workers_alive == 1
        time.sleep(0.1)
        assert pool.reap_if_idle()
        assert pool.workers_alive == 0
        assert pool.stats["reaps"] == 1
        assert pool.ping()  # next run cold-starts transparently
        assert pool.stats["cold_starts"] == 2


def test_get_warm_pool_reuses_and_resizes():
    a = get_warm_pool(2)
    assert get_warm_pool(2) is a
    b = get_warm_pool(3)  # different shape: old pool closed, new one built
    assert b is not a
    assert a._closed
    shutdown_warm_pool()
    assert b._closed
    shutdown_warm_pool()  # idempotent


def test_closed_pool_rejects_runs():
    pool = WarmPool(jobs=1)
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.run("ping", [None])


def test_unknown_task_kind_raises():
    with WarmPool(jobs=1) as pool:
        with pytest.raises((ValueError, RuntimeError)):
            pool.run("no-such-kind", [None])


def test_importing_executor_spawns_nothing():
    """Zero-overhead contract: importing the executor must not import
    the pool/store/service modules, start processes, or create dirs."""
    code = (
        "import sys\n"
        "import repro.experiments.executor\n"
        "import repro.experiments\n"
        "import multiprocessing\n"
        "lazy = [m for m in ('repro.experiments.pool',"
        " 'repro.experiments.store', 'repro.experiments.service')"
        " if m in sys.modules]\n"
        "print(json.dumps({'lazy': lazy,"
        " 'children': len(multiprocessing.active_children())}))\n"
    )
    env = {k: v for k, v in os.environ.items() if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    out = subprocess.run(
        [sys.executable, "-c", "import json\n" + code],
        capture_output=True, text=True, env=env, check=True,
    )
    report = json.loads(out.stdout)
    assert report == {"lazy": [], "children": 0}


def test_worker_killed_midstream_does_not_hang():
    """A SIGKILLed worker between runs is pruned and replaced on the
    next run — the pool never deadlocks on a dead process."""
    with WarmPool(jobs=1) as pool:
        pool.ping()
        (worker,) = pool._workers.values()
        os.kill(worker.proc.pid, signal.SIGKILL)
        worker.proc.join(timeout=5.0)
        assert pool.workers_alive == 0
        assert pool.ping()  # replacement worker answers
        assert pool.workers_alive == 1
