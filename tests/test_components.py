"""Unit tests for the extracted simulation components.

Each component is exercised through its own seam — built over a shared
:class:`SimulationState` with only the collaborators it declares —
rather than through a fully wired :class:`World`.
"""

import numpy as np
import pytest

from repro.core.erc import AdaptiveEnergyRequestController
from repro.sim.components import (
    ClusterManager,
    EnergyAccounting,
    FleetController,
    RequestGate,
    SimulationState,
)
from repro.sim.config import SimulationConfig


def cfg(**overrides):
    defaults = dict(
        n_sensors=30,
        n_targets=2,
        n_rvs=1,
        side_length_m=50.0,
        sensing_range_m=12.0,
        sim_time_s=24 * 3600.0,
        battery_capacity_j=500.0,
        initial_charge_range=(0.6, 0.9),
        dispatch_period_s=1800.0,
        tick_s=300.0,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def make_state(**overrides):
    return SimulationState.from_config(cfg(**overrides))


def make_clustered_state(**overrides):
    state = make_state(**overrides)
    ClusterManager(state)
    return state


class TestSimulationState:
    def test_from_config_shapes(self):
        s = make_state()
        assert s.sensor_pos.shape == (30, 2)
        assert len(s.bank) == 30
        assert s.requested.shape == (30,)
        assert not s.requested.any()
        assert s.cluster_set is None  # ClusterManager's job

    def test_same_seed_same_deployment(self):
        a, b = make_state(), make_state()
        assert np.array_equal(a.sensor_pos, b.sensor_pos)
        assert np.array_equal(a.bank.levels_j, b.bank.levels_j)
        assert np.array_equal(a.targets.positions, b.targets.positions)

    def test_different_seed_different_deployment(self):
        a, b = make_state(), make_state(seed=12)
        assert not np.array_equal(a.sensor_pos, b.sensor_pos)


class TestClusterManager:
    def test_rebuild_publishes_state(self):
        s = make_state()
        ClusterManager(s)
        assert s.cluster_set is not None
        assert len(s.cluster_set) == 2
        assert s.activator is not None
        assert s.coverable.shape == (2,)

    def test_members_within_sensing_range(self):
        s = make_clustered_state()
        for c in s.cluster_set:
            for member in c.members:
                d = np.hypot(*(s.sensor_pos[member] - s.targets.positions[c.cluster_id]))
                assert d <= s.cfg.sensing_range_m

    def test_relocate_rebuilds(self):
        s = make_state()
        mgr = ClusterManager(s)
        before = s.cluster_set
        epoch = s.targets.epoch
        mgr.relocate()
        assert s.targets.epoch == epoch + 1
        assert s.cluster_set is not before

    def test_rotate_moves_duty(self):
        s = make_state()
        mgr = ClusterManager(s)
        alive = s.bank.alive_mask()
        before = s.activator.active_sensor_per_cluster(alive).copy()
        handoffs = mgr.rotate()
        after = s.activator.active_sensor_per_cluster(alive)
        assert handoffs.shape[1] == 2
        # Duty moved exactly where a hand-off was reported.
        moved = {int(c) for c in np.flatnonzero(before != after)}
        reported = {int(s.cluster_set.cluster_of(int(old))) for old, _ in handoffs}
        assert moved == reported

    def test_full_time_does_not_rotate(self):
        s = make_clustered_state(activation="full_time")
        assert s.activator.rotates is False
        assert len(ClusterManager(s).rotate()) == 0

    def test_dead_sensors_excluded_from_clusters(self):
        s = make_state()
        s.bank.levels_j[:] = 0.0
        ClusterManager(s)
        assert all(c.size == 0 for c in s.cluster_set)


class TestEnergyAccounting:
    def build(self, s, **kw):
        return EnergyAccounting(s, **kw)

    def test_dead_sensors_draw_nothing(self):
        s = make_clustered_state()
        s.bank.levels_j[:5] = 0.0
        energy = self.build(s)
        assert np.all(energy.rates[:5] == 0.0)

    def test_alive_draw_at_least_idle(self):
        s = make_clustered_state()
        energy = self.build(s)
        alive = s.bank.alive_mask()
        assert np.all(energy.rates[alive] >= s.power.idle_power_w - 1e-15)

    def test_advance_drains_and_books(self):
        s = make_clustered_state()
        energy = self.build(s)
        before = s.bank.levels_j.copy()
        rates = energy.rates.copy()
        s.sim.now = 1000.0
        energy.advance()
        expected = np.clip(before - rates * 1000.0, 0.0, s.cfg.battery_capacity_j)
        assert np.allclose(s.bank.levels_j, expected)
        breakdown = energy.breakdown()
        assert breakdown["idle"] > 0.0
        assert breakdown["sensing"] > 0.0

    def test_death_triggers_refresh_and_callback(self):
        s = make_clustered_state()
        deaths = []
        energy = self.build(s, on_deaths=deaths.append)
        victim = int(np.flatnonzero(energy.active)[0])
        s.bank.levels_j[victim] = energy.rates[victim] * 10.0  # dies in 10 s
        s.sim.now = 100.0
        energy.advance()
        assert s.bank.levels_j[victim] == 0.0
        assert energy.rates[victim] == 0.0
        assert deaths == [1]

    def test_apply_handoffs_charges_notifications(self):
        s = make_clustered_state()
        energy = self.build(s)
        handoffs = np.array([[0, 1]], dtype=np.int64)
        before = s.bank.levels_j[[0, 1]].copy()
        energy.apply_handoffs(handoffs)
        assert np.all(s.bank.levels_j[[0, 1]] < before)
        assert energy.breakdown()["notifications"] > 0.0

    def test_empty_handoffs_noop(self):
        s = make_clustered_state()
        energy = self.build(s)
        before = s.bank.levels_j.copy()
        energy.apply_handoffs(np.empty((0, 2), dtype=np.int64))
        assert np.array_equal(before, s.bank.levels_j)


class TestRequestGate:
    def test_release_below_threshold(self):
        s = make_clustered_state(erp=0.0)
        gate = RequestGate(s)
        s.bank.levels_j[[0, 1]] = s.bank.threshold_j * 0.9
        assert gate.check()
        assert s.requested[0] and s.requested[1]
        assert 0 in s.requests and 1 in s.requests

    def test_no_double_release(self):
        s = make_clustered_state(erp=0.0)
        gate = RequestGate(s)
        s.bank.levels_j[0] = s.bank.threshold_j * 0.9
        gate.check()
        n = len(s.requests)
        gate.check()
        assert len(s.requests) == n

    def test_mark_recharged_clears(self):
        s = make_clustered_state(erp=0.0)
        gate = RequestGate(s)
        s.bank.levels_j[3] = s.bank.threshold_j * 0.9
        gate.check()
        gate.mark_recharged(3)
        assert not s.requested[3]
        assert 3 not in s.requests

    def test_adaptive_policy_built_from_config(self):
        s = make_clustered_state(adaptive_erp=True, erp=0.3)
        gate = RequestGate(s)
        assert isinstance(gate.erc, AdaptiveEnergyRequestController)
        assert gate.erc.erp == pytest.approx(0.3)

    def test_note_deaths_feeds_adaptive_policy(self):
        s = make_clustered_state(adaptive_erp=True, erp=0.4)
        gate = RequestGate(s)
        gate.note_deaths(2)
        s.sim.now = gate.erc.adjust_period_s + 1.0
        gate.maybe_adjust()
        assert gate.erc.erp < 0.4  # AIMD backoff after deaths

    def test_note_deaths_noop_for_static_policy(self):
        s = make_clustered_state()
        gate = RequestGate(s)
        gate.note_deaths(5)  # must not raise
        gate.maybe_adjust()


def wire_fleet(s, **cfg_kw):
    from repro.registry import SCHEDULERS

    gate = RequestGate(s)
    energy = EnergyAccounting(s, on_deaths=gate.note_deaths)
    scheduler = SCHEDULERS.build(s.cfg.scheduler, fleet_size=s.cfg.n_rvs)
    fleet = FleetController(s, energy, gate, scheduler)
    return gate, energy, fleet


class TestFleetController:
    def test_builds_fleet(self):
        s = make_clustered_state(n_rvs=2)
        _, _, fleet = wire_fleet(s)
        assert len(fleet.rvs) == 2
        assert len(fleet.idle_views()) == 2

    def test_dispatch_assigns_sortie(self):
        s = make_clustered_state(erp=0.0)
        gate, _, fleet = wire_fleet(s)
        s.bank.levels_j[[0, 1]] = s.bank.threshold_j * 0.9
        gate.check()
        fleet.dispatch()
        assert fleet.rvs[0].busy
        assert len(fleet.idle_views()) == 0

    def test_dispatch_without_requests_noop(self):
        s = make_clustered_state()
        _, _, fleet = wire_fleet(s)
        fleet.dispatch()
        assert not fleet.rvs[0].busy

    def test_broke_rv_sent_home(self):
        s = make_clustered_state(erp=0.0, rv_capacity_j=1000.0)
        gate, _, fleet = wire_fleet(s)
        rv = fleet.rvs[0]
        rv.battery.level_j = 1.0  # cannot afford anything
        rv.position = np.array([1.0, 1.0])  # away from depot
        s.bank.levels_j[0] = s.bank.threshold_j * 0.9
        gate.check()
        fleet.dispatch()
        assert fleet.returning[0]

    def test_sortie_executes_through_engine(self):
        s = make_clustered_state(erp=0.0)
        gate, _, fleet = wire_fleet(s)
        s.bank.levels_j[4] = s.bank.threshold_j * 0.9
        gate.check()
        fleet.dispatch()
        while s.sim.step():
            pass
        assert s.bank.levels_j[4] == s.cfg.battery_capacity_j
        assert not s.requested[4]
        assert fleet.totals()["delivered_energy_j"] > 0.0
        assert fleet.totals()["sorties"] == 1

    def test_on_change_fires_after_recharge(self):
        s = make_clustered_state(erp=0.0)
        from repro.registry import SCHEDULERS

        gate = RequestGate(s)
        energy = EnergyAccounting(s)
        changes = []
        fleet = FleetController(
            s, energy, gate, SCHEDULERS.build("greedy", fleet_size=1),
            on_change=lambda: changes.append(s.now),
        )
        s.bank.levels_j[4] = s.bank.threshold_j * 0.9
        gate.check()
        fleet.dispatch()
        while s.sim.step():
            pass
        assert changes
