"""Tests for the closed-form estimators — including validation against
actual simulation outcomes."""

import math

import numpy as np
import pytest

from repro.analysis.estimators import (
    DeploymentModel,
    coverage_probability,
    expected_cluster_size,
    fleet_size_lower_bound,
    full_time_member_power_w,
    request_rate_per_day,
    rr_member_power_w,
    threshold_crossing_interval_s,
)
from repro.core.clustering import balanced_clustering
from repro.energy.consumption import PAPER_NODE_POWER
from repro.geometry.field import Field
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.world import World


class TestGeometryEstimators:
    def test_coverage_probability_monotone(self):
        p1 = coverage_probability(100, 100.0, 5.0)
        p2 = coverage_probability(400, 100.0, 5.0)
        assert 0 < p1 < p2 < 1

    def test_paper_density(self):
        # Table II: lambda = 500 * pi * 64 / 40000 ~= 2.5 sensors/target.
        assert expected_cluster_size(500, 200.0, 8.0) == pytest.approx(2.513, abs=0.01)

    def test_cluster_size_matches_simulation(self, rng):
        field = Field(120.0)
        sensors = field.deploy_uniform(300, rng)
        sizes = []
        for _ in range(30):
            targets = field.random_points(5, rng)
            cs = balanced_clustering(sensors, targets, 12.0)
            sizes.extend(cs.sizes().tolist())
        predicted = expected_cluster_size(300, 120.0, 12.0)
        # Balancing steals members between overlapping targets, so the
        # realized mean sits near (within ~25% of) the Poisson estimate.
        assert np.mean(sizes) == pytest.approx(predicted, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_probability(-1, 100.0, 5.0)
        with pytest.raises(ValueError):
            expected_cluster_size(10, 0.0, 5.0)


class TestPowerEstimators:
    def test_rr_power_decreases_with_cluster_size(self):
        p2 = rr_member_power_w(PAPER_NODE_POWER, 2.0)
        p8 = rr_member_power_w(PAPER_NODE_POWER, 8.0)
        assert p8 < p2 < full_time_member_power_w(PAPER_NODE_POWER)

    def test_crossing_interval(self):
        # 1000 J usable above threshold at 10 mW -> 1e5 seconds.
        t = threshold_crossing_interval_s(2000.0, 0.5, 0.01)
        assert t == pytest.approx(1e5)

    def test_zero_power_never_crosses(self):
        assert threshold_crossing_interval_s(100.0, 0.5, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            rr_member_power_w(PAPER_NODE_POWER, 0.5)
        with pytest.raises(ValueError):
            threshold_crossing_interval_s(-1.0, 0.5, 1.0)


class TestRequestRate:
    def test_full_time_busier_than_round_robin(self):
        kwargs = dict(
            n_sensors=500,
            n_targets=15,
            side_length_m=200.0,
            sensing_range_m=14.0,
            capacity_j=2000.0,
            threshold_fraction=0.5,
            power=PAPER_NODE_POWER,
        )
        rr = request_rate_per_day(activation="round_robin", **kwargs)
        ft = request_rate_per_day(activation="full_time", **kwargs)
        assert ft > rr > 0

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            request_rate_per_day(
                10, 1, 100.0, 5.0, 100.0, 0.5, PAPER_NODE_POWER, activation="mystery"
            )

    def test_predicts_simulated_request_rate(self):
        """The estimator lands within a factor ~2 of the simulator."""
        cfg = SimulationConfig.experiment(
            sim_time_s=10 * DAY_S, scheduler="combined", erp=0.0, seed=2
        )
        model = DeploymentModel.from_config(cfg)
        predicted = model.requests_per_day
        summary = World(cfg).run()
        measured = summary.n_requests / 10.0
        assert predicted == pytest.approx(measured, rel=1.0)
        assert 0.3 < predicted / measured < 3.0


class TestFleetSizing:
    def test_lower_bound_grows_with_load(self):
        f1 = fleet_size_lower_bound(100, 1000.0, 5.0, 100.0, 1.0)
        f2 = fleet_size_lower_bound(1000, 1000.0, 5.0, 100.0, 1.0)
        assert f2 >= f1 >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_size_lower_bound(-1, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            fleet_size_lower_bound(1, 1.0, 0.0, 1.0, 1.0)

    def test_deployment_model_bundle(self):
        cfg = SimulationConfig.experiment()
        model = DeploymentModel.from_config(cfg)
        assert model.cluster_size > 1
        assert 0.9 < model.target_coverage_probability <= 1.0
        assert model.member_power_w > 0
        assert model.fleet_lower_bound(charge_power_w=5.0) >= 1
