"""Figure 7 — recharge profit of the three schemes over the ERP sweep.

* (a) total energy recharged into the network (MJ) — the Combined-
  Scheme highest (global view picks high-demand nodes anywhere);
* (b) the objective score of Eq. (2) (MJ) = energy recharged minus RV
  traveling energy.

Reuses the Fig. 6 sweep result — both figures come from the same runs
in the paper too.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..utils.tables import format_series
from .common import ERP_GRID, SCHEMES

__all__ = ["panel_a", "panel_b", "format_fig7_panel"]


def panel_a(sweep) -> Dict[str, List[float]]:
    """Fig. 7(a): energy recharged into the network (MJ)."""
    return {s: [v / 1e6 for v in sweep[s]["delivered_energy_j"]] for s in SCHEMES}


def panel_b(sweep) -> Dict[str, List[float]]:
    """Fig. 7(b): Eq. (2) objective score (MJ)."""
    return {s: [v / 1e6 for v in sweep[s]["objective_j"]] for s in SCHEMES}


def format_fig7_panel(
    panel: str, series: Dict[str, List[float]], erps: Sequence[float] = ERP_GRID
) -> str:
    label = "Energy recharged (MJ)" if panel == "a" else "Objective score (MJ)"
    return format_series("ERP", list(erps), series, title=f"Fig. 7({panel}) - {label} vs ERP")
