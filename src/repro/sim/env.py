"""A gym-style facade over the batched engine.

:class:`BatchedEnv` exposes a batch of lockstep worlds through the
``reset() / step(actions)`` interface that reinforcement-learning
loops and learned activity-management policies expect: observations
come back as stacked ``(B, ...)`` arrays straight off the
:class:`~repro.sim.batch.BatchedStateArrays` stacks, actions override
the per-cluster rotation pointers before each tick, rewards are the
per-world target-coverage of the tick just simulated, and per-world
``dones`` go True as horizons pass (shorter-horizon worlds finish
early while the rest keep stepping — the engine compacts underneath).

With ``actions=None`` every step the trajectory is the round-robin
policy of the paper, bit-identical per world to ``run_simulation``;
supplying actions *changes the trajectory by design* and therefore
cannot be combined with the ``REPRO_DEBUG_BATCH`` serial shadow.

Per-world RNG streams (``env.rngs``, seeded ``PCG64`` spawns) are for
the policy side — :meth:`BatchedEnv.sample_actions` draws uniformly
random pointers from them; the engine itself never consumes
randomness after construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .batch import BatchedEngine
from .config import SimulationConfig
from .metrics import SimulationSummary

__all__ = ["BatchedEnv"]


class BatchedEnv:
    """Batch of WRSN worlds behind ``reset() / step(actions)``.

    Args:
        configs: one configuration per world; all must share a shape
            signature (see :func:`~repro.sim.batch.shape_signature`).
        debug: arm the serial shadow twin (``None`` consults
            ``REPRO_DEBUG_BATCH``).  Only valid for action-free runs.
    """

    def __init__(
        self,
        configs: Sequence[SimulationConfig],
        debug: Optional[bool] = None,
    ) -> None:
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("BatchedEnv needs at least one config")
        self._debug = debug
        self._engine: Optional[BatchedEngine] = None
        self._running = False

    # -- gym surface ----------------------------------------------------

    def reset(self) -> Dict[str, np.ndarray]:
        """(Re)build the batch at t=0 and return the initial observation."""
        self._engine = BatchedEngine(self.configs, debug=self._debug)
        self._running = True
        return self._observe()

    def step(self, actions: Optional[np.ndarray] = None):
        """Advance every live world by one tick.

        Args:
            actions: optional ``(B, m)`` integer array of rotation-
                pointer overrides, indexed over the *original* batch; an
                entry ``>= 0`` points cluster ``c`` of world ``b`` at
                member slot ``actions[b, c] % size``, ``-1`` leaves the
                round-robin pointer alone.  Ignored for finished worlds.

        Returns:
            ``(obs, rewards, dones, info)`` — stacked observation dict,
            per-world coverage of the tick just simulated (the final
            time-averaged coverage for worlds that finished during this
            step), per-world done flags, and an info dict carrying
            ``t`` and the finished worlds' ``summaries``.
        """
        engine = self._require_engine()
        if not self._running:
            raise RuntimeError("step() after every world finished; call reset()")
        if actions is not None:
            self._apply_actions(np.asarray(actions))
        was_live = set(engine._orig)
        self._running = engine.step()
        rewards = np.zeros(len(self.configs), dtype=np.float64)
        for b, w in enumerate(engine.worlds):
            rewards[engine._orig[b]] = w.state.metrics._last_coverage
        for i, summary in enumerate(engine.summaries):
            if summary is not None and i in was_live and i not in engine._orig:
                rewards[i] = summary.avg_coverage_ratio
        dones = ~engine.alive_worlds
        info = {
            "t": engine._t,
            "summaries": list(engine.summaries),
        }
        return self._observe(), rewards, dones, info

    # -- helpers --------------------------------------------------------

    @property
    def rngs(self) -> List[np.random.Generator]:
        """Per-world policy RNG streams (live worlds, batch order)."""
        return self._require_engine().stacks.rngs

    @property
    def summaries(self) -> List[Optional[SimulationSummary]]:
        """Final summaries, input order; ``None`` until a world finishes."""
        return list(self._require_engine().summaries)

    def sample_actions(self) -> np.ndarray:
        """Uniformly random pointer overrides from the per-world RNG
        streams — ``(B, m)`` over the original batch, ``-1`` for
        finished worlds' rows."""
        engine = self._require_engine()
        st = engine.stacks
        out = np.full((len(self.configs), st.m), -1, dtype=np.int64)
        for b, rng in enumerate(st.rngs):
            sizes = np.maximum(st.sizes[b], 1)
            out[engine._orig[b]] = rng.integers(0, sizes)
        return out

    def _apply_actions(self, actions: np.ndarray) -> None:
        engine = self._require_engine()
        if engine.debug:
            raise ValueError(
                "actions change the trajectory and cannot run under the "
                "REPRO_DEBUG_BATCH serial shadow"
            )
        st = engine.stacks
        if actions.shape != (len(self.configs), st.m):
            raise ValueError(
                f"actions must have shape {(len(self.configs), st.m)}, "
                f"got {actions.shape}"
            )
        rows = actions[engine._orig].astype(np.int64)
        override = rows >= 0
        sizes = np.maximum(st.sizes, 1)
        np.copyto(st.ptr, rows % sizes, where=override)

    def _observe(self) -> Dict[str, np.ndarray]:
        """Stacked observation over the *original* batch; finished
        worlds' rows hold zeros (levels/flags) and -1 (membership)."""
        engine = self._require_engine()
        st = engine.stacks
        B0, n, m = len(self.configs), st.n, st.m
        obs = {
            "t": np.full(B0, engine._t, dtype=np.float64),
            "levels_j": np.zeros((B0, n), dtype=np.float64),
            "alive": np.zeros((B0, n), dtype=bool),
            "requested": np.zeros((B0, n), dtype=bool),
            "active": np.zeros((B0, n), dtype=bool),
            "membership": np.full((B0, n), -1, dtype=np.int64),
            "ptr": np.full((B0, m), -1, dtype=np.int64),
            "cluster_sizes": np.zeros((B0, m), dtype=np.int64),
        }
        orig = engine._orig
        obs["levels_j"][orig] = st.levels_j
        obs["alive"][orig] = st.levels_j > 0.0
        obs["requested"][orig] = st.requested
        obs["active"][orig] = st.active
        obs["membership"][orig] = st.membership
        obs["ptr"][orig] = st.ptr
        obs["cluster_sizes"][orig] = st.sizes
        return obs

    def _require_engine(self) -> BatchedEngine:
        if self._engine is None:
            raise RuntimeError("call reset() before using the environment")
        return self._engine
