"""The sweep service (repro.experiments.service) and its CLI.

A served sweep must be byte-identical to the serial executor after the
JSON hop, a second identical submission must be all store hits, and
the streaming primitives (`iter_configs` / `submit_grid`) must
reassemble grid order exactly.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.experiments import ExperimentScale
from repro.experiments.executor import iter_configs, map_cells, submit_grid
from repro.experiments.service import (
    PROTOCOL_VERSION,
    ServiceError,
    SweepClient,
    SweepService,
)

TINY = ExperimentScale("tiny", days=1.0, seeds=(1, 2))
SCHEDS = ("greedy", "partition")
ERPS = (0.0, 0.5)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for var in ("REPRO_CACHE", "REPRO_STORE", "REPRO_WARM_POOL", "REPRO_JOBS"):
        monkeypatch.delenv(var, raising=False)


@pytest.fixture
def served(tmp_path):
    """A live service on a tmp socket (serial jobs, store enabled)."""
    socket_path = tmp_path / "svc.sock"
    service = SweepService(
        socket_path, jobs=1, warm=False, store_dir=tmp_path / "store"
    )
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    client = SweepClient(socket_path, timeout_s=60.0)
    deadline = 50
    while not socket_path.exists() and deadline:
        threading.Event().wait(0.1)
        deadline -= 1
    yield service, client
    try:
        client.shutdown()
    except (ServiceError, OSError):
        pass
    thread.join(timeout=10.0)
    assert not thread.is_alive()


def _dumps(results):
    return json.dumps(
        {"|".join(map(str, k)): v.as_dict() for k, v in results.items()},
        sort_keys=True,
    )


class TestStreamingPrimitives:
    def test_iter_configs_streams_every_cell_once(self):
        cfg = TINY.base_config(scheduler="greedy", erp=0.2)
        configs = [cfg.with_overrides(seed=s) for s in TINY.seeds]
        rows = list(iter_configs(configs, jobs=1))
        assert sorted(i for i, _s, _src in rows) == [0, 1]
        assert all(src == "run" for _i, _s, src in rows)

    def test_submit_grid_matches_map_cells(self):
        job = submit_grid(TINY, SCHEDS, ERPS, jobs=1)
        streamed = [cell.key for cell in job]
        results = job.results()
        assert set(streamed) == set(results)
        assert job.sources == {"run": 8}
        serial = map_cells(TINY, SCHEDS, ERPS, jobs=1)
        assert _dumps(results) == _dumps(serial)
        assert list(results) == list(serial)  # grid order, not stream order

    def test_grid_job_results_after_partial_consumption(self):
        job = submit_grid(TINY, SCHEDS, ERPS, jobs=1)
        first = next(iter(job))
        assert first.source == "run"
        results = job.results()  # drains the rest
        assert len(results) == len(job.keys)


class TestService:
    def test_ping(self, served):
        _service, client = served
        answer = client.ping()
        assert answer["ok"] and answer["protocol"] == PROTOCOL_VERSION
        assert answer["jobs"] == 1

    def test_served_sweep_byte_identical_and_store_backed(self, served):
        service, client = served
        first = client.submit_grid(TINY, SCHEDS, ERPS)
        r1 = first.results()
        assert first.sources == {"run": 8}
        assert first.done["cells"] == 8

        second = client.submit_grid(TINY, SCHEDS, ERPS)
        r2 = second.results()
        assert second.sources == {"store": 8}

        serial = map_cells(TINY, SCHEDS, ERPS, jobs=1)
        assert _dumps(r1) == _dumps(serial)
        assert _dumps(r2) == _dumps(serial)
        assert service.store.stats["hits"] == 8

    def test_submit_configs_roundtrip(self, served):
        _service, client = served
        cfg = TINY.base_config(scheduler="greedy", erp=0.2)
        configs = [cfg.with_overrides(seed=s) for s in TINY.seeds]
        grid = client.submit_configs(configs)
        results = grid.results()
        assert set(results) == {("greedy", 0.2, 1), ("greedy", 0.2, 2)}

    def test_stats_op(self, served):
        _service, client = served
        client.submit_grid(TINY, ("greedy",), (0.0,)).results()
        stats = client.stats()
        assert stats["ok"] and stats["jobs"] == 1
        assert stats["counters"]["executor.cells"] == 2
        assert stats["store"]["puts"] == 2

    def test_unknown_op_reports_error(self, served):
        _service, client = served
        with pytest.raises(ServiceError, match="unknown op"):
            client._request_one({"op": "frobnicate"})

    def test_bad_submission_reports_error_not_crash(self, served):
        _service, client = served
        with pytest.raises(ServiceError, match="KeyError"):
            client._request_one({"op": "submit_grid"})  # missing fields
        assert client.ping()["ok"]  # service survived


def _extract_json(text):
    """The JSON object embedded in captured stdout — the server thread
    shares the capture, so its status lines (brace-free) may interleave."""
    return json.loads(text[text.index("{") : text.rindex("}") + 1])


class TestServiceCLI:
    def test_serve_and_submit_json(self, tmp_path, capsys):
        socket_path = tmp_path / "cli.sock"
        server = threading.Thread(
            target=main,
            args=([
                "serve", "--socket", str(socket_path), "--jobs", "1",
                "--store", str(tmp_path / "store"), "--max-requests", "2",
            ],),
            daemon=True,
        )
        server.start()
        deadline = 50
        while not socket_path.exists() and deadline:
            threading.Event().wait(0.1)
            deadline -= 1

        argv = [
            "submit", "--socket", str(socket_path), "--quiet", "--json",
            "--schedulers", "greedy", "--erps", "0.0", "--seeds", "1,2",
            "--days", "1.0",
        ]
        assert main(argv) == 0
        first = _extract_json(capsys.readouterr().out)
        assert first["sources"] == {"run": 2}
        assert set(first["results"]) == {"greedy:0:1", "greedy:0:2"}

        assert main(argv) == 0
        second = _extract_json(capsys.readouterr().out)
        assert second["sources"] == {"store": 2}
        assert second["results"] == first["results"]
        server.join(timeout=10.0)  # --max-requests 2 ends the accept loop
        assert not server.is_alive()

    def test_submit_without_server_exits_2(self, tmp_path, capsys):
        code = main(["submit", "--socket", str(tmp_path / "nope.sock"), "--quiet"])
        assert code == 2
        assert "is `repro serve" in capsys.readouterr().err

    def test_serve_rejects_bad_jobs(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--socket", str(tmp_path / "s.sock"), "--jobs", "zero"])

    def test_jobs_auto_parses(self):
        from repro.cli import _jobs_type

        assert _jobs_type("auto") >= 1
        assert _jobs_type("3") == 3
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _jobs_type("0")
        with pytest.raises(argparse.ArgumentTypeError):
            _jobs_type("many")
