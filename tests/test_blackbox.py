"""Tests for the flight recorder, postmortem bundles, and replay.

Covers the ring/notes/checkpoint mechanics of
:class:`repro.obs.BlackBoxRecorder`, the zero-overhead null default,
bundle round-trips through :func:`repro.obs.load_bundle`, deterministic
replay from checkpoints on both tick engines
(:mod:`repro.sim.replay`), the forced-violation acceptance path
(``REPRO_MONITOR_ATOL_J`` + strict monitors), and the ``repro
postmortem`` / ``repro replay`` CLI exit codes.  Also pins the
``repro report`` graceful-degradation behavior for partial archives.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs import (
    NULL_BLACKBOX,
    BlackBoxRecorder,
    InvariantViolation,
    format_postmortem,
    load_bundle,
)
from repro.sim.config import DAY_S, SimulationConfig
from repro.sim.replay import format_replay, replay_bundle
from repro.sim.runner import run_recorded, run_simulation, run_with_telemetry

TINY = dict(
    n_sensors=30,
    n_targets=2,
    n_rvs=1,
    side_length_m=50.0,
    sim_time_s=0.05 * DAY_S,
    battery_capacity_j=400.0,
    initial_charge_range=(0.5, 0.8),
    dispatch_period_s=1800.0,
    seed=5,
)


def tiny_config(**overrides):
    return SimulationConfig(**dict(TINY, **overrides))


def recorded_bundle(tmp_path, name="bundle", checkpoint_every="3", **overrides):
    """Run a tiny sim with a tight checkpoint cadence; return the dir."""
    import os

    os.environ["REPRO_BLACKBOX_CHECKPOINT"] = checkpoint_every
    try:
        out = tmp_path / name
        run_recorded(tiny_config(**overrides), out)
        return out
    finally:
        os.environ.pop("REPRO_BLACKBOX_CHECKPOINT", None)


class TestRecorder:
    def test_ring_is_bounded(self):
        bb = BlackBoxRecorder(capacity=3, checkpoint_every=0)
        for i in range(10):
            bb.record("tick", float(i), {"state": f"d{i}"})
        rows = bb.rows()
        assert len(rows) == 3
        assert [r["seq"] for r in rows] == [8, 9, 10]
        assert bb.seq == 10  # seq keeps counting past evictions

    def test_notes_merge_into_next_record_only(self):
        bb = BlackBoxRecorder(capacity=8, checkpoint_every=0)
        bb.note("erc_released", [1, 2])
        bb.record("tick", 0.0, {"state": "a"})
        bb.record("tick", 1.0, {"state": "b"})
        first, second = bb.rows()
        assert first["erc_released"] == [1, 2]
        assert "erc_released" not in second

    def test_violation_feeds_manifest_and_next_record(self):
        bb = BlackBoxRecorder(capacity=8, checkpoint_every=0)
        bb.note_violation({"invariant": "x", "t": 0.0, "message": "boom"})
        bb.record("tick", 0.0, {"state": "a"})
        assert bb.violations[0]["invariant"] == "x"
        assert bb.rows()[0]["violations"][0]["message"] == "boom"

    def test_checkpoint_cadence(self):
        bb = BlackBoxRecorder(capacity=64, checkpoint_every=4)
        assert not bb.should_checkpoint()
        for i in range(4):
            bb.record("tick", float(i), {"state": "d"})
        assert bb.should_checkpoint()
        bb.add_checkpoint({"seq": bb.seq, "t": 3.0, "arrays": {}, "scalars": {}})
        assert not bb.should_checkpoint()

    def test_checkpoint_deque_is_bounded(self):
        bb = BlackBoxRecorder(capacity=8, checkpoint_every=1, max_checkpoints=2)
        for i in range(5):
            bb.add_checkpoint({"seq": i, "t": 0.0, "arrays": {}, "scalars": {}})
        assert [c["seq"] for c in bb.checkpoints] == [3, 4]

    def test_null_blackbox_is_disabled_and_inert(self):
        assert NULL_BLACKBOX.enabled is False
        NULL_BLACKBOX.note("k", 1)
        NULL_BLACKBOX.record("tick", 0.0, {})
        with pytest.raises(RuntimeError):
            NULL_BLACKBOX.flush("/nonexistent", reason="requested")


class TestTrajectoryInvariance:
    def test_recording_never_touches_the_trajectory(self, tmp_path):
        cfg = tiny_config()
        plain = run_simulation(cfg)
        recorded = run_recorded(cfg, tmp_path / "bundle")
        assert plain.as_dict() == recorded.as_dict()


class TestBundleRoundTrip:
    def test_flush_and_load(self, tmp_path):
        out = recorded_bundle(tmp_path)
        bundle = load_bundle(out)
        m = bundle.manifest
        assert m["reason"] == "requested"
        assert m["records"] == len(bundle.records) > 0
        assert m["seed"] == TINY["seed"]
        assert m["config_digest"]
        assert "soa" in m["engine"]
        # Every record carries the combined digest; decision events and
        # the periodic full-digest records also name each field.
        rec = bundle.records[-1]
        assert rec["kind"] in ("tick", "dispatch", "relocate")
        assert "state" in rec["digests"] and rec["rng"]
        full = [r for r in bundle.records if "levels_j" in r["digests"]]
        assert full and all("state" in r["digests"] for r in bundle.records)
        # Checkpoints round-trip as numpy arrays + JSON scalars.
        assert bundle.checkpoints
        ckpt = bundle.checkpoints[0]
        assert isinstance(ckpt["arrays"]["levels_j"], np.ndarray)
        assert ckpt["scalars"]["seq"] == ckpt["seq"]

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(tmp_path / "nope")

    def test_format_postmortem_renders(self, tmp_path):
        out = recorded_bundle(tmp_path)
        text = format_postmortem(load_bundle(out))
        assert "Postmortem bundle" in text
        assert "flight record(s)" in text
        assert "repro replay" in text


class TestReplay:
    @pytest.mark.parametrize("engine", ["soa", "ref"])
    def test_replay_from_checkpoint_is_bit_identical(self, tmp_path, engine):
        out = recorded_bundle(tmp_path)
        bundle = load_bundle(out)
        result = replay_bundle(bundle, engine=engine)
        assert result.ok, result.divergences
        assert result.start_seq > 0  # restored mid-run, not genesis
        assert result.compared > 0
        assert "bit-identical" in format_replay(result)

    def test_replay_from_genesis(self, tmp_path):
        out = recorded_bundle(tmp_path, checkpoint_every="0")
        bundle = load_bundle(out)
        assert not bundle.checkpoints
        result = replay_bundle(bundle)
        assert result.ok and result.start_seq == 0

    def test_to_tick_limits_the_horizon(self, tmp_path):
        out = recorded_bundle(tmp_path, checkpoint_every="0")
        bundle = load_bundle(out)
        target = bundle.records[2]["seq"]
        result = replay_bundle(bundle, to_tick=target)
        assert result.ok and result.target_seq == target
        assert result.compared == target

    def test_tampered_digest_diverges(self, tmp_path):
        out = recorded_bundle(tmp_path)
        records_path = out / "records.jsonl"
        rows = [json.loads(l) for l in records_path.read_text().splitlines()]
        # Tamper a per-field digest on the last full-digest record.
        victim = max(i for i, r in enumerate(rows) if "levels_j" in r["digests"])
        rows[victim]["digests"]["levels_j"] = "0" * 64
        records_path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        result = replay_bundle(load_bundle(out), to_tick=rows[victim]["seq"])
        assert not result.ok
        fields = {d["field"] for d in result.divergences}
        assert "levels_j" in fields
        assert "DIVERGED" in format_replay(result)


class TestForcedViolation:
    """The acceptance path: a forced monitor violation produces a
    bundle from which replay deterministically reproduces the violating
    tick on both engines."""

    @pytest.fixture()
    def violation_bundle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MONITOR_ATOL_J", "-1")
        out = tmp_path / "viol"
        with pytest.raises(InvariantViolation):
            run_recorded(tiny_config(), out, strict=True)
        monkeypatch.delenv("REPRO_MONITOR_ATOL_J")
        return out

    def test_bundle_reason_and_abort_record(self, violation_bundle):
        bundle = load_bundle(violation_bundle)
        assert bundle.manifest["reason"] == "exception"
        assert "InvariantViolation" in bundle.manifest["error"]
        assert bundle.manifest["violations"]
        assert bundle.records[-1]["kind"] == "abort"

    @pytest.mark.parametrize("engine", ["soa", "ref"])
    def test_replay_reproduces_the_violation(self, violation_bundle, engine):
        # No REPRO_MONITOR_ATOL_J in this process: the replay arms its
        # tripwires from the bundle manifest, so it must fail the same
        # way at the same tick with the same state digest.
        result = replay_bundle(load_bundle(violation_bundle), engine=engine)
        assert result.ok, result.divergences
        assert result.recorded_error and "InvariantViolation" in result.recorded_error
        assert result.error and "InvariantViolation" in result.error


class TestCli:
    def test_run_postmortem_then_replay_and_render(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BLACKBOX_CHECKPOINT", "3")
        out = tmp_path / "bundle"
        cfg_path = tmp_path / "cfg.json"
        from repro.sim.serialization import config_to_dict

        cfg_path.write_text(json.dumps(config_to_dict(tiny_config())))
        assert main(["run", "--config", str(cfg_path),
                     "--postmortem", str(out)]) == 0
        capsys.readouterr()
        assert main(["replay", str(out)]) == 0
        assert "bit-identical" in capsys.readouterr().out
        assert main(["replay", str(out), "--engine", "ref", "--to-tick", "5"]) == 0
        capsys.readouterr()
        assert main(["postmortem", str(out)]) == 0
        assert "Postmortem bundle" in capsys.readouterr().out

    def test_replay_exit_one_on_divergence(self, tmp_path, capsys):
        out = recorded_bundle(tmp_path)
        records_path = out / "records.jsonl"
        rows = [json.loads(l) for l in records_path.read_text().splitlines()]
        rows[-1]["digests"]["state"] = "f" * 64
        records_path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        assert main(["replay", str(out)]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_missing_bundle_exit_two(self, tmp_path, capsys):
        assert main(["postmortem", str(tmp_path / "nope")]) == 2
        assert "postmortem:" in capsys.readouterr().err
        assert main(["replay", str(tmp_path / "nope")]) == 2
        assert "replay:" in capsys.readouterr().err


class TestExecutorPostmortem:
    def test_failing_cell_writes_deterministic_bundle(self, tmp_path, monkeypatch):
        from repro.experiments.executor import map_configs

        monkeypatch.setenv("REPRO_MONITOR_ATOL_J", "-1")
        monkeypatch.setenv("REPRO_STRICT_MONITORS", "1")
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        pm = tmp_path / "pm"
        with pytest.raises(InvariantViolation):
            map_configs([tiny_config(), tiny_config(seed=7)], jobs=1,
                        postmortem_dir=pm)
        # The first (crashing) cell lands at its grid-indexed path.
        bundle = load_bundle(pm / "cell-0000")
        assert bundle.manifest["reason"] == "exception"
        assert "InvariantViolation" in bundle.manifest["error"]

    def test_clean_cells_write_no_bundles(self, tmp_path, monkeypatch):
        from repro.experiments.executor import map_configs

        monkeypatch.delenv("REPRO_CACHE", raising=False)
        pm = tmp_path / "pm"
        summaries = map_configs([tiny_config()], jobs=1, postmortem_dir=pm)
        assert summaries[0].as_dict() == run_simulation(tiny_config()).as_dict()
        assert not pm.exists()


class TestReportDegradation:
    """`repro report` over partial archives (satellite: graceful
    degradation instead of raising)."""

    def make_archive(self, tmp_path):
        out = tmp_path / "telemetry"
        run_with_telemetry(tiny_config(), out)
        return out

    def test_missing_listed_files_are_reported_not_fatal(self, tmp_path, capsys):
        out = self.make_archive(tmp_path)
        (out / "spans.jsonl").unlink()
        (out / "events.jsonl").unlink()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "missing from the archive" in text
        assert "spans.jsonl" in text

    def test_truncated_spans_are_tolerated(self, tmp_path, capsys):
        out = self.make_archive(tmp_path)
        spans = out / "spans.jsonl"
        # Simulate a crash mid-write: chop the final line in half.
        lines = spans.read_text().splitlines()
        spans.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        assert main(["report", str(out)]) == 0
        assert "Span tree" in capsys.readouterr().out

    def test_truly_empty_dir_still_raises(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert "manifest" in capsys.readouterr().err
