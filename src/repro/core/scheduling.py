"""Shared scheduler types and the scheduler interface.

All four recharge schedulers (greedy, single-RV insertion, the
Partition-Scheme and the Combined-Scheme) plan against the same inputs:

* the base station's :class:`~repro.core.requests.RechargeNodeList`,
* the fleet's current positions and remaining sortie budgets.

A plan is a :class:`PlannedRoute`: the sensor ids to visit in order plus
the planner's own travel/demand accounting (used for capacity checks
and for static benchmarking without a simulator).  The online glue —
executing routes leg by leg, recharging the RV at the depot — lives in
:mod:`repro.sim.world`; schedulers stay pure functions of their inputs,
which keeps them unit-testable and benchable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Protocol

import numpy as np

from .requests import RechargeNodeList

__all__ = ["PlannedRoute", "RVView", "Scheduler"]


@dataclass(frozen=True)
class PlannedRoute:
    """One RV's planned sortie.

    Attributes:
        node_ids: sensor ids in visit order (clusters already expanded
            into their nearest-neighbour member tour).
        waypoints: ``(k, 2)`` positions the plan visits, RV start first.
        travel_m: planned path length in meters (from the RV's position
            through every waypoint).
        demand_j: total energy the plan will deliver.
        profit_j: planner's Eq. (2) profit estimate
            (``demand - em * travel``).
    """

    node_ids: tuple
    waypoints: np.ndarray
    travel_m: float
    demand_j: float
    profit_j: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_ids", tuple(int(i) for i in self.node_ids))
        object.__setattr__(
            self, "waypoints", np.asarray(self.waypoints, dtype=np.float64).reshape(-1, 2)
        )

    def __len__(self) -> int:
        return len(self.node_ids)


@dataclass
class RVView:
    """The slice of RV state a scheduler is allowed to see.

    Attributes:
        rv_id: fleet index.
        position: current ``(2,)`` coordinates.
        budget_j: remaining sortie energy (travel + delivery).
        em_j_per_m: traveling energy rate.
        charge_efficiency: wireless transfer efficiency — delivering
            ``d`` Joules costs the budget ``d / efficiency``.
    """

    rv_id: int
    position: np.ndarray
    budget_j: float
    em_j_per_m: float = 5.6
    charge_efficiency: float = 1.0
    depot: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64).reshape(2)
        if self.depot is not None:
            self.depot = np.asarray(self.depot, dtype=np.float64).reshape(2)

    def delivery_cost(self, demand_j: float) -> float:
        """Budget debit for delivering ``demand_j``."""
        return demand_j / self.charge_efficiency


class Scheduler(Protocol):
    """Online scheduling interface consumed by the simulation world.

    Implementations must *remove* the requests they assign from the
    list, so concurrently idle RVs never race for the same node.
    """

    name: str

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        """Plan sorties for (a subset of) the idle RVs.

        Returns a mapping ``rv_id -> PlannedRoute``; RVs absent from the
        mapping stay idle this round.
        """
        ...
