"""Unit tests for repro.energy.battery."""

import numpy as np
import pytest

from repro.energy.battery import Battery, BatteryBank


class TestBattery:
    def test_starts_full_by_default(self):
        b = Battery(100.0)
        assert b.level_j == 100.0
        assert b.demand_j == 0.0
        assert b.fraction == 1.0

    def test_drain_clamps_at_empty(self):
        b = Battery(100.0)
        drawn = b.drain(150.0)
        assert drawn == 100.0
        assert b.level_j == 0.0
        assert b.is_depleted()

    def test_charge_clamps_at_full(self):
        b = Battery(100.0, level_j=90.0)
        stored = b.charge(50.0)
        assert stored == pytest.approx(10.0)
        assert b.level_j == 100.0

    def test_refill(self):
        b = Battery(100.0, level_j=30.0)
        assert b.refill() == pytest.approx(70.0)
        assert b.level_j == 100.0

    def test_negative_amounts_rejected(self):
        b = Battery(10.0)
        with pytest.raises(ValueError):
            b.drain(-1.0)
        with pytest.raises(ValueError):
            b.charge(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(10.0, level_j=11.0)
        with pytest.raises(ValueError):
            Battery(10.0, level_j=-1.0)


class TestBatteryBank:
    def test_shapes_and_defaults(self):
        bank = BatteryBank(5, capacity_j=100.0)
        assert len(bank) == 5
        assert np.all(bank.levels_j == 100.0)
        assert bank.threshold_j == 50.0

    def test_demands(self):
        bank = BatteryBank(3, capacity_j=100.0, initial_fraction=0.25)
        assert np.allclose(bank.demands_j, 75.0)

    def test_masks(self):
        bank = BatteryBank(3, capacity_j=100.0)
        bank.levels_j[:] = [0.0, 49.0, 80.0]
        assert bank.depleted_mask().tolist() == [True, False, False]
        assert bank.alive_mask().tolist() == [False, True, True]
        assert bank.below_threshold_mask().tolist() == [True, True, False]

    def test_drain_rates_vectorized(self):
        bank = BatteryBank(3, capacity_j=100.0)
        bank.drain_rates(np.array([1.0, 2.0, 0.0]), 10.0)
        assert np.allclose(bank.levels_j, [90.0, 80.0, 100.0])

    def test_drain_rates_clamps(self):
        bank = BatteryBank(2, capacity_j=10.0)
        bank.drain_rates(np.array([100.0, 0.1]), 1.0)
        assert bank.levels_j[0] == 0.0
        assert bank.levels_j[1] == pytest.approx(9.9)

    def test_drain_rates_shape_mismatch(self):
        bank = BatteryBank(2, capacity_j=10.0)
        with pytest.raises(ValueError):
            bank.drain_rates(np.zeros(3), 1.0)

    def test_drain_rates_negative_rate_rejected(self):
        bank = BatteryBank(2, capacity_j=10.0)
        with pytest.raises(ValueError):
            bank.drain_rates(np.array([-1.0, 0.0]), 1.0)

    def test_drain_rates_negative_dt_rejected(self):
        bank = BatteryBank(2, capacity_j=10.0)
        with pytest.raises(ValueError):
            bank.drain_rates(np.zeros(2), -1.0)

    def test_drain_energy_lump(self):
        bank = BatteryBank(3, capacity_j=10.0)
        bank.drain_energy([0, 2], 4.0)
        assert np.allclose(bank.levels_j, [6.0, 10.0, 6.0])

    def test_drain_energy_clamps(self):
        bank = BatteryBank(1, capacity_j=10.0)
        bank.levels_j[0] = 1.0
        bank.drain_energy([0], 5.0)
        assert bank.levels_j[0] == 0.0

    def test_charge_to_full_returns_delivered(self):
        bank = BatteryBank(3, capacity_j=10.0)
        bank.levels_j[:] = [2.0, 10.0, 7.0]
        delivered = bank.charge_to_full([0, 2])
        assert delivered == pytest.approx(11.0)
        assert np.allclose(bank.levels_j, [10.0, 10.0, 10.0])

    def test_time_to_level(self):
        bank = BatteryBank(1, capacity_j=10.0)
        assert bank.time_to_level(0, 5.0, 1.0) == pytest.approx(5.0)
        assert bank.time_to_level(0, 5.0, 0.0) == np.inf
        bank.levels_j[0] = 4.0
        assert bank.time_to_level(0, 5.0, 1.0) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatteryBank(-1)
        with pytest.raises(ValueError):
            BatteryBank(1, capacity_j=0.0)
        with pytest.raises(ValueError):
            BatteryBank(1, threshold_fraction=1.5)
        with pytest.raises(ValueError):
            BatteryBank(1, initial_fraction=-0.1)
