"""Unit tests for the run helpers."""

import pytest

from repro.core.combined import CombinedScheduler
from repro.core.greedy import GreedyScheduler
from repro.core.insertion import InsertionScheduler
from repro.core.partition import PartitionScheduler
from repro.sim.config import SimulationConfig
from repro.sim.runner import average_summaries, make_scheduler, run_seeds, run_simulation


class TestMakeScheduler:
    def test_all_names(self):
        assert isinstance(make_scheduler("greedy", 3), GreedyScheduler)
        assert isinstance(make_scheduler("insertion", 3), InsertionScheduler)
        assert isinstance(make_scheduler("partition", 3), PartitionScheduler)
        assert isinstance(make_scheduler("combined", 3), CombinedScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("dijkstra", 3)

    def test_partition_gets_fleet_size(self):
        s = make_scheduler("partition", 5)
        assert s.fleet_size == 5


def _quick_cfg(**kw):
    base = dict(
        n_sensors=30, n_targets=2, n_rvs=1, side_length_m=50.0,
        sim_time_s=6 * 3600.0, battery_capacity_j=300.0,
        initial_charge_range=(0.5, 0.7), dispatch_period_s=1800.0,
        tick_s=300.0,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestRunHelpers:
    def test_run_simulation(self):
        s = run_simulation(_quick_cfg())
        assert s.sim_time_s == 6 * 3600.0

    def test_run_seeds_varies_seed_only(self):
        res = run_seeds(_quick_cfg(), seeds=[1, 2, 3])
        assert len(res) == 3

    def test_average_summaries(self):
        res = run_seeds(_quick_cfg(), seeds=[1, 2])
        avg = average_summaries(res)
        d1, d2 = res[0].as_dict(), res[1].as_dict()
        for k, v in avg.items():
            assert v == pytest.approx((d1[k] + d2[k]) / 2)

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_summaries([])
