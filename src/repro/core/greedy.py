"""The greedy baseline (Algorithm 2).

Each step, each RV with enough energy drives to the single listed node
with the maximum recharge profit ``d_i - em * dist(rv, i)`` and
recharges *only that node*.  No look-ahead, no cluster batching — the
paper introduces it precisely to expose how much traveling energy a
profit-myopic policy wastes.

The round loop is a masked argmax over one shared snapshot: positions
and demands are stacked once per scheduling round, served nodes are
masked out, and each pick reuses the round's
:class:`~repro.core.kernels.DistanceCache` — after the first hop an
RV stands *on* a listed stop, so its next profit evaluation is a row
of the shared stop/stop matrix rather than a fresh measurement.  The
pick itself is :func:`repro.core.kernels.greedy_pick`, whose reference
path is the original per-element loop; both are bit-identical to the
historic re-stack-the-snapshot implementation (masking never changes
the elementwise profit arithmetic or the lowest-index tie rule).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..geometry.points import distances_from
from ..tsp.tour import leg_lengths
from . import kernels
from .requests import RechargeNodeList, RechargeRequest
from .scheduling import PlannedRoute, RVView

__all__ = ["GreedyScheduler", "greedy_destination"]


def greedy_destination(
    demands: np.ndarray,
    positions: np.ndarray,
    rv_position: np.ndarray,
    em_j_per_m: float,
) -> Optional[int]:
    """Index of the max-profit node (Algorithm 2, line 8).

    Ties resolve to the lowest index.  Returns ``None`` for an empty
    instance.  The paper's greedy picks the best node even at negative
    profit — starving nodes must still be served.
    """
    if len(demands) == 0:
        return None
    if em_j_per_m < 0:
        raise ValueError("em_j_per_m must be non-negative")
    dists = distances_from(rv_position, positions)
    return kernels.greedy_pick(demands, dists, em_j_per_m)


class _GreedyState:
    """One RV's virtual state while Algorithm 2's loop runs."""

    __slots__ = ("rv", "position", "budget", "picked", "flag", "at_stop")

    def __init__(self, rv: RVView) -> None:
        self.rv = rv
        self.position = rv.position
        self.budget = rv.budget_j
        self.picked: List[RechargeRequest] = []
        self.flag = True  # "this RV has enough energy" (Alg. 2 line 1)
        self.at_stop: Optional[int] = None  # snapshot index the RV stands on


class GreedyScheduler:
    """Online Algorithm 2.

    Per scheduling round the paper's loop runs to exhaustion: while the
    list is non-empty and some RV still has energy, each RV in turn
    takes the max-profit node *from its current (virtual) position*,
    updates its position and energy books, and continues.  The chains
    so produced are each RV's itinerary for the round.  No route
    planning, no cluster batching — exactly the baseline's myopia.
    """

    name = "greedy"

    def assign(
        self,
        requests: RechargeNodeList,
        idle_rvs: List[RVView],
        rng: np.random.Generator,
    ) -> Dict[int, PlannedRoute]:
        states = [_GreedyState(rv) for rv in idle_rvs]
        snapshot = requests.snapshot()
        if snapshot and states:
            positions = np.vstack([r.position for r in snapshot])
            demands = np.array([r.demand_j for r in snapshot], dtype=np.float64)
            cache = kernels.distance_cache_for(positions)
            unserved = np.ones(len(snapshot), dtype=bool)
            while np.any(unserved) and any(s.flag for s in states):
                for st in states:
                    if not np.any(unserved):
                        break
                    if not st.flag:
                        continue
                    dists = (
                        cache.row(st.at_stop)
                        if st.at_stop is not None
                        else cache.from_point(st.position)
                    )
                    idx = kernels.greedy_pick(
                        demands, dists, st.rv.em_j_per_m, mask=unserved
                    )
                    chosen = snapshot[idx]
                    travel = float(dists[idx])
                    cost = travel * st.rv.em_j_per_m + st.rv.delivery_cost(
                        chosen.demand_j
                    )
                    if cost > st.budget + 1e-9:
                        st.flag = False  # recharge threshold of h_i violated
                        continue
                    st.picked.append(chosen)
                    st.budget -= cost
                    st.position = chosen.position
                    st.at_stop = idx
                    unserved[idx] = False
                    requests.remove(chosen.node_id)
        plans: Dict[int, PlannedRoute] = {}
        for st in states:
            if not st.picked:
                continue
            waypoints = np.vstack([st.rv.position] + [r.position for r in st.picked])
            travel = float(leg_lengths(waypoints).sum())
            demand = float(sum(r.demand_j for r in st.picked))
            plans[st.rv.rv_id] = PlannedRoute(
                node_ids=tuple(r.node_id for r in st.picked),
                waypoints=waypoints,
                travel_m=travel,
                demand_j=demand,
                profit_j=demand - st.rv.em_j_per_m * travel,
            )
        return plans
