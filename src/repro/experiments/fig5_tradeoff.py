"""Figure 5 — trade-off between energy efficiency and network
performance (greedy scheduler, ERP sweep).

Two series against the ERP value:

* RV traveling energy (MJ) — declines with ERP;
* target missing rate (%) — climbs once ERP passes the point where
  postponed requests start killing sensors (the paper finds the jump
  above ERP ~= 0.6).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..utils.tables import format_series
from .common import ERP_GRID, ExperimentScale, run_erp_sweep

__all__ = ["run_fig5", "format_fig5"]


def run_fig5(
    scale: ExperimentScale, erps: Sequence[float] = ERP_GRID
) -> Dict[str, List[float]]:
    """Returns ``{"erp", "traveling_energy_mj", "missing_rate_pct"}``."""
    sweep = run_erp_sweep(scale, schedulers=("greedy",), erps=erps)
    g = sweep["greedy"]
    return {
        "erp": list(erps),
        "traveling_energy_mj": [v / 1e6 for v in g["traveling_energy_j"]],
        "missing_rate_pct": [
            100.0 * (1.0 - v) for v in g["avg_coverage_ratio"]
        ],
    }


def format_fig5(result: Dict[str, List[float]]) -> str:
    return format_series(
        "ERP",
        result["erp"],
        {
            "traveling energy (MJ)": result["traveling_energy_mj"],
            "missing rate (%)": result["missing_rate_pct"],
        },
        title="Fig. 5 - Trade-off between energy efficiency and coverage (greedy)",
    )
