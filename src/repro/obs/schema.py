"""Declared stats-snapshot schemas for pool / store / service wire dicts.

Before this module, ``WarmPool.stats``, ``ResultStore.stats`` and the
service ``describe()`` payload were hand-maintained dicts whose keys
had to be kept in sync with the ``repro.obs`` counter names mirrored
alongside them — three places to update, nothing enforcing agreement.
Each schema below is the single declaration: components build their
stats dict with :meth:`StatsSchema.new_stats` and derive the mirrored
instrument name with :meth:`StatsSchema.counter_name`, and the schema
test asserts the wire keys seen in live payloads match the declaration
exactly, so they can never drift apart again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Tuple

__all__ = [
    "StatField",
    "StatsSchema",
    "POOL_STATS",
    "STORE_STATS",
    "SERVICE_DESCRIBE_KEYS",
]


class StatField(NamedTuple):
    """One key in a stats snapshot dict."""

    key: str          # wire key in the stats dict
    description: str  # what it counts (also the Prometheus HELP text)


class StatsSchema:
    """An ordered, named set of counter-valued stat fields."""

    def __init__(self, name: str, prefix: str, fields: Iterable[StatField]) -> None:
        self.name = name
        #: Dotted instrument-name prefix, e.g. ``"pool"`` → ``pool.warm_hits``.
        self.prefix = prefix
        self.fields: Tuple[StatField, ...] = tuple(fields)
        keys = [f.key for f in self.fields]
        if len(keys) != len(set(keys)):
            raise ValueError(f"schema {name!r} has duplicate keys")
        self._keys = frozenset(keys)

    def keys(self) -> List[str]:
        return [f.key for f in self.fields]

    def new_stats(self) -> Dict[str, int]:
        """A fresh all-zero stats dict with exactly the declared keys."""
        return {f.key: 0 for f in self.fields}

    def counter_name(self, key: str) -> str:
        """The mirrored instrument name for a wire key."""
        if key not in self._keys:
            raise KeyError(f"{key!r} is not declared in schema {self.name!r}")
        return f"{self.prefix}.{key}"

    def validate(self, stats: Dict[str, int]) -> None:
        """Raise if ``stats`` has extra or missing keys vs the schema."""
        got = set(stats)
        if got != self._keys:
            missing = sorted(self._keys - got)
            extra = sorted(got - self._keys)
            raise ValueError(
                f"stats dict does not match schema {self.name!r}: "
                f"missing={missing} extra={extra}"
            )

    def help_text(self, key: str) -> str:
        for f in self.fields:
            if f.key == key:
                return f.description
        raise KeyError(key)


#: ``WarmPool.stats`` — mirrored as ``pool.<key>`` counters.
POOL_STATS = StatsSchema(
    "pool_stats",
    "pool",
    [
        StatField("cold_starts", "worker processes spawned from cold"),
        StatField("warm_hits", "tasks served by an already-warm worker"),
        StatField("respawns", "workers replaced after a crash"),
        StatField("reaps", "workers retired by idle reaping"),
        StatField("tasks", "tasks completed by the pool"),
        StatField("shm_bytes", "result bytes shipped via shared memory"),
    ],
)

#: ``ResultStore.stats`` — mirrored as ``store.<key>`` counters.
STORE_STATS = StatsSchema(
    "store_stats",
    "store",
    [
        StatField("hits", "store lookups that returned a result"),
        StatField("misses", "store lookups that found nothing"),
        StatField("puts", "results written to the store"),
        StatField("dedup", "puts skipped because the key already existed"),
        StatField("corrupt", "store objects rejected by integrity checks"),
    ],
)

#: Top-level keys the service ``describe()`` payload must carry.
#: (Values are nested dicts — ``pool`` embeds POOL_STATS keys, ``store``
#: embeds the store's describe() which includes STORE_STATS keys.)
SERVICE_DESCRIBE_KEYS: Tuple[str, ...] = (
    "jobs",
    "warm",
    "requests_served",
    "counters",
)
