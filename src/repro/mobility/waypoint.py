"""Random-waypoint target mobility (extension).

The paper's targets teleport to fresh uniform locations every target
period — convenient, but physical targets (animals, vehicles) move
continuously.  This module provides the classic random-waypoint model:
each target walks toward a uniformly drawn waypoint at constant speed,
draws the next waypoint on arrival, and so on.

The simulation world only *observes* target positions when clusters are
re-formed (once per target period), so the process exposes the same
interface as :class:`~repro.mobility.targets.TargetProcess`:
``relocate()`` advances the walk by one period and returns the new
positions.
"""

from __future__ import annotations

import numpy as np

from ..geometry.field import Field

__all__ = ["RandomWaypointProcess"]


class RandomWaypointProcess:
    """Targets moving by the random-waypoint model.

    Args:
        field: the sensing field.
        m: number of targets.
        period_s: observation cadence (the target period — clusters are
            re-formed each time :meth:`relocate` is called).
        rng: random generator.
        speed_mps: walking speed of every target.
    """

    def __init__(
        self,
        field: Field,
        m: int,
        period_s: float,
        rng: np.random.Generator,
        speed_mps: float = 0.5,
    ) -> None:
        if m < 0:
            raise ValueError("m must be non-negative")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if speed_mps <= 0:
            raise ValueError("speed_mps must be positive")
        self.field = field
        self.m = m
        self.period_s = float(period_s)
        self.speed_mps = float(speed_mps)
        self._rng = rng
        self.positions = field.random_points(m, rng)
        self._waypoints = field.random_points(m, rng)
        self.epoch = 0

    def _advance(self, dt_s: float) -> None:
        """Walk every target ``dt_s`` seconds toward its waypoint,
        drawing new waypoints as they are reached."""
        if self.m == 0:
            return
        remaining = np.full(self.m, dt_s, dtype=np.float64)
        # A few refresh rounds: each target rarely crosses more than a
        # handful of waypoints in one period.
        for _ in range(64):
            moving = remaining > 1e-12
            if not np.any(moving):
                break
            delta = self._waypoints - self.positions
            dist = np.hypot(delta[:, 0], delta[:, 1])
            reach_t = dist / self.speed_mps
            # Arrived this round: the waypoint is reachable within the
            # remaining time budget (evaluated before stepping).
            arrived = moving & (reach_t <= remaining + 1e-12)
            step_t = np.where(moving, np.minimum(remaining, reach_t), 0.0)
            with np.errstate(invalid="ignore", divide="ignore"):
                unit = np.where(dist[:, None] > 0, delta / dist[:, None], 0.0)
            self.positions = self.positions + unit * (step_t[:, None] * self.speed_mps)
            remaining = remaining - step_t
            if np.any(arrived):
                self.positions[arrived] = self._waypoints[arrived]
                self._waypoints[arrived] = self.field.random_points(
                    int(arrived.sum()), self._rng
                )
        # Numerical safety: clamp inside the field.
        np.clip(self.positions, 0.0, self.field.side_length, out=self.positions)

    def relocate(self) -> np.ndarray:
        """Advance the walk by one period; returns the new positions."""
        self._advance(self.period_s)
        self.epoch += 1
        return self.positions

    def next_relocation_after(self, now_s: float) -> float:
        """Absolute time of the first observation strictly after ``now_s``."""
        k = int(np.floor(now_s / self.period_s)) + 1
        return k * self.period_s
