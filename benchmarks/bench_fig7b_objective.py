"""Fig. 7(b) — objective score (Eq. (2) recharge profit) vs ERP.

Paper shape: the Combined-Scheme achieves the highest profit; the
Partition-Scheme overtakes greedy as ERP grows (lower travel, similar
energy delivered).
"""

import numpy as np

from repro.experiments import ERP_GRID
from repro.experiments.fig7_profit import format_fig7_panel, panel_b

from _shared import emit, get_sweep


def bench_fig7b_objective(benchmark):
    series = benchmark.pedantic(lambda: panel_b(get_sweep()), rounds=1, iterations=1)
    emit("fig7b_objective", format_fig7_panel("b", series, ERP_GRID))
    # Objective = delivered - travel; must be positive for a working
    # recharging system.
    for s, v in series.items():
        assert all(x > 0 for x in v), s
    # Shape: at high ERP, partition's low travel makes it at least
    # competitive with greedy.
    assert np.mean(series["partition"][-2:]) >= np.mean(series["greedy"][-2:]) * 0.95
