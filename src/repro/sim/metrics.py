"""Metric collection for the WRSN simulation.

Everything the paper's evaluation section plots comes out of this
module:

* **traveling energy / distance of RVs** (Figs. 4, 5, 6a) — from the RV
  books;
* **target coverage ratio and missing rate** (Figs. 5, 6b) —
  time-weighted average of the fraction of targets currently monitored;
* **percentage of nonfunctional sensors** (Fig. 6c) — time-weighted
  average of the depleted fraction;
* **recharging cost** (Fig. 6d) — total RV distance divided by the
  time-averaged number of operational sensors (m/sensor);
* **energy recharged** (Fig. 7a) and the **objective score** Eq. (2)
  (Fig. 7b) — delivered energy, minus traveling energy for the score.

The collector integrates piecewise-constant signals: the world reports
the current state at every bookkeeping event, and each report closes
the rectangle since the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MetricsCollector", "SimulationSummary"]


@dataclass(frozen=True)
class SimulationSummary:
    """Final figures of one simulation run (SI units).

    All "avg" fields are time-weighted means over the horizon.
    """

    sim_time_s: float
    traveling_distance_m: float
    traveling_energy_j: float
    delivered_energy_j: float
    objective_j: float
    avg_coverage_ratio: float
    missing_rate: float
    avg_nonfunctional_fraction: float
    avg_operational_sensors: float
    recharging_cost_m_per_sensor: float
    n_recharges: int
    n_sorties: int
    n_requests: int
    mean_request_latency_s: float
    events_fired: int

    @property
    def traveling_energy_mj(self) -> float:
        """Traveling energy in MJ, the unit of the paper's figures."""
        return self.traveling_energy_j / 1e6

    @property
    def delivered_energy_mj(self) -> float:
        return self.delivered_energy_j / 1e6

    @property
    def objective_mj(self) -> float:
        return self.objective_j / 1e6

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view (handy for tabulation)."""
        return {
            "sim_time_s": self.sim_time_s,
            "traveling_distance_m": self.traveling_distance_m,
            "traveling_energy_j": self.traveling_energy_j,
            "delivered_energy_j": self.delivered_energy_j,
            "objective_j": self.objective_j,
            "avg_coverage_ratio": self.avg_coverage_ratio,
            "missing_rate": self.missing_rate,
            "avg_nonfunctional_fraction": self.avg_nonfunctional_fraction,
            "avg_operational_sensors": self.avg_operational_sensors,
            "recharging_cost_m_per_sensor": self.recharging_cost_m_per_sensor,
            "n_recharges": float(self.n_recharges),
            "n_sorties": float(self.n_sorties),
            "n_requests": float(self.n_requests),
            "mean_request_latency_s": self.mean_request_latency_s,
            "events_fired": float(self.events_fired),
        }


@dataclass
class MetricsCollector:
    """Time-weighted accumulator fed by the simulation world."""

    _last_t: float = 0.0
    _last_coverage: float = 1.0
    _last_nonfunctional: float = 0.0
    _last_operational: float = 0.0
    _coverage_integral: float = 0.0
    _nonfunctional_integral: float = 0.0
    _operational_integral: float = 0.0
    n_recharges: int = 0
    n_requests: int = 0
    _latency_sum_s: float = 0.0
    _started: bool = False
    _release_times: Dict[int, float] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)

    def start(self, t: float, coverage: float, nonfunctional: float, operational: float) -> None:
        """Initialize the step functions at simulation start."""
        self._last_t = t
        self._last_coverage = coverage
        self._last_nonfunctional = nonfunctional
        self._last_operational = operational
        self._started = True

    def record(self, t: float, coverage: float, nonfunctional: float, operational: float) -> None:
        """Report the *current* state at time ``t``.

        The previous state is integrated over ``[last_t, t]``; the new
        values hold from ``t`` on.  Out-of-order reports are rejected.
        """
        if not self._started:
            self.start(t, coverage, nonfunctional, operational)
            return
        dt = t - self._last_t
        if dt < 0:
            raise ValueError(f"metrics recorded out of order: {t} < {self._last_t}")
        self._coverage_integral += self._last_coverage * dt
        self._nonfunctional_integral += self._last_nonfunctional * dt
        self._operational_integral += self._last_operational * dt
        self._last_t = t
        self._last_coverage = coverage
        self._last_nonfunctional = nonfunctional
        self._last_operational = operational

    def note_request(self, node_id: int, t: float) -> None:
        """A recharge request entered the base station's list."""
        self.n_requests += 1
        self._release_times[node_id] = t

    def note_recharge(self, node_id: int, t: float) -> None:
        """A node was refilled by an RV."""
        self.n_recharges += 1
        released = self._release_times.pop(node_id, None)
        if released is not None:
            latency = t - released
            self._latency_sum_s += latency
            self.latencies_s.append(latency)

    def finalize(
        self,
        t_end: float,
        rv_distance_m: float,
        rv_moving_energy_j: float,
        delivered_energy_j: float,
        n_sorties: int,
        events_fired: int,
    ) -> SimulationSummary:
        """Close the integrals at ``t_end`` and produce the summary."""
        self.record(t_end, self._last_coverage, self._last_nonfunctional, self._last_operational)
        horizon = max(t_end, 1e-12)
        avg_cov = self._coverage_integral / horizon
        avg_nonf = self._nonfunctional_integral / horizon
        avg_oper = self._operational_integral / horizon
        recharging_cost = rv_distance_m / avg_oper if avg_oper > 0 else float("inf")
        mean_latency = self._latency_sum_s / self.n_recharges if self.n_recharges else 0.0
        return SimulationSummary(
            sim_time_s=t_end,
            traveling_distance_m=rv_distance_m,
            traveling_energy_j=rv_moving_energy_j,
            delivered_energy_j=delivered_energy_j,
            objective_j=delivered_energy_j - rv_moving_energy_j,
            avg_coverage_ratio=avg_cov,
            missing_rate=1.0 - avg_cov,
            avg_nonfunctional_fraction=avg_nonf,
            avg_operational_sensors=avg_oper,
            recharging_cost_m_per_sensor=recharging_cost,
            n_recharges=self.n_recharges,
            n_sorties=n_sorties,
            n_requests=self.n_requests,
            mean_request_latency_s=mean_latency,
            events_fired=events_fired,
        )
