"""Shared machinery for the figure-reproduction experiments.

Every experiment runs the calibrated configuration
(:meth:`repro.sim.SimulationConfig.experiment`) at one of three scales:

* ``smoke`` — 6 simulated days, 1 seed: CI-fast, shows the mechanisms.
* ``bench`` — 15 days, 2 seeds: the default for ``pytest benchmarks/``.
* ``paper`` — 40 days, 3 seeds: the scale used for the numbers recorded
  in EXPERIMENTS.md.

Select with the ``REPRO_SCALE`` environment variable (default
``bench``).  The ERP grid matches the paper's x-axis (0 to 1 in steps
of 0.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..registry import SCHEDULERS as SCHEDULER_REGISTRY
from ..sim.config import DAY_S, SimulationConfig
from ..sim.runner import average_summaries

__all__ = [
    "ERP_GRID",
    "SCHEMES",
    "ExperimentScale",
    "current_scale",
    "run_cell",
    "run_cell_stats",
    "run_erp_sweep",
]

#: The paper's ERP x-axis.
ERP_GRID: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: The three recharging schemes every figure compares.
SCHEMES: Tuple[str, ...] = ("greedy", "partition", "combined")


@dataclass(frozen=True)
class ExperimentScale:
    """How long and how many seeds an experiment runs."""

    name: str
    days: float
    seeds: Tuple[int, ...]

    def base_config(self, **overrides) -> SimulationConfig:
        """The calibrated experiment config at this scale."""
        return SimulationConfig.experiment(
            sim_time_s=self.days * DAY_S, **overrides
        )


_SCALES = {
    "smoke": ExperimentScale("smoke", days=6.0, seeds=(1,)),
    "bench": ExperimentScale("bench", days=15.0, seeds=(1, 2)),
    "paper": ExperimentScale("paper", days=40.0, seeds=(1, 2, 3)),
}


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default ``bench``)."""
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    if name not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {name!r}")
    return _SCALES[name]


def run_cell(
    scale: ExperimentScale, jobs: Optional[int] = None, **overrides
) -> Dict[str, float]:
    """Run one experiment cell (seed-averaged) and return the flat
    summary dict of :meth:`SimulationSummary.as_dict`.

    Cells go through the opt-in on-disk cache (``REPRO_CACHE``); with
    it unset they always run fresh.  Seeds fan out across the executor
    pool (``jobs``, else ``REPRO_JOBS``; cache lookups stay in the
    parent process).
    """
    from .executor import map_configs

    cfg = scale.base_config(**overrides)
    configs = [cfg.with_overrides(seed=s) for s in scale.seeds]
    return average_summaries(map_configs(configs, jobs=jobs))


def run_cell_stats(
    scale: ExperimentScale,
    confidence: float = 0.95,
    jobs: Optional[int] = None,
    **overrides,
) -> Dict[str, Dict[str, float]]:
    """Like :func:`run_cell` but with per-metric seed statistics.

    Returns ``{metric: {mean, std, ci_low, ci_high, n}}`` so figure
    tables can report uncertainty alongside the mean.
    """
    from ..utils.stats import summarize_runs
    from .executor import map_configs

    cfg = scale.base_config(**overrides)
    configs = [cfg.with_overrides(seed=s) for s in scale.seeds]
    return summarize_runs(map_configs(configs, jobs=jobs), confidence=confidence)


def run_erp_sweep(
    scale: ExperimentScale,
    schedulers: Sequence[str] = SCHEMES,
    erps: Sequence[float] = ERP_GRID,
    jobs: Optional[int] = None,
    **overrides,
) -> Dict[str, Dict[str, List[float]]]:
    """The ERP sweep behind Figs. 5, 6(a-d) and 7(a-b).

    Returns ``result[scheduler][metric]`` as a list aligned with
    ``erps``; metrics are the flat summary keys.

    The whole ``scheduler x erp x seed`` grid is executed by the cell
    executor (:mod:`repro.experiments.executor`): every cell is keyed
    by ``(scheduler, erp, seed)`` and reassembled here in grid order,
    so the result is bit-identical to the serial loop whatever ``jobs``
    is.
    """
    from .executor import map_cells

    for sched in schedulers:
        # Fail fast (and with the registered names) before burning a
        # whole sweep grid on a typo.
        SCHEDULER_REGISTRY.check(sched)
    cells = map_cells(scale, schedulers, erps, jobs=jobs, **overrides)
    out: Dict[str, Dict[str, List[float]]] = {}
    for sched in schedulers:
        per_metric: Dict[str, List[float]] = {}
        for erp in erps:
            cell = average_summaries(
                [cells[(sched, float(erp), int(seed))] for seed in scale.seeds]
            )
            for k, v in cell.items():
                per_metric.setdefault(k, []).append(v)
        out[sched] = per_metric
    return out
