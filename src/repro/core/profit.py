"""Recharge profit — the paper's objective (Eq. (2)).

For a set of RV routes, the objective is the total energy demand served
minus the total traveling energy spent:

.. math::

   \\max \\sum_a \\sum_i y_i^a d_i \\;-\\; \\sum_a \\sum_{ij} c_{ij} x_{ij}^a,

with traveling cost :math:`c_{ij} = e_m \\cdot \\|p_i - p_j\\|`.  The
same quantity drives every heuristic decision: the greedy destination
pick is :math:`\\arg\\max_i (d_i - e_m \\cdot dist_i)` and Algorithm 3's
insertion test is the *profit difference*
:math:`p(s, n) = d_n - e_m \\Delta d(s)`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..geometry.points import as_points, distances_from, path_length
from . import kernels

__all__ = [
    "node_profits",
    "route_travel_cost",
    "route_profit",
    "total_objective",
    "insertion_profit_delta",
]


def node_profits(
    demands: np.ndarray,
    positions: np.ndarray,
    rv_position: np.ndarray,
    em_j_per_m: float,
) -> np.ndarray:
    """Per-node one-shot recharge profit ``d_i - em * dist(rv, i)``.

    The greedy destination rule (Algorithm 2 line 8 / Algorithm 3 line
    2) maximizes this vector.
    """
    demands = np.asarray(demands, dtype=np.float64)
    positions = as_points(positions)
    if demands.shape != (len(positions),):
        raise ValueError("demands must align with positions")
    if em_j_per_m < 0:
        raise ValueError("em_j_per_m must be non-negative")
    return kernels.profit_vector(
        demands, distances_from(rv_position, positions), em_j_per_m
    )


def route_travel_cost(
    waypoints: np.ndarray,
    em_j_per_m: float,
) -> float:
    """Traveling energy of a polyline route, ``em * length``."""
    if em_j_per_m < 0:
        raise ValueError("em_j_per_m must be non-negative")
    return em_j_per_m * path_length(waypoints)


def route_profit(
    demands: np.ndarray,
    positions: np.ndarray,
    order: Sequence[int],
    start: np.ndarray,
    em_j_per_m: float,
) -> float:
    """Profit of serving ``positions[order]`` starting from ``start``.

    Demand of every visited node counts positively; the traveling cost
    of the ``start -> order[0] -> ... -> order[-1]`` path counts
    negatively (open route — heuristics do not charge the return leg;
    see DESIGN.md).
    """
    demands = np.asarray(demands, dtype=np.float64)
    positions = as_points(positions)
    order = np.asarray(order, dtype=np.intp)
    if order.size == 0:
        return 0.0
    start = np.asarray(start, dtype=np.float64).reshape(1, 2)
    waypoints = np.vstack([start, positions[order]])
    return float(demands[order].sum()) - route_travel_cost(waypoints, em_j_per_m)


def total_objective(route_profits: Sequence[float]) -> float:
    """Eq. (2) for a fleet: the sum of per-route profits."""
    return float(sum(route_profits))


def insertion_profit_delta(
    route_points: np.ndarray,
    position_index: int,
    candidate_point: np.ndarray,
    candidate_demand: float,
    em_j_per_m: float,
) -> float:
    """Algorithm 3's ``p(s, n) = D(n) - em * delta_d(s)``.

    Args:
        route_points: ``(k, 2)`` current route waypoints, RV position
            first, destination last.
        position_index: insert the candidate between
            ``route_points[position_index]`` and
            ``route_points[position_index + 1]``.
        candidate_point: ``(2,)`` candidate location.
        candidate_demand: the candidate's energy demand ``D(n)``.

    Returns:
        The change in route profit if the insertion is performed.
        Positive means the detour pays for itself.
    """
    route_points = as_points(route_points)
    k = len(route_points)
    if not 0 <= position_index < k - 1:
        raise ValueError(f"position_index {position_index} out of range for {k} waypoints")
    a = route_points[position_index]
    b = route_points[position_index + 1]
    c = np.asarray(candidate_point, dtype=np.float64).reshape(2)
    detour = (
        float(np.hypot(*(a - c))) + float(np.hypot(*(c - b))) - float(np.hypot(*(a - b)))
    )
    return float(candidate_demand) - em_j_per_m * detour
