"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import (
    as_points,
    distance,
    distances_from,
    nearest_index,
    neighbors_within,
    pairs_within,
    pairwise_distances,
    path_length,
)


class TestAsPoints:
    def test_accepts_2d_array(self):
        pts = as_points([[0, 0], [1, 2]])
        assert pts.shape == (2, 2)
        assert pts.dtype == np.float64

    def test_promotes_single_point(self):
        pts = as_points([3.0, 4.0])
        assert pts.shape == (1, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            as_points([[1.0, 2.0, 3.0]])

    def test_rejects_bad_single_point(self):
        with pytest.raises(ValueError):
            as_points([1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_points([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            as_points([[np.inf, 0.0]])

    def test_empty_is_fine(self):
        pts = as_points(np.empty((0, 2)))
        assert pts.shape == (0, 2)


class TestDistance:
    def test_pythagorean(self):
        assert distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_zero(self):
        assert distance([1.5, 2.5], [1.5, 2.5]) == 0.0

    def test_symmetry(self):
        a, b = [1.0, 7.0], [-2.0, 3.0]
        assert distance(a, b) == pytest.approx(distance(b, a))


class TestDistancesFrom:
    def test_matches_scalar(self, square_points):
        origin = np.array([0.25, 0.25])
        d = distances_from(origin, square_points)
        for i, p in enumerate(square_points):
            assert d[i] == pytest.approx(distance(origin, p))

    def test_empty(self):
        d = distances_from([0, 0], np.empty((0, 2)))
        assert d.shape == (0,)


class TestPairwiseDistances:
    def test_self_matrix_diagonal_zero(self, square_points):
        m = pairwise_distances(square_points)
        assert np.allclose(np.diag(m), 0.0)

    def test_symmetric(self, square_points):
        m = pairwise_distances(square_points)
        assert np.allclose(m, m.T)

    def test_cross_matrix_shape(self, square_points):
        b = np.array([[0.0, 0.0]])
        m = pairwise_distances(square_points, b)
        assert m.shape == (5, 1)

    def test_values(self):
        m = pairwise_distances([[0, 0]], [[3, 4]])
        assert m[0, 0] == pytest.approx(5.0)


class TestPairsWithin:
    def test_finds_close_pairs(self):
        pts = np.array([[0, 0], [0.5, 0], [10, 10]])
        pairs = pairs_within(pts, 1.0)
        assert pairs.shape == (1, 2)
        assert set(pairs[0]) == {0, 1}

    def test_radius_zero_only_coincident(self):
        pts = np.array([[0, 0], [0, 0], [1, 1]])
        pairs = pairs_within(pts, 0.0)
        assert len(pairs) == 1

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            pairs_within(np.zeros((3, 2)), -1.0)

    def test_single_point_no_pairs(self):
        assert len(pairs_within(np.zeros((1, 2)), 5.0)) == 0

    def test_matches_bruteforce(self, rng):
        pts = rng.uniform(0, 10, size=(40, 2))
        pairs = {tuple(sorted(p)) for p in pairs_within(pts, 2.0)}
        brute = set()
        for i in range(40):
            for j in range(i + 1, 40):
                if np.hypot(*(pts[i] - pts[j])) <= 2.0:
                    brute.add((i, j))
        assert pairs == brute


class TestNeighborsWithin:
    def test_basic(self):
        centers = np.array([[0.0, 0.0]])
        pts = np.array([[0.5, 0], [2.0, 0], [0, 0.9]])
        (hits,) = neighbors_within(centers, pts, 1.0)
        assert hits.tolist() == [0, 2]

    def test_empty_points(self):
        res = neighbors_within(np.zeros((2, 2)), np.empty((0, 2)), 1.0)
        assert len(res) == 2
        assert all(len(h) == 0 for h in res)

    def test_sorted_output(self, rng):
        centers = rng.uniform(0, 5, size=(3, 2))
        pts = rng.uniform(0, 5, size=(50, 2))
        for h in neighbors_within(centers, pts, 2.5):
            assert list(h) == sorted(h)


class TestPathLength:
    def test_straight_line(self):
        assert path_length([[0, 0], [3, 4]]) == pytest.approx(5.0)

    def test_l_shape(self):
        assert path_length([[0, 0], [1, 0], [1, 1]]) == pytest.approx(2.0)

    def test_single_point(self):
        assert path_length([[2, 2]]) == 0.0

    def test_empty(self):
        assert path_length(np.empty((0, 2))) == 0.0


class TestNearestIndex:
    def test_picks_closest(self, square_points):
        assert nearest_index([0.45, 0.55], square_points) == 4

    def test_tie_lowest_index(self):
        pts = np.array([[1.0, 0.0], [-1.0, 0.0]])
        assert nearest_index([0.0, 0.0], pts) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_index([0, 0], np.empty((0, 2)))


class TestKdtreeCache:
    def test_same_array_returns_same_tree(self):
        from repro.geometry.points import kdtree_for

        pts = np.random.default_rng(0).uniform(0, 10, size=(20, 2))
        assert kdtree_for(pts) is kdtree_for(pts)

    def test_distinct_arrays_get_distinct_trees(self):
        from repro.geometry.points import kdtree_for

        pts = np.random.default_rng(0).uniform(0, 10, size=(20, 2))
        assert kdtree_for(pts) is not kdtree_for(pts.copy())

    def test_queries_match_fresh_tree(self):
        from scipy.spatial import cKDTree

        from repro.geometry.points import kdtree_for, pairs_within

        pts = np.random.default_rng(1).uniform(0, 10, size=(30, 2))
        cached = kdtree_for(pts)
        fresh = cKDTree(pts)
        got = cached.query_pairs(r=3.0, output_type="ndarray")
        want = fresh.query_pairs(r=3.0, output_type="ndarray")
        assert np.array_equal(np.sort(got, axis=0), np.sort(want, axis=0))
        # The public helpers route through the cache and stay correct
        # on repeated calls over the same array.
        assert np.array_equal(pairs_within(pts, 3.0), pairs_within(pts, 3.0))

    def test_stale_identity_never_hits(self):
        # The entry's weakref must point at the exact array object; an
        # id() collision with a dead array can never return its tree.
        from repro.geometry import points as points_mod

        pts = np.random.default_rng(2).uniform(0, 10, size=(10, 2))
        tree = points_mod.kdtree_for(pts)
        key = id(pts)
        ref, cached = points_mod._TREE_CACHE[key]
        assert cached is tree and ref() is pts

    def test_lru_bound(self):
        from repro.geometry import points as points_mod

        keep = [
            np.random.default_rng(i).uniform(0, 10, size=(4, 2))
            for i in range(points_mod._TREE_CACHE_MAX + 5)
        ]
        for arr in keep:
            points_mod.kdtree_for(arr)
        assert len(points_mod._TREE_CACHE) <= points_mod._TREE_CACHE_MAX
