"""Energy accounting: analytic battery advance and rate bookkeeping.

The :class:`EnergyAccounting` component owns the piecewise-constant
power model of the whole sensor network:

* :meth:`recompute` refreshes the per-sensor draw vector (idle +
  active sensing + ETX-weighted relay load + optional leakage) from the
  current activation and routing state;
* :meth:`advance` drains every battery analytically for the elapsed
  interval and reports depletions (trace events + a death callback for
  the ERC policy);
* :meth:`apply_handoffs` charges rotation notification packets;
* :meth:`breakdown` exposes the cumulative per-category Joules.

Between events nothing integrates numerically — the engine only fires
bookkeeping ticks, so a 120-day horizon costs a few hundred events.

Incremental fast path
---------------------

``recompute`` is the simulator's hottest phase: it runs on every
rotation slot, and a full pass rebuilds the whole draw vector plus the
relay-load tree walk even when a rotation only moved the duty inside a
handful of clusters.  The incremental path diffs the alive/active
masks against the previous recompute, patches the relay *packet
counts* along the routing paths of the sensors whose origin status
flipped, and re-prices only the dirty sensors — arithmetic is
structured so the patched entries are **bit-identical** to a full
recompute (integer packet counts; identical per-element operation
order).

The fast path is on by default and falls back to the full pass when
battery leakage is configured (leakage re-prices *every* alive sensor
from its current charge level, so there is no small dirty set) or when
``REPRO_INCREMENTAL=0``.  ``REPRO_DEBUG_INCREMENTAL=1`` runs the full
pass after every incremental one and asserts exact equality — the
debugging belt-and-braces for anyone extending the rate model.
Instruments: ``energy.recompute.incremental`` / ``energy.recompute.full``
counters record which path ran.
"""

from __future__ import annotations

import logging
import os
from typing import Callable, Dict, Optional

import numpy as np

from ..soa import debug_soa, relay_accumulate, relay_levels
from ..trace import EventKind
from .state import SimulationState

__all__ = ["EnergyAccounting"]

logger = logging.getLogger(__name__)


def _incremental_default() -> bool:
    """The ``REPRO_INCREMENTAL`` opt-out (default: enabled)."""
    return os.environ.get("REPRO_INCREMENTAL", "1") not in ("0", "false", "no")


def _debug_incremental() -> bool:
    """``REPRO_DEBUG_INCREMENTAL=1``: assert incremental == full."""
    return os.environ.get("REPRO_DEBUG_INCREMENTAL", "") not in ("", "0")


class EnergyAccounting:
    """Vectorized battery advance + draw-rate recomputation.

    Args:
        state: the shared simulation state.
        on_deaths: optional callback invoked with the number of sensors
            that depleted during an :meth:`advance` (the request gate
            forwards it to adaptive ERC policies).
    """

    def __init__(
        self,
        state: SimulationState,
        on_deaths: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.s = state
        self.on_deaths = on_deaths
        self._per_packet_relay_j = state.power.relay_power_w(1.0)
        self._notification_j = state.power.notification_energy_j()
        self._last_t = 0.0
        n = state.cfg.n_sensors
        self.rates = np.zeros(n, dtype=np.float64)
        self.active = np.zeros(n, dtype=bool)
        self._category_watts: Dict[str, float] = {}
        self.breakdown_j: Dict[str, float] = {
            "idle": 0.0,
            "sensing": 0.0,
            "relay": 0.0,
            "leakage": 0.0,
            "notifications": 0.0,
        }
        # -- incremental-recompute state ----------------------------------
        # Leakage re-prices every alive sensor from its charge level at
        # each recompute, so only the leak-free model has a small dirty set.
        self.incremental_enabled = (
            _incremental_default() and state.cfg.self_discharge_fraction_per_day == 0
        )
        self._debug_check = _debug_incremental()
        self._connected = np.isfinite(state.routing.dist[:n])
        # Plain-python parent pointers: the per-origin path walks are
        # pure int arithmetic, far cheaper than numpy scalar indexing.
        self._parent_list = [int(p) for p in state.routing.parent]
        self._parent_arr = np.asarray(state.routing.parent, dtype=np.int64)
        self._base = int(state.routing.base)
        self._through_cnt = np.zeros(n + 1, dtype=np.int64)  # relayed+own packets
        self._origins = np.zeros(n, dtype=bool)
        self._alive_prev = np.zeros(n, dtype=bool)
        self._relay_w = np.zeros(n, dtype=np.float64)
        self._primed = False
        # -- SoA tick engine ----------------------------------------------
        # Level-order schedule for the vectorized relay accumulation
        # (computed once; the routing tree is static) and the scratch
        # array reused by every battery advance.
        self.soa = state.arrays is not None
        self._debug_soa = debug_soa()
        self._relay_levels = (
            relay_levels(state.routing.parent, state.routing.dist, state.routing.base, n)
            if self.soa
            else None
        )
        self._drain_scratch = state.arrays.drain_scratch if self.soa else None
        obs = state.instruments
        self._t_recompute = obs.timer("energy.recompute")
        self._t_advance = obs.timer("energy.advance")
        self._c_depletions = obs.counter("energy.depletions")
        self._c_recompute_inc = obs.counter("energy.recompute.incremental")
        self._c_recompute_full = obs.counter("energy.recompute.full")
        self._sp = state.spans
        self.recompute()

    # ------------------------------------------------------------------

    def recompute(self, force_full: bool = False) -> None:
        """Refresh the per-sensor power-draw vector (Watts).

        Also keeps the per-category totals (idle / sensing / relay /
        leakage, in Watts) used by :meth:`breakdown`.  Takes the
        incremental path when enabled and primed; ``force_full`` runs
        the full pass regardless (used by benchmarks and the debug
        equality check).
        """
        with self._t_recompute, self._sp.span("energy.recompute") as span:
            if force_full or not (self.incremental_enabled and self._primed):
                self._recompute_full()
                self._c_recompute_full.inc()
                span.set(path="full")
            else:
                self._recompute_incremental()
                self._c_recompute_inc.inc()
                span.set(path="incremental")
                if self._debug_check:
                    self._assert_matches_full()

    def _recompute_full(self) -> None:
        s = self.s
        power = s.power
        alive = s.bank.alive_mask()
        active = s.activator.active_mask(alive)
        n = s.cfg.n_sensors
        if self.soa:
            # Keep one stable rates buffer: the SoA arrays alias it, and
            # the steady-state full pass then allocates no fresh vector.
            rates = self.rates
            rates.fill(0.0)
        else:
            rates = np.zeros(n, dtype=np.float64)
        rates[alive] = power.idle_power_w
        rates[active] += power.active_sensing_power_w
        # Relay load: push each active origin's packet count down the
        # routing tree (farthest vertex first), skipping dead relays'
        # consumption (they can't forward).  Counts stay integer so the
        # incremental path can patch them exactly — and so the SoA
        # level-order accumulation commutes bit-exactly with this walk.
        cnt = np.zeros(n + 1, dtype=np.int64)
        origins = active & self._connected
        cnt[:n][origins] = 1
        parent = s.routing.parent
        base = s.routing.base
        if self.soa:
            relay_accumulate(cnt, parent, self._relay_levels)
            if self._debug_soa:
                self._assert_relay_matches_walk(cnt, origins)
        else:
            # Retained reference walk (REPRO_SOA=0): the executable
            # specification of the accumulation above.
            for v in s.traffic_order:
                if v == base or cnt[v] == 0:
                    continue
                p = parent[v]
                if p >= 0:
                    cnt[p] += cnt[v]
        relay = (cnt[:n] - origins).astype(np.float64) * power.packet_rate_hz
        relay_w = np.where(alive, relay * self._per_packet_relay_j * s.uplink_etx, 0.0)
        rates += relay_w
        leak_total = 0.0
        if s.cfg.self_discharge_fraction_per_day > 0:
            # Charge-proportional leakage, frozen at the current level
            # until the next rate recomputation (piecewise-linear
            # approximation of the exponential decay).
            leak_per_s = s.cfg.self_discharge_fraction_per_day / 86400.0
            leak_w = np.where(alive, s.bank.levels_j * leak_per_s, 0.0)
            rates += leak_w
            leak_total = float(leak_w.sum())
        rates[~alive] = 0.0
        if self.soa:
            # Batched-engine contract: under the SoA engine these
            # buffers may be bound as row views into a (B, n) stack
            # (see repro.sim.batch), so refresh them in place instead
            # of rebinding to the fresh arrays — values are identical.
            self.active[...] = active
            self._through_cnt[...] = cnt
            self._origins[...] = origins
            self._alive_prev[...] = alive
            self._relay_w[...] = relay_w
            self.s.arrays.rates_w = self.rates
            self.s.arrays.active = self.active
        else:
            self.rates = rates
            self.active = active
            self._through_cnt = cnt
            self._origins = origins
            self._alive_prev = alive
            self._relay_w = relay_w
        self._primed = True
        self._category_watts = {
            "idle": float(np.count_nonzero(alive)) * power.idle_power_w,
            "sensing": float(np.count_nonzero(active)) * power.active_sensing_power_w,
            "relay": float(relay_w.sum()),
            "leakage": leak_total,
        }

    def _recompute_incremental(self) -> None:
        """Patch ``rates`` for the sensors touched since the last pass.

        Exactness contract: every patched entry is produced by the same
        per-element arithmetic, in the same operation order, as
        :meth:`_recompute_full` — idle + sensing first, then
        ``((count * rate) * per_packet_j) * etx`` relay pricing — so a
        run on the fast path is bit-identical to one without it.
        """
        s = self.s
        power = s.power
        n = s.cfg.n_sensors
        alive = s.bank.alive_mask()
        active = s.activator.active_mask(alive)
        origins = active & self._connected
        dirty = (alive != self._alive_prev) | (active != self.active)
        # Patch the relay packet counts along the routing path of every
        # sensor whose origin status flipped; every vertex whose count
        # moved is re-priced below.
        changed = np.flatnonzero(origins != self._origins)
        if changed.size and self.soa:
            # Frontier form of the reference walk below: every changed
            # origin's whole root path advances one hop per iteration.
            # Counts are integers, so the add order cannot perturb them.
            cnt = self._through_cnt
            parent = self._parent_arr
            base = self._base
            vs = changed
            deltas = np.where(origins[changed], 1, -1)
            while vs.size:
                np.add.at(cnt, vs, deltas)
                keep = vs != base
                vs, deltas = vs[keep], deltas[keep]
                dirty[vs] = True
                vs = parent[vs]
                up = vs >= 0
                vs, deltas = vs[up], deltas[up]
        elif changed.size:
            cnt = self._through_cnt
            parent = self._parent_list
            base = self._base
            touched = []
            for v in changed:
                delta = 1 if origins[v] else -1
                u = int(v)
                while u >= 0:
                    cnt[u] += delta
                    if u == base:
                        break
                    touched.append(u)
                    u = parent[u]
            if touched:
                dirty[touched] = True
        idx = np.flatnonzero(dirty)
        if idx.size:
            relay = (self._through_cnt[idx] - origins[idx]).astype(
                np.float64
            ) * power.packet_rate_hz
            relay_w = np.where(
                alive[idx], relay * self._per_packet_relay_j * s.uplink_etx[idx], 0.0
            )
            idle_w = power.idle_power_w
            duty_w = idle_w + power.active_sensing_power_w
            base_w = np.where(active[idx], duty_w, idle_w)
            self.rates[idx] = np.where(alive[idx], base_w + relay_w, 0.0)
            self._relay_w[idx] = relay_w
        if self.soa:
            # Same in-place refresh as the full pass: row-view bindings
            # into a batched stack must survive every recompute.
            self.active[...] = active
            self._origins[...] = origins
            self._alive_prev[...] = alive
            self.s.arrays.active = self.active
        else:
            self.active = active
            self._origins = origins
            self._alive_prev = alive
        self._category_watts = {
            "idle": float(np.count_nonzero(alive)) * power.idle_power_w,
            "sensing": float(np.count_nonzero(active)) * power.active_sensing_power_w,
            "relay": float(self._relay_w.sum()),
            "leakage": 0.0,
        }

    def _assert_relay_matches_walk(self, cnt: np.ndarray, origins: np.ndarray) -> None:
        """``REPRO_DEBUG_SOA``: the level-order accumulation must equal
        the reference farthest-first walk, count for count."""
        s = self.s
        n = s.cfg.n_sensors
        ref = np.zeros(n + 1, dtype=np.int64)
        ref[:n][origins] = 1
        parent = s.routing.parent
        base = s.routing.base
        for v in s.traffic_order:
            if v == base or ref[v] == 0:
                continue
            p = parent[v]
            if p >= 0:
                ref[p] += ref[v]
        if not np.array_equal(cnt, ref):
            diff = np.flatnonzero(cnt != ref)
            raise AssertionError(
                "SoA relay accumulation diverged from the reference walk "
                f"(REPRO_DEBUG_SOA; vertices {diff[:10].tolist()}); "
                "please report this"
            )

    def _assert_matches_full(self) -> None:
        """Debug mode: the incremental result must equal a full pass."""
        inc_rates = self.rates.copy()
        inc_watts = dict(self._category_watts)
        self._recompute_full()
        if not np.array_equal(inc_rates, self.rates) or inc_watts != self._category_watts:
            diff = np.flatnonzero(inc_rates != self.rates)
            raise AssertionError(
                "incremental recompute diverged from full recompute "
                f"(sensors {diff[:10].tolist()}, category watts {inc_watts} "
                f"vs {self._category_watts}); please report this"
            )

    def advance(self) -> None:
        """Drain batteries for the elapsed interval; handle depletions."""
        s = self.s
        dt = s.now - self._last_t
        if dt > 0:
            with self._t_advance, self._sp.span("energy.advance", dt=dt):
                self._advance(dt)

    def _advance(self, dt: float) -> None:
        s = self.s
        mon = s.monitors
        was_alive = s.bank.alive_mask()
        levels_before = s.bank.levels_j.copy() if mon.enabled else None
        s.bank.drain_rates(self.rates, dt, scratch=self._drain_scratch)
        if mon.enabled:
            mon.check_energy_conservation(
                levels_before, s.bank.levels_j, self.rates, dt, s.now
            )
            mon.check_battery_bounds(s.bank.levels_j, s.bank.capacity_j, s.now)
        for cat, watts in self._category_watts.items():
            self.breakdown_j[cat] += watts * dt
        self._last_t = s.now
        died = was_alive & ~s.bank.alive_mask()
        if np.any(died):
            n_died = int(np.count_nonzero(died))
            logger.debug("t=%.0fs: %d sensor(s) depleted", s.now, n_died)
            self._c_depletions.inc(n_died)
            if s.trace.enabled:
                for v in np.flatnonzero(died):
                    s.trace.emit(s.now, EventKind.SENSOR_DEPLETED, int(v))
            if self.on_deaths is not None:
                self.on_deaths(n_died)
            # Depleted sensors stop sensing and relaying.
            self.recompute()

    def apply_handoffs(self, handoffs: np.ndarray) -> None:
        """Charge rotation notifications: TX to the retiring sensor,
        RX to its successor."""
        if not len(handoffs):
            return
        s = self.s
        rx_j = s.power.radio.rx_energy_j(s.power.payload_bytes)
        s.bank.drain_energy(handoffs[:, 0], self._notification_j)
        s.bank.drain_energy(handoffs[:, 1], rx_j)
        self.breakdown_j["notifications"] += len(handoffs) * (
            self._notification_j + rx_j
        )

    def breakdown(self) -> Dict[str, float]:
        """Cumulative network consumption by category (Joules)."""
        return dict(self.breakdown_j)
