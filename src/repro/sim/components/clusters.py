"""Cluster maintenance: relocation, re-clustering, activator wiring.

The :class:`ClusterManager` owns the target→cluster→activator pipeline:
whenever targets move (or sensors die at construction time), it re-runs
the configured clustering algorithm over the currently alive sensors,
refreshes the *coverable* mask that normalizes the coverage metric, and
rebuilds the configured activation scheme over the new clusters — all
published on the shared :class:`~repro.sim.components.state.SimulationState`.
"""

from __future__ import annotations

import logging

import numpy as np

from ...core.clustering import Cluster, ClusterSet
from ...geometry.coverage import detection_matrix
from ...registry import ACTIVATORS, CLUSTERINGS
from ..soa import pack_clusters, wrap_activator
from ..trace import EventKind
from .state import SimulationState

__all__ = ["ClusterManager"]

logger = logging.getLogger(__name__)


class ClusterManager:
    """Keeps ``state.cluster_set``, ``state.activator`` and
    ``state.coverable`` consistent with the current target epoch."""

    def __init__(self, state: SimulationState) -> None:
        self.s = state
        self._cluster_fn = CLUSTERINGS.get(
            getattr(state.cfg, "clustering", "balanced")
        )
        obs = state.instruments
        self._t_rebuild = obs.timer("clusters.rebuild")
        self._c_relocations = obs.counter("clusters.relocations")
        self._c_handoffs = obs.counter("clusters.handoffs")
        self._sp = state.spans
        self.rebuild()

    def rebuild(self) -> None:
        """Re-form clusters over the alive sensors for the current targets."""
        with self._t_rebuild, self._sp.span("clusters.rebuild") as span:
            self._rebuild()
            span.set(clusters=len(self.s.cluster_set))

    def _rebuild(self) -> None:
        s = self.s
        # A target is *coverable* if any deployed sensor (alive or not)
        # could see it: the coverage-ratio metric is normalized against
        # these, so it reports scheduling quality, not deployment luck.
        det = detection_matrix(s.sensor_pos, s.targets.positions, s.cfg.sensing_range_m)
        s.coverable = det.any(axis=0)
        alive_idx = np.flatnonzero(s.bank.alive_mask())
        # Pass the long-lived position array itself when nobody has died:
        # downstream geometry (detection matrices, k-d trees) caches on
        # array identity, and a fancy-indexed copy would defeat that on
        # every relocation epoch.
        if alive_idx.size == s.cfg.n_sensors:
            alive_pos = s.sensor_pos
        else:
            alive_pos = s.sensor_pos[alive_idx]
        local = self._cluster_fn(
            alive_pos, s.targets.positions, s.cfg.sensing_range_m
        )
        clusters = [
            Cluster(c.cluster_id, alive_idx[c.members]) if c.size else Cluster(c.cluster_id, c.members)
            for c in local
        ]
        s.cluster_set = ClusterSet(clusters, s.cfg.n_sensors)
        if s.arrays is not None:
            # Repack the padded member matrix for the new epoch — the
            # gate's array ERC scan reads it even when the activator is
            # a plugin the SoA engine doesn't wrap.
            pack_clusters(s.cluster_set, s.arrays)
        activator = ACTIVATORS.build(s.cfg.activation, cluster_set=s.cluster_set)
        # Under the SoA tick engine the built-in activators are swapped
        # for their array twins (plugins run unchanged).
        s.activator = wrap_activator(activator, s.arrays)

    def relocate(self) -> None:
        """Move targets to their next epoch and rebuild the clusters."""
        s = self.s
        s.targets.relocate()
        logger.debug("t=%.0fs: targets relocated (epoch %d)", s.now, s.targets.epoch)
        self._c_relocations.inc()
        if s.trace.enabled:
            s.trace.emit(s.now, EventKind.TARGETS_RELOCATED, s.targets.epoch)
        if s.blackbox.enabled:
            s.blackbox.note("relocated_epoch", int(s.targets.epoch))
        self.rebuild()

    def rotate(self) -> np.ndarray:
        """Advance the activation rotation by one slot.

        Returns the ``(k, 2)`` hand-off pairs reported by the activator
        (empty for schemes without rotation); the energy cost of the
        notification packets is the energy component's business.
        """
        s = self.s
        handoffs = s.activator.rotate(s.bank.alive_mask())
        if len(handoffs):
            self._c_handoffs.inc(len(handoffs))
            if s.blackbox.enabled:
                s.blackbox.note("handoffs", int(len(handoffs)))
            if s.trace.enabled:
                s.trace.emit(s.now, EventKind.ROTATION, -1, float(len(handoffs)))
        return handoffs
