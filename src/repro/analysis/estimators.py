"""Closed-form estimators for WRSN deployments.

Back-of-envelope models an operator uses *before* running simulations:
expected cluster sizes, per-sensor drain rates, recharge-request rates,
the Section III-B traveling-energy bound, and a fleet-sizing rule.  The
test suite validates each estimator against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..energy.consumption import NodePowerModel

__all__ = [
    "expected_cluster_size",
    "coverage_probability",
    "rr_member_power_w",
    "full_time_member_power_w",
    "threshold_crossing_interval_s",
    "request_rate_per_day",
    "fleet_size_lower_bound",
    "DeploymentModel",
]


def coverage_probability(n_sensors: int, side_length_m: float, sensing_range_m: float) -> float:
    """Probability a uniform random target is seen by >= 1 sensor.

    Poisson approximation of the binomial: ``1 - exp(-lambda)`` with
    ``lambda = N * pi * ds^2 / L^2``.
    """
    if n_sensors < 0 or side_length_m <= 0 or sensing_range_m < 0:
        raise ValueError("invalid deployment parameters")
    lam = n_sensors * math.pi * sensing_range_m**2 / side_length_m**2
    return 1.0 - math.exp(-lam)


def expected_cluster_size(n_sensors: int, side_length_m: float, sensing_range_m: float) -> float:
    """Expected number of sensors within one target's sensing disk.

    This is the mean cluster size the balanced clustering algorithm
    works with (before balancing steals members between overlapping
    targets).
    """
    if n_sensors < 0 or side_length_m <= 0 or sensing_range_m < 0:
        raise ValueError("invalid deployment parameters")
    return n_sensors * math.pi * sensing_range_m**2 / side_length_m**2


def rr_member_power_w(power: NodePowerModel, cluster_size: float) -> float:
    """Average draw of one cluster member under round-robin duty.

    The member is active ``1/nc`` of the time and idle otherwise.
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    return power.idle_power_w + power.active_sensing_power_w / cluster_size


def full_time_member_power_w(power: NodePowerModel) -> float:
    """Average draw of one cluster member monitoring continuously."""
    return power.idle_power_w + power.active_sensing_power_w


def threshold_crossing_interval_s(
    capacity_j: float,
    threshold_fraction: float,
    member_power_w: float,
) -> float:
    """Seconds between a member's recharge-threshold crossings.

    Assuming the RV refills to capacity, a member re-crosses the
    threshold after draining ``(1 - Eth) * Ec`` Joules.
    """
    if capacity_j <= 0 or not 0 <= threshold_fraction <= 1:
        raise ValueError("invalid battery parameters")
    if member_power_w <= 0:
        return float("inf")
    return capacity_j * (1.0 - threshold_fraction) / member_power_w


def request_rate_per_day(
    n_sensors: int,
    n_targets: int,
    side_length_m: float,
    sensing_range_m: float,
    capacity_j: float,
    threshold_fraction: float,
    power: NodePowerModel,
    activation: str = "round_robin",
) -> float:
    """Estimated recharge requests per day for a whole deployment.

    Clustered sensors cycle at the activation-scheme rate; the rest of
    the network drains at idle power.
    """
    nc = expected_cluster_size(n_sensors, side_length_m, sensing_range_m)
    n_clustered = min(n_targets * max(nc, 1.0), float(n_sensors))
    n_idle = n_sensors - n_clustered
    if activation == "round_robin":
        member_w = rr_member_power_w(power, max(nc, 1.0))
    elif activation == "full_time":
        member_w = full_time_member_power_w(power)
    else:
        raise ValueError(f"unknown activation {activation!r}")
    day = 86400.0
    rate = 0.0
    t_cluster = threshold_crossing_interval_s(capacity_j, threshold_fraction, member_w)
    rate += n_clustered * day / t_cluster
    t_idle = threshold_crossing_interval_s(capacity_j, threshold_fraction, power.idle_power_w)
    if math.isfinite(t_idle):
        rate += n_idle * day / t_idle
    return rate


def fleet_size_lower_bound(
    requests_per_day: float,
    mean_demand_j: float,
    charge_power_w: float,
    mean_trip_m: float,
    rv_speed_mps: float,
) -> int:
    """Minimum RVs to keep up with the request stream.

    Each request costs a drive of ``mean_trip_m`` plus the charging
    dwell; the bound is total service-time demand divided by one RV-day.
    """
    if requests_per_day < 0 or mean_demand_j < 0:
        raise ValueError("rates must be non-negative")
    if charge_power_w <= 0 or rv_speed_mps <= 0:
        raise ValueError("charge_power_w and rv_speed_mps must be positive")
    service_s = mean_demand_j / charge_power_w + mean_trip_m / rv_speed_mps
    needed = requests_per_day * service_s / 86400.0
    return max(1, int(math.ceil(needed)))


@dataclass(frozen=True)
class DeploymentModel:
    """All the estimators bundled for one deployment configuration.

    Built directly from a :class:`~repro.sim.config.SimulationConfig`
    via :meth:`from_config`.
    """

    n_sensors: int
    n_targets: int
    side_length_m: float
    sensing_range_m: float
    capacity_j: float
    threshold_fraction: float
    power: NodePowerModel
    activation: str = "round_robin"

    @classmethod
    def from_config(cls, config) -> "DeploymentModel":
        return cls(
            n_sensors=config.n_sensors,
            n_targets=config.n_targets,
            side_length_m=config.side_length_m,
            sensing_range_m=config.sensing_range_m,
            capacity_j=config.battery_capacity_j,
            threshold_fraction=config.threshold_fraction,
            power=config.power_model,
            activation=config.activation,
        )

    @property
    def cluster_size(self) -> float:
        return expected_cluster_size(self.n_sensors, self.side_length_m, self.sensing_range_m)

    @property
    def target_coverage_probability(self) -> float:
        return coverage_probability(self.n_sensors, self.side_length_m, self.sensing_range_m)

    @property
    def member_power_w(self) -> float:
        if self.activation == "round_robin":
            return rr_member_power_w(self.power, max(self.cluster_size, 1.0))
        return full_time_member_power_w(self.power)

    @property
    def requests_per_day(self) -> float:
        return request_rate_per_day(
            self.n_sensors,
            self.n_targets,
            self.side_length_m,
            self.sensing_range_m,
            self.capacity_j,
            self.threshold_fraction,
            self.power,
            self.activation,
        )

    def fleet_lower_bound(self, charge_power_w: float, rv_speed_mps: float = 1.0) -> int:
        mean_demand = self.capacity_j * (1.0 - self.threshold_fraction)
        # A random-to-random hop inside an L x L square averages ~0.52 L.
        mean_trip = 0.52 * self.side_length_m
        return fleet_size_lower_bound(
            self.requests_per_day, mean_demand, charge_power_w, mean_trip, rv_speed_mps
        )
