"""Shortest-path-tree routing to the base station.

Every sensor forwards its reports along the Dijkstra shortest path to
the base station (paper, Section V).  The whole routing state is one
parent vector rooted at the base vertex, which makes relay-load
accounting (see :mod:`repro.network.traffic`) a linear pass.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .dijkstra import shortest_paths
from .topology import Topology

__all__ = ["RoutingTree"]


class RoutingTree:
    """The shortest-path tree rooted at the base station.

    Attributes:
        dist: distance of every vertex to the base (``inf`` when
            disconnected).
        parent: next hop of every vertex *toward* the base (``-1`` for
            the base itself and for disconnected vertices).
    """

    def __init__(self, topology: Topology) -> None:
        if topology.base_index is None:
            raise ValueError("routing requires a topology with a base station")
        self.topology = topology
        self.base = topology.base_index
        # Dijkstra from the base; on an undirected graph the tree of
        # parents *from* the base is exactly the next-hop tree *to* it.
        self.dist, self.parent = shortest_paths(
            topology.indptr, topology.indices, topology.weights, self.base
        )

    @property
    def n_sensors(self) -> int:
        return self.topology.n_sensors

    def connected_mask(self) -> np.ndarray:
        """Sensors with a route to the base station."""
        return np.isfinite(self.dist[: self.n_sensors])

    def next_hop(self, node: int) -> int:
        """The vertex ``node`` forwards to (may be the base index)."""
        hop = int(self.parent[node])
        if hop < 0 and node != self.base:
            raise ValueError(f"node {node} has no route to the base station")
        return hop

    def path_to_base(self, node: int) -> List[int]:
        """Vertex sequence from ``node`` to the base station, inclusive."""
        if not np.isfinite(self.dist[node]):
            raise ValueError(f"node {node} has no route to the base station")
        path = [int(node)]
        while path[-1] != self.base:
            path.append(int(self.parent[path[-1]]))
            if len(path) > len(self.topology):
                raise RuntimeError("routing parent pointers contain a cycle")
        return path

    def hop_counts(self) -> np.ndarray:
        """Number of hops from each sensor to the base (-1 if unreachable).

        Computed iteratively in topological (distance) order so the pass
        is linear in the number of vertices.
        """
        order = np.argsort(self.dist, kind="stable")
        hops = np.full(len(self.topology), -1, dtype=np.int64)
        hops[self.base] = 0
        for v in order:
            p = self.parent[v]
            if p >= 0 and hops[p] >= 0:
                hops[v] = hops[p] + 1
        return hops[: self.n_sensors]
