"""Structured event tracing for simulations.

A :class:`TraceRecorder` attached to a :class:`~repro.sim.world.World`
captures every semantic event — request releases, RV departures and
arrivals, recharges, depletions, relocations — as typed records with
timestamps.  Traces power the time-series views (coverage over time,
backlog over time), the visualizations in :mod:`repro.viz`, and the
replay-determinism tests.

Recording is opt-in (``World(config, trace=recorder)``); the default
no-op recorder keeps the hot path free of bookkeeping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

__all__ = ["EventKind", "TraceEvent", "TraceRecorder", "NullRecorder"]


class EventKind(Enum):
    """The semantic event types a simulation emits."""

    REQUEST_RELEASED = "request_released"
    SORTIE_ASSIGNED = "sortie_assigned"
    RV_ARRIVED = "rv_arrived"
    NODE_RECHARGED = "node_recharged"
    RV_RETURNED_HOME = "rv_returned_home"
    SENSOR_DEPLETED = "sensor_depleted"
    SENSOR_REVIVED = "sensor_revived"
    TARGETS_RELOCATED = "targets_relocated"
    ROTATION = "rotation"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        time_s: simulation time of the event.
        kind: event type.
        subject: the primary entity (sensor id, RV id, epoch...), -1 if
            not applicable.
        value: free numeric payload (energy delivered, count, ...).
    """

    time_s: float
    kind: EventKind
    subject: int = -1
    value: float = 0.0


class NullRecorder:
    """Does nothing; the default when tracing is off."""

    enabled = False

    def emit(self, time_s: float, kind: EventKind, subject: int = -1, value: float = 0.0) -> None:
        pass

    def sample_series(self, time_s: float, name: str, value: float) -> None:
        pass


@dataclass
class TraceRecorder:
    """Collects trace events and named time series.

    Series are sampled by the world at every bookkeeping event
    (``coverage``, ``backlog``, ``alive`` ...), giving step-function
    curves aligned with the event log.
    """

    events: List[TraceEvent] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    enabled: bool = True

    def emit(self, time_s: float, kind: EventKind, subject: int = -1, value: float = 0.0) -> None:
        """Append one event record."""
        self.events.append(TraceEvent(time_s, kind, subject, value))

    def sample_series(self, time_s: float, name: str, value: float) -> None:
        """Append one (t, value) sample to the named series."""
        self.series.setdefault(name, []).append((time_s, float(value)))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind is kind)

    def between(self, t0: float, t1: float) -> Iterator[TraceEvent]:
        """Events with ``t0 <= time < t1``."""
        return (e for e in self.events if t0 <= e.time_s < t1)

    def series_arrays(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """A named series as ``(times, values)`` arrays.

        A series that was never sampled behaves exactly like one that
        was created empty: both return a pair of empty arrays (no
        ``KeyError``), so plotting/analysis code never has to special-
        case "no data yet".
        """
        samples = self.series.get(name, ())
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return np.empty(0), np.empty(0)
        return arr[:, 0], arr[:, 1]

    def request_latencies(self) -> List[Tuple[int, float]]:
        """(node, latency) pairs matching releases to recharges."""
        pending: Dict[int, float] = {}
        out: List[Tuple[int, float]] = []
        for e in self.events:
            if e.kind is EventKind.REQUEST_RELEASED:
                pending[e.subject] = e.time_s
            elif e.kind is EventKind.NODE_RECHARGED and e.subject in pending:
                out.append((e.subject, e.time_s - pending.pop(e.subject)))
        return out

    def rv_trail(self, rv_id: int) -> List[Tuple[float, int]]:
        """The node-visit sequence of one RV: (time, node) per arrival."""
        return [
            (e.time_s, int(e.value))
            for e in self.events
            if e.kind is EventKind.RV_ARRIVED and e.subject == rv_id
        ]

    def summary_counts(self) -> Dict[str, int]:
        """Event counts keyed by kind name (for quick inspection)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind.value] = out.get(e.kind.value, 0) + 1
        return out

    # ------------------------------------------------------------------
    # JSONL round trip (the on-disk format shared with repro.obs)
    # ------------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        """The trace as JSONL lines: events first, then series samples.

        Each line is one JSON object tagged ``"type": "event"`` or
        ``"type": "sample"`` — the same format the telemetry ``jsonl``
        exporter writes, so traces and telemetry share one on-disk
        representation.  :meth:`read_jsonl` inverts it exactly.
        """
        for e in self.events:
            yield json.dumps(
                {
                    "type": "event",
                    "t": e.time_s,
                    "kind": e.kind.value,
                    "subject": e.subject,
                    "value": e.value,
                }
            )
        for name, samples in self.series.items():
            for t, v in samples:
                yield json.dumps(
                    {"type": "sample", "t": t, "series": name, "value": v}
                )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Serialize the trace to a JSONL file; returns the path."""
        path = Path(path)
        with open(path, "w") as f:
            for line in self.to_jsonl_lines():
                f.write(line + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`write_jsonl` output.

        Round-trips exactly: event order, series sample order and all
        numeric payloads are preserved.  Lines with an unknown ``type``
        raise ``ValueError``.
        """
        recorder = cls()
        with open(path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                rtype = record.get("type")
                if rtype == "event":
                    recorder.events.append(
                        TraceEvent(
                            time_s=float(record["t"]),
                            kind=EventKind(record["kind"]),
                            subject=int(record.get("subject", -1)),
                            value=float(record.get("value", 0.0)),
                        )
                    )
                elif rtype == "sample":
                    recorder.sample_series(
                        float(record["t"]), record["series"], float(record["value"])
                    )
                else:
                    raise ValueError(
                        f"{path}:{lineno}: unknown trace record type {rtype!r}"
                    )
        return recorder
