"""The process-pool cell executor (repro.experiments.executor).

The load-bearing property is determinism: whatever ``jobs`` is, a sweep
must serialize byte-identically to the serial loop.  The rest covers
the worker-count knobs, grid-order bookkeeping, cache interplay and
instrument counters.
"""

import json

import pytest

from repro.experiments import ExperimentScale, run_erp_sweep
from repro.experiments.executor import default_jobs, map_cells, map_configs, sweep_grid
from repro.obs import Instruments
from repro.sim.runner import run_simulation

#: Small enough that a 4-process fan-out finishes in seconds, big
#: enough (2 seeds x 2 erps x 2 schemes) that reassembly order matters.
TINY = ExperimentScale("tiny", days=1.0, seeds=(1, 2))
SCHEDS = ("greedy", "combined")
ERPS = (0.0, 0.6)


def test_parallel_sweep_byte_identical_to_serial():
    serial = run_erp_sweep(TINY, SCHEDS, ERPS, jobs=1)
    parallel = run_erp_sweep(TINY, SCHEDS, ERPS, jobs=4)
    assert json.dumps(parallel, sort_keys=True) == json.dumps(serial, sort_keys=True)


def test_map_configs_matches_direct_runs():
    cfg = TINY.base_config(scheduler="greedy", erp=0.2)
    configs = [cfg.with_overrides(seed=s) for s in TINY.seeds]
    pooled = map_configs(configs, jobs=2)
    direct = [run_simulation(c) for c in configs]
    assert [p.as_dict() for p in pooled] == [d.as_dict() for d in direct]


def test_sweep_grid_is_scheduler_major():
    keys = sweep_grid(TINY, SCHEDS, ERPS)
    assert keys[0] == ("greedy", 0.0, 1)
    assert keys == [
        (sched, erp, seed) for sched in SCHEDS for erp in ERPS for seed in TINY.seeds
    ]
    assert len(keys) == len(SCHEDS) * len(ERPS) * len(TINY.seeds)


def test_map_cells_keys_every_cell():
    cells = map_cells(TINY, ("greedy",), (0.0,), jobs=1)
    assert set(cells) == {("greedy", 0.0, 1), ("greedy", 0.0, 2)}
    for summary in cells.values():
        assert summary.sim_time_s > 0


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_PROCS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_PROCS", "2")
    assert default_jobs() == 2
    monkeypatch.setenv("REPRO_JOBS", "3")  # REPRO_JOBS wins over REPRO_PROCS
    assert default_jobs() == 3


@pytest.mark.parametrize("var", ["REPRO_JOBS", "REPRO_PROCS"])
@pytest.mark.parametrize("spelling", ["auto", "AUTO", " Auto "])
def test_default_jobs_auto_resolves_to_cpu_count(monkeypatch, var, spelling):
    import os

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_PROCS", raising=False)
    monkeypatch.setenv(var, spelling)
    assert default_jobs() == max(1, os.cpu_count() or 1)


@pytest.mark.parametrize("bad", ["0", "-1", "two"])
def test_default_jobs_rejects_bad_values(monkeypatch, bad):
    monkeypatch.setenv("REPRO_JOBS", bad)
    with pytest.raises(ValueError):
        default_jobs()


def test_jobs_argument_validated():
    with pytest.raises(ValueError):
        map_configs([], jobs=0)


def test_spawn_start_method_byte_identical(monkeypatch):
    """The executor must stay deterministic under ``spawn`` — workers
    that re-import everything from scratch produce the same bytes as
    the in-process serial loop."""
    import multiprocessing

    if "spawn" not in multiprocessing.get_all_start_methods():  # pragma: no cover
        pytest.skip("spawn start method unavailable")
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    serial = map_cells(TINY, ("greedy",), (0.0,), jobs=1)
    monkeypatch.setenv("REPRO_START_METHOD", "spawn")
    spawned = map_cells(TINY, ("greedy",), (0.0,), jobs=2)
    assert json.dumps(
        {"|".join(map(str, k)): v.as_dict() for k, v in spawned.items()},
        sort_keys=True,
    ) == json.dumps(
        {"|".join(map(str, k)): v.as_dict() for k, v in serial.items()},
        sort_keys=True,
    )


def test_invalid_start_method_rejected(monkeypatch):
    from repro.experiments.executor import _pool_start_method

    monkeypatch.setenv("REPRO_START_METHOD", "teleport")
    with pytest.raises(ValueError, match="REPRO_START_METHOD"):
        _pool_start_method()


def test_warm_pool_env_opt_in(monkeypatch):
    """``REPRO_WARM_POOL=1`` routes misses through the shared warm
    pool without any argument changes."""
    from repro.experiments.pool import get_warm_pool, shutdown_warm_pool

    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_WARM_POOL", "1")
    try:
        cells = map_cells(TINY, ("greedy",), (0.0,), jobs=2)
        assert len(cells) == 2
        assert get_warm_pool(2).stats["tasks"] >= 2  # the pool did the work
    finally:
        shutdown_warm_pool()


def test_executor_counters_and_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    cfg = TINY.base_config(scheduler="greedy", erp=0.0)
    configs = [cfg.with_overrides(seed=s) for s in TINY.seeds]
    obs = Instruments()
    first = map_configs(configs, jobs=1, instruments=obs)
    snap = obs.snapshot()["counters"]
    assert snap["executor.cells"] == 2
    assert snap["executor.cache_misses"] == 2
    # Second pass: everything is a parent-side cache hit, no pool work.
    obs2 = Instruments()
    second = map_configs(configs, jobs=1, instruments=obs2)
    snap2 = obs2.snapshot()["counters"]
    assert snap2["executor.cache_hits"] == 2
    assert snap2["executor.cache_misses"] == 0
    assert [s.as_dict() for s in second] == [s.as_dict() for s in first]
