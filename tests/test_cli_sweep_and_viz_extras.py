"""Tests for the CLI sweep command, run_cell_stats, and the histogram."""

import pytest

from repro.cli import main
from repro.experiments.common import ExperimentScale, run_cell_stats
from repro.viz.ascii import render_histogram


class TestCliSweep:
    def test_sweep_table(self, capsys):
        rc = main(
            [
                "sweep",
                "--preset",
                "small",
                "--days",
                "0.3",
                "--erps",
                "0,1",
                "--schedulers",
                "greedy",
                "--seeds",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "traveling_energy_j" in out
        assert "greedy" in out
        assert "+/-" in out

    def test_sweep_custom_metric(self, capsys):
        rc = main(
            [
                "sweep",
                "--preset",
                "small",
                "--days",
                "0.3",
                "--erps",
                "0",
                "--schedulers",
                "combined",
                "--seeds",
                "1,2",
                "--metric",
                "n_recharges",
            ]
        )
        assert rc == 0
        assert "n_recharges" in capsys.readouterr().out


class TestRunCellStats:
    def test_stats_shape(self):
        scale = ExperimentScale("micro", days=0.3, seeds=(1, 2))
        stats = run_cell_stats(
            scale,
            n_sensors=40,
            n_targets=2,
            side_length_m=60.0,
            battery_capacity_j=400.0,
            initial_charge_range=(0.5, 0.8),
            dispatch_period_s=1800.0,
        )
        entry = stats["traveling_energy_j"]
        assert entry["n"] == 2
        assert entry["ci_low"] <= entry["mean"] <= entry["ci_high"]


class TestHistogram:
    def test_basic(self):
        out = render_histogram([1, 1, 2, 2, 2, 9], bins=4, title="lat", unit="h")
        assert "lat" in out
        assert "n = 6" in out
        assert "#" in out

    def test_single_value(self):
        out = render_histogram([5.0])
        assert "n = 1" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([])

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            render_histogram([1.0], bins=0)
