"""Process-pool executor for experiment cells.

The paper's figures are ERP-grid sweeps: a grid of
``(scheduler, erp, seed)`` cells that are embarrassingly parallel.
:func:`map_cells` fans a whole grid out across worker processes while
keeping the output *bit-identical* to the serial path:

* every cell is keyed by ``(scheduler, erp, seed)`` and the results are
  reassembled in grid order in the parent, so averaging and JSON
  serialization see exactly the sequence the serial loop would produce;
* cache lookups (``REPRO_CACHE``) happen in the parent — only misses
  are shipped to the pool — and completed cells are stored by the
  parent, so workers stay pure functions of their configuration;
* the worker entry point is the module-level
  :func:`repro.sim.runner.run_simulation` over a picklable frozen
  ``SimulationConfig``, which makes the pool safe under both ``fork``
  and ``spawn`` start methods.

Worker count comes from the ``jobs`` argument, else ``REPRO_JOBS``,
else the older ``REPRO_PROCS`` knob, else 1 (serial, in-process).  The
CLI exposes the same control as ``--jobs``.

Observability: pass an :class:`repro.obs.Instruments` registry to
record ``executor.cells`` / ``executor.cache_hits`` /
``executor.cache_misses`` counters and the ``executor.map`` phase
timer.  Pass a :class:`repro.obs.SpanTracer` as ``spans`` and the
fan-out becomes part of the flight-recorder trace: every cache miss
runs through :func:`_run_cell_traced` (in the pool when ``jobs > 1``),
its serialized child spans are merged under the parent ``executor.map``
span in miss order with deterministically renumbered ids, and cache
hits are recorded as events — so a ``--jobs 4`` trace reads exactly
like the serial one.
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.instruments import NULL_INSTRUMENTS
from ..obs.spans import NULL_TRACER, SpanTracer
from ..sim.config import SimulationConfig
from ..sim.metrics import SimulationSummary
from ..sim.runner import run_simulation
from ..sim.world import World

__all__ = ["CellKey", "default_jobs", "map_cells", "map_configs", "sweep_grid"]

#: A sweep-cell coordinate: ``(scheduler, erp, seed)``.
CellKey = Tuple[str, float, int]


def default_jobs() -> int:
    """Worker count for cell fan-out when ``jobs`` is not given.

    ``REPRO_JOBS`` wins; the older ``REPRO_PROCS`` (the seed-runner
    knob) is honored as a fallback so existing setups keep
    parallelizing; the default is 1 (serial) so library users opt in
    explicitly.
    """
    for var in ("REPRO_JOBS", "REPRO_PROCS"):
        value = os.environ.get(var, "").strip()
        if not value:
            continue
        try:
            n = int(value)
        except ValueError as exc:
            raise ValueError(f"{var} must be an integer, got {value!r}") from exc
        if n < 1:
            raise ValueError(f"{var} must be >= 1")
        return n
    return 1


def _pool_start_method() -> str:
    """Prefer fork (cheap and REPL-friendly); fall back to spawn."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _run_cell_traced(
    config: SimulationConfig,
) -> Tuple[SimulationSummary, List[Dict[str, Any]]]:
    """Pool worker: run one cell under a fresh span tracer.

    Returns the summary plus the serialized span rows (plain dicts, so
    they pickle across the pool boundary).  The worker's root span is
    the world's ``run`` span; the parent re-roots it under its own
    sweep span.  Spans never touch the trajectory, so the summary is
    bit-identical to :func:`repro.sim.runner.run_simulation`.
    """
    tracer = SpanTracer()
    summary = World(config, spans=tracer).run()
    return summary, tracer.to_rows()


def _run_cell_recorded(
    task: Tuple[SimulationConfig, str, bool],
) -> Tuple[SimulationSummary, Optional[List[Dict[str, Any]]]]:
    """Pool worker: run one cell with the flight recorder armed.

    ``task`` is ``(config, bundle_dir, traced)`` — a single tuple so
    the worker stays a one-argument, picklable ``pool.map`` target.  On
    any exception the recorder flushes a postmortem bundle to
    ``bundle_dir`` before the exception propagates to the parent; a
    clean run with monitor violations flushes one too.  The bundle path
    is keyed by grid index in the parent, so reruns land in the same
    place regardless of pool scheduling.
    """
    from ..obs import BlackBoxRecorder, MonitorSet
    from ..sim.runner import _flush_postmortem

    config, bundle_dir, traced = task
    recorder = BlackBoxRecorder()
    monitors = MonitorSet(blackbox=recorder)
    tracer = SpanTracer() if traced else None
    kwargs: Dict[str, Any] = {"monitors": monitors, "blackbox": recorder}
    if tracer is not None:
        kwargs["spans"] = tracer
    world = World(config, **kwargs)
    try:
        summary = world.run()
    except BaseException as exc:
        _flush_postmortem(
            recorder, bundle_dir, reason="exception", config=config,
            monitors=monitors, spans=tracer, world=world, error=exc,
        )
        raise
    if monitors.violations:
        _flush_postmortem(
            recorder, bundle_dir, reason="violation", config=config,
            monitors=monitors, spans=tracer,
        )
    return summary, tracer.to_rows() if tracer is not None else None


def map_configs(
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
    instruments=None,
    spans=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
) -> List[SimulationSummary]:
    """Run every configuration, in order, through cache + process pool.

    The result list is aligned with ``configs`` regardless of the order
    workers finish in, so the output is bit-identical to running the
    configurations serially.  Cache lookups and stores happen in the
    parent process; only misses are executed (in the pool when
    ``jobs > 1``).

    With a ``spans`` tracer, each miss runs under a child tracer whose
    rows are absorbed under this call's ``executor.map`` span in miss
    order (deterministic id renumbering), and cache hits become
    ``executor.cache_hit`` events — the merged trace is identical in
    structure for any ``jobs`` value.

    With ``postmortem_dir``, every miss runs with the flight recorder
    armed and writes ``<postmortem_dir>/cell-<grid index>`` bundles on
    failure or monitor violation — the same grid-order discipline as
    the span merge, so a crashing cell lands at the same path however
    the pool schedules it.
    """
    from .cache import cache_lookup, cache_store

    obs = instruments if instruments is not None else NULL_INSTRUMENTS
    sp = spans if spans is not None else NULL_TRACER
    n_jobs = default_jobs() if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")

    results: List[Optional[SimulationSummary]] = [None] * len(configs)
    misses: List[int] = []
    with obs.timer("executor.map"), sp.span(
        "executor.map", cells=len(configs), jobs=n_jobs
    ) as sweep_span:
        for i, cfg in enumerate(configs):
            hit = cache_lookup(cfg)
            if hit is not None:
                results[i] = hit
                if sp.enabled:
                    sp.event(
                        "executor.cache_hit",
                        cell=i, scheduler=cfg.scheduler, erp=cfg.erp, seed=cfg.seed,
                    )
            else:
                misses.append(i)
        obs.counter("executor.cells").inc(len(configs))
        obs.counter("executor.cache_hits").inc(len(configs) - len(misses))
        obs.counter("executor.cache_misses").inc(len(misses))
        sweep_span.set(cache_hits=len(configs) - len(misses))
        if misses:
            todo = [configs[i] for i in misses]
            if postmortem_dir is not None:
                root = Path(postmortem_dir)
                tasks = [
                    (configs[i], str(root / f"cell-{i:04d}"), sp.enabled)
                    for i in misses
                ]
                if n_jobs == 1 or len(tasks) == 1:
                    guarded = [_run_cell_recorded(t) for t in tasks]
                else:
                    ctx = multiprocessing.get_context(_pool_start_method())
                    with ctx.Pool(min(n_jobs, len(tasks))) as pool:
                        guarded = pool.map(_run_cell_recorded, tasks)
                fresh = []
                for i, (summary, rows) in zip(misses, guarded):
                    if sp.enabled and rows is not None:
                        sp.absorb(
                            rows, parent=sweep_span,
                            root_attrs={"cell": i, "cache": "miss"},
                        )
                    fresh.append(summary)
            elif sp.enabled:
                if n_jobs == 1 or len(todo) == 1:
                    traced = [_run_cell_traced(c) for c in todo]
                else:
                    ctx = multiprocessing.get_context(_pool_start_method())
                    with ctx.Pool(min(n_jobs, len(todo))) as pool:
                        traced = pool.map(_run_cell_traced, todo)
                fresh = []
                for i, (summary, rows) in zip(misses, traced):
                    sp.absorb(
                        rows, parent=sweep_span, root_attrs={"cell": i, "cache": "miss"}
                    )
                    fresh.append(summary)
            elif n_jobs == 1 or len(todo) == 1:
                fresh = [run_simulation(c) for c in todo]
            else:
                ctx = multiprocessing.get_context(_pool_start_method())
                with ctx.Pool(min(n_jobs, len(todo))) as pool:
                    fresh = pool.map(run_simulation, todo)
            for i, summary in zip(misses, fresh):
                cache_store(configs[i], summary)
                results[i] = summary
    return results  # type: ignore[return-value]


def sweep_grid(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
) -> List[CellKey]:
    """The sweep's cell keys in canonical (serial) grid order:
    scheduler-major, then ERP, then seed."""
    return [
        (sched, float(erp), int(seed))
        for sched in schedulers
        for erp in erps
        for seed in scale.seeds
    ]


def map_cells(
    scale,
    schedulers: Sequence[str],
    erps: Sequence[float],
    jobs: Optional[int] = None,
    instruments=None,
    spans=None,
    postmortem_dir: Optional[Union[str, Path]] = None,
    **overrides,
) -> Dict[CellKey, SimulationSummary]:
    """Execute a whole ERP x scheduler sweep grid, one run per key.

    Builds the exact configurations the serial :func:`run_cell` loop
    would build (``scale.base_config(scheduler=..., erp=...)`` with the
    seed overridden), fans cache misses out over the pool, and returns
    the summaries keyed by ``(scheduler, erp, seed)``.  Grid order is
    preserved internally so a downstream reassembly that walks
    ``sweep_grid`` order is bit-identical to the serial sweep.
    """
    keys = sweep_grid(scale, schedulers, erps)
    configs = [
        scale.base_config(scheduler=sched, erp=erp, **overrides).with_overrides(seed=seed)
        for sched, erp, seed in keys
    ]
    summaries = map_configs(
        configs, jobs=jobs, instruments=instruments, spans=spans,
        postmortem_dir=postmortem_dir,
    )
    return dict(zip(keys, summaries))
