"""Section IV-E — scheduler runtime scaling.

The paper analyzes the time complexity of the greedy (O(n^2)), the
single-RV insertion (O(n^2)..O(n^3)) and the two fleet schemes.  These
are true microbenchmarks (pytest-benchmark statistics) of one planning
round over a static recharge node list of size n.
"""

import numpy as np
import pytest

from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView
from repro.registry import SCHEDULERS as SCHEDULER_REGISTRY


#: One seed, threaded through every ``default_rng`` call site below so
#: the instance and the scheduler rng stay coupled (and changing it in
#: one place re-seeds the whole microbenchmark).
SEED = 0


def make_instance(n, seed=SEED):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 200, size=(n, 2))
    demands = rng.uniform(1000, 2000, size=n)
    reqs = [RechargeRequest(i, positions[i], float(demands[i])) for i in range(n)]
    views = [
        RVView(rv_id=i, position=np.array([100.0, 100.0]), budget_j=1e12, em_j_per_m=5.6)
        for i in range(3)
    ]
    return reqs, views


SCHEDULERS = ("greedy", "partition", "combined")


@pytest.mark.parametrize("n", [20, 60, 120])
@pytest.mark.parametrize("name", list(SCHEDULERS))
def bench_scheduler_round(benchmark, name, n):
    reqs, views = make_instance(n, seed=SEED)
    scheduler = SCHEDULER_REGISTRY.build(name, fleet_size=3)
    rng = np.random.default_rng(SEED)

    def round_():
        lst = RechargeNodeList(reqs)
        return scheduler.assign(lst, views, rng)

    plans = benchmark(round_)
    served = sum(len(p.node_ids) for p in plans.values())
    assert served == n  # unconstrained budgets: everything gets planned
