#!/usr/bin/env python
"""Using the schedulers as a standalone routing library (no simulator).

Given a snapshot of a recharge node list — positions, demands, cluster
memberships — plan one RV's sortie three ways and compare Eq. (2)
profits:

* Algorithm 2 (greedy chaining),
* Algorithm 3 (insertion, with cluster aggregation),
* the exact Held-Karp optimum (instances this small are solvable).

Run:  python examples/static_route_planning.py
"""

import numpy as np

from repro.core.greedy import greedy_destination
from repro.core.insertion import build_insertion_sequence, expand_stops
from repro.core.mip import RechargeInstance, solve_exact_single_rv
from repro.core.requests import RechargeRequest, aggregate_by_cluster

EM = 5.6  # J/m, Table II


def greedy_chain(positions, demands, start):
    """Algorithm 2 as a pure function: repeatedly take the max-profit
    node from the current position."""
    order, pos = [], start
    remaining = list(range(len(positions)))
    while remaining:
        sub = positions[remaining]
        idx = greedy_destination(demands[remaining], sub, pos, EM)
        order.append(remaining.pop(idx))
        pos = positions[order[-1]]
    return order


def main() -> None:
    rng = np.random.default_rng(42)
    # Eight pending requests: two 3-node clusters plus two singletons.
    cluster_a = rng.normal([40.0, 150.0], 4.0, size=(3, 2))
    cluster_b = rng.normal([160.0, 60.0], 4.0, size=(3, 2))
    singles = np.array([[100.0, 180.0], [30.0, 40.0]])
    positions = np.vstack([cluster_a, cluster_b, singles])
    demands = rng.uniform(2500.0, 4000.0, size=len(positions))
    cluster_ids = [0, 0, 0, 1, 1, 1, -1, -1]
    start = np.array([100.0, 100.0])  # the base station

    print("Pending recharge requests:")
    for i, (p, d, c) in enumerate(zip(positions, demands, cluster_ids)):
        tag = f"cluster {c}" if c >= 0 else "singleton"
        print(f"  node {i}: ({p[0]:6.1f}, {p[1]:6.1f})  demand {d:7.0f} J  [{tag}]")

    inst = RechargeInstance(positions, demands, start, em_j_per_m=EM)

    g_order = greedy_chain(positions, demands, start)
    g_profit = inst.route_profit(g_order)

    reqs = [
        RechargeRequest(i, positions[i], float(demands[i]), cluster_ids[i])
        for i in range(len(positions))
    ]
    stops = aggregate_by_cluster(reqs)
    stop_order = build_insertion_sequence(stops, start, budget_j=1e12, em_j_per_m=EM)
    route = expand_stops(stops, stop_order, start)
    i_order = list(route.node_ids)
    i_profit = inst.route_profit(i_order)

    exact = solve_exact_single_rv(inst)

    print("\nPlanned sorties (node visit order and Eq. (2) profit):")
    print(f"  greedy (Alg. 2)    : {g_order}  profit {g_profit:9.0f} J")
    print(f"  insertion (Alg. 3) : {i_order}  profit {i_profit:9.0f} J")
    print(f"  exact optimum      : {list(exact.order)}  profit {exact.profit:9.0f} J")
    gap = 100 * (exact.profit - i_profit) / exact.profit
    print(f"\nInsertion is within {gap:.1f}% of the provable optimum on this instance;")
    print(f"greedy leaves {100 * (exact.profit - g_profit) / exact.profit:.1f}% on the table.")

    # Show how the insertion route keeps cluster visits contiguous.
    by_cluster = [cluster_ids[i] for i in i_order]
    print(f"\nInsertion visit order by cluster: {by_cluster}")
    print("(cluster members are served back-to-back with a nearest-neighbour sub-tour)")


if __name__ == "__main__":
    main()
