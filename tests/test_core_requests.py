"""Unit tests for the recharge node list and cluster aggregation."""

import numpy as np
import pytest

from repro.core.requests import (
    RechargeNodeList,
    RechargeRequest,
    aggregate_by_cluster,
)


def req(node_id, x=0.0, y=0.0, demand=10.0, cluster=-1, t=0.0):
    return RechargeRequest(node_id, np.array([x, y]), demand, cluster, t)


class TestRechargeRequest:
    def test_position_canonicalized(self):
        r = req(0, 1.0, 2.0)
        assert r.position.shape == (2,)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            req(0, demand=-1.0)


class TestRechargeNodeList:
    def test_insertion_order_preserved(self):
        lst = RechargeNodeList([req(3), req(1), req(2)])
        assert lst.node_ids.tolist() == [3, 1, 2]

    def test_dedup_refreshes(self):
        lst = RechargeNodeList()
        lst.add(req(1, demand=5.0))
        lst.add(req(1, demand=9.0))
        assert len(lst) == 1
        assert lst.get(1).demand_j == 9.0

    def test_remove(self):
        lst = RechargeNodeList([req(1), req(2)])
        removed = lst.remove(1)
        assert removed.node_id == 1
        assert lst.remove(99) is None
        assert len(lst) == 1

    def test_remove_many(self):
        lst = RechargeNodeList([req(i) for i in range(5)])
        lst.remove_many([0, 2, 4])
        assert lst.node_ids.tolist() == [1, 3]

    def test_contains(self):
        lst = RechargeNodeList([req(7)])
        assert 7 in lst
        assert 8 not in lst

    def test_array_views(self):
        lst = RechargeNodeList([req(0, 1, 2, 5.0, 3), req(1, 3, 4, 7.0, -1)])
        assert lst.positions().shape == (2, 2)
        assert lst.demands().tolist() == [5.0, 7.0]
        assert lst.cluster_ids().tolist() == [3, -1]

    def test_empty_views(self):
        lst = RechargeNodeList()
        assert lst.positions().shape == (0, 2)
        assert lst.demands().shape == (0,)
        assert len(lst.snapshot()) == 0

    def test_clear(self):
        lst = RechargeNodeList([req(1)])
        lst.clear()
        assert len(lst) == 0


class TestAggregation:
    def test_singletons_stay_separate(self):
        out = aggregate_by_cluster([req(0, cluster=-1), req(1, cluster=-1)])
        assert len(out) == 2
        assert all(len(a.members) == 1 for a in out)

    def test_cluster_members_fold(self):
        out = aggregate_by_cluster(
            [req(0, 0, 0, 5.0, cluster=2), req(1, 2, 0, 7.0, cluster=2), req(2, 9, 9, 1.0)]
        )
        assert len(out) == 2
        agg = out[0]
        assert agg.cluster_id == 2
        assert agg.demand_j == pytest.approx(12.0)
        assert np.allclose(agg.position, [1.0, 0.0])
        assert agg.member_ids() == [0, 1]

    def test_first_appearance_order(self):
        out = aggregate_by_cluster(
            [req(0, cluster=5), req(1, cluster=-1), req(2, cluster=5)]
        )
        assert [a.cluster_id for a in out] == [5, -1]

    def test_visit_order_nearest_neighbor(self):
        members = (req(0, 0, 0, 1, 4), req(1, 10, 0, 1, 4), req(2, 5, 0, 1, 4))
        agg = aggregate_by_cluster(members)[0]
        order = agg.visit_order_from(np.array([-1.0, 0.0]))
        assert order == [0, 2, 1]

    def test_empty(self):
        assert aggregate_by_cluster([]) == []
