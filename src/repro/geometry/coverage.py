"""Coverage queries: which sensors see which targets, and how much of
the field the deployment covers.

The detection primitive (a target is seen by every sensor whose sensing
disk contains it) drives cluster formation; the grid coverage ratio is a
diagnostic used by the examples and the deployment tests.
"""

from __future__ import annotations

import numpy as np

from .points import as_points, neighbors_within

__all__ = [
    "detection_matrix",
    "detectors_of_targets",
    "covered_fraction_grid",
]


def detection_matrix(sensors: np.ndarray, targets: np.ndarray, sensing_range: float) -> np.ndarray:
    """Boolean ``(n_sensors, n_targets)`` matrix: sensor i detects target j.

    This is the paper's indicator :math:`I_{ij}` *before* cluster
    assignment restricts each sensor to at most one target.
    """
    sensors = as_points(sensors)
    targets = as_points(targets)
    if sensing_range < 0:
        raise ValueError("sensing_range must be non-negative")
    if len(sensors) == 0 or len(targets) == 0:
        return np.zeros((len(sensors), len(targets)), dtype=bool)
    diff = sensors[:, None, :] - targets[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    return dist <= sensing_range


def detectors_of_targets(sensors: np.ndarray, targets: np.ndarray, sensing_range: float) -> list:
    """For every target, the sorted indices of sensors that detect it.

    The per-target candidate sets :math:`P(i)` of Algorithm 1, phase 1.
    Uses a k-d tree so rebuilding candidate sets at every target
    relocation stays cheap.
    """
    return neighbors_within(targets, sensors, sensing_range)


def covered_fraction_grid(
    sensors: np.ndarray,
    side_length: float,
    sensing_range: float,
    resolution: int = 100,
) -> float:
    """Fraction of the field within sensing range of some sensor.

    Evaluated on a ``resolution x resolution`` grid of cell centers — a
    standard Monte-Carlo-free estimate of area coverage used to sanity
    check Eq. (1) style deployment sizing.
    """
    sensors = as_points(sensors)
    if side_length <= 0:
        raise ValueError("side_length must be positive")
    if resolution < 1:
        raise ValueError("resolution must be >= 1")
    if len(sensors) == 0:
        return 0.0
    step = side_length / resolution
    coords = (np.arange(resolution) + 0.5) * step
    gx, gy = np.meshgrid(coords, coords, indexing="ij")
    grid = np.column_stack([gx.ravel(), gy.ravel()])
    # Chunk the grid so the (cells x sensors) distance block stays small.
    covered = 0
    chunk = 4096
    for start in range(0, len(grid), chunk):
        block = grid[start : start + chunk]
        diff = block[:, None, :] - sensors[None, :, :]
        dist2 = diff[..., 0] ** 2 + diff[..., 1] ** 2
        covered += int(np.count_nonzero(dist2.min(axis=1) <= sensing_range**2))
    return covered / len(grid)
