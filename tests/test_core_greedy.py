"""Unit tests for the greedy baseline (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.greedy import GreedyScheduler, greedy_destination
from repro.core.requests import RechargeNodeList, RechargeRequest
from repro.core.scheduling import RVView


def req(node_id, x, y, demand, cluster=-1):
    return RechargeRequest(node_id, np.array([x, y]), demand, cluster)


def view(rv_id=0, pos=(0.0, 0.0), budget=1e9, em=1.0):
    return RVView(rv_id=rv_id, position=np.array(pos), budget_j=budget, em_j_per_m=em)


class TestGreedyDestination:
    def test_picks_max_profit(self):
        demands = np.array([100.0, 90.0])
        positions = np.array([[50.0, 0.0], [1.0, 0.0]])
        # Profits with em=1: 50 vs 89 -> node 1.
        assert greedy_destination(demands, positions, [0, 0], 1.0) == 1

    def test_empty_returns_none(self):
        assert greedy_destination(np.array([]), np.empty((0, 2)), [0, 0], 1.0) is None

    def test_negative_profit_still_picked(self):
        demands = np.array([1.0])
        positions = np.array([[100.0, 0.0]])
        assert greedy_destination(demands, positions, [0, 0], 5.6) == 0

    def test_tie_lowest_index(self):
        demands = np.array([10.0, 10.0])
        positions = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert greedy_destination(demands, positions, [0, 0], 1.0) == 0


class TestGreedyScheduler:
    def test_chains_whole_list(self, rng):
        lst = RechargeNodeList([req(i, i * 10.0, 0.0, 50.0) for i in range(5)])
        plans = GreedyScheduler().assign(lst, [view()], rng)
        assert len(lst) == 0
        assert sorted(plans[0].node_ids) == [0, 1, 2, 3, 4]

    def test_chain_follows_profit_order(self, rng):
        # Equal demands: greedy becomes nearest-first from current position.
        lst = RechargeNodeList([req(0, 30, 0, 10), req(1, 10, 0, 10), req(2, 20, 0, 10)])
        plans = GreedyScheduler().assign(lst, [view()], rng)
        assert plans[0].node_ids == (1, 2, 0)

    def test_budget_stops_chain(self, rng):
        lst = RechargeNodeList([req(0, 1, 0, 10), req(1, 2, 0, 10), req(2, 3, 0, 10)])
        # Budget allows roughly one pick: travel 1 + demand 10.
        plans = GreedyScheduler().assign(lst, [view(budget=12.0)], rng)
        assert plans[0].node_ids == (0,)
        assert len(lst) == 2

    def test_multiple_rvs_split_work(self, rng):
        lst = RechargeNodeList(
            [req(0, 10, 0, 10), req(1, 11, 0, 10), req(2, 200, 0, 10), req(3, 201, 0, 10)]
        )
        views = [view(0, pos=(0.0, 0.0)), view(1, pos=(210.0, 0.0))]
        plans = GreedyScheduler().assign(lst, views, rng)
        assert sorted(plans[0].node_ids) == [0, 1]
        assert sorted(plans[1].node_ids) == [2, 3]

    def test_no_requests_no_plans(self, rng):
        assert GreedyScheduler().assign(RechargeNodeList(), [view()], rng) == {}

    def test_route_accounting(self, rng):
        lst = RechargeNodeList([req(0, 3, 4, 20)])
        plans = GreedyScheduler().assign(lst, [view(em=2.0)], rng)
        p = plans[0]
        assert p.travel_m == pytest.approx(5.0)
        assert p.demand_j == pytest.approx(20.0)
        assert p.profit_j == pytest.approx(20.0 - 10.0)

    def test_exhausted_rv_unassigned(self, rng):
        lst = RechargeNodeList([req(0, 1, 0, 100)])
        plans = GreedyScheduler().assign(lst, [view(budget=0.5)], rng)
        assert plans == {}
        assert len(lst) == 1
