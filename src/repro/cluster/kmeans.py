"""From-scratch K-means (Lloyd's algorithm).

The Partition-Scheme (Section IV-D.1) partitions the recharge node list
into ``m`` geographically tight groups with K-means [23] and assigns one
RV per group, starting each RV at its group centroid.  We implement
Lloyd's fixed-point iteration directly — vectorized assignment step,
WCSS tracking, and deterministic seeding — rather than depending on an
external implementation, so the reproduction owns its baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..geometry.points import as_points

__all__ = ["KMeansResult", "kmeans", "wcss"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-means run.

    Attributes:
        centroids: ``(k, 2)`` final cluster centers.
        labels: length-n assignment of points to centroids.
        inertia: final within-cluster sum of squares (WCSS).
        n_iter: Lloyd iterations executed until convergence.
        converged: whether assignments reached a fixed point before
            ``max_iter``.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    def groups(self) -> List[np.ndarray]:
        """Point indices per cluster, ordered by cluster label."""
        return [np.flatnonzero(self.labels == j) for j in range(len(self.centroids))]


def wcss(points: np.ndarray, centroids: np.ndarray, labels: np.ndarray) -> float:
    """Within-cluster sum of squares for a given assignment (Eq. 15)."""
    points = as_points(points)
    centroids = as_points(centroids)
    diff = points - centroids[labels]
    return float(np.sum(diff * diff))


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    # The (points x centroids) squared-distance argmin reduction lives
    # in the kernel layer so the Lloyd step shares the vectorize /
    # reference / debug knobs with the schedulers.  Imported lazily:
    # repro.core's package init reaches this module via the
    # Partition-Scheme, so a top-level kernels import would be circular.
    from ..core import kernels

    return kernels.kmeans_assign(points, centroids)


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 100,
    n_init: int = 4,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Initialization samples ``k`` distinct points uniformly (the classic
    Forgy scheme); ``n_init`` restarts are run and the lowest-WCSS
    solution kept.  Empty clusters are repaired by re-seeding the
    offending centroid at the point farthest from its current centroid,
    which preserves the invariant that every label in ``[0, k)`` is
    used whenever ``k <= len(points)``.

    Args:
        points: ``(n, 2)`` coordinates, ``n >= 1``.
        k: number of clusters, ``1 <= k``.  If ``k >= n`` every point
            becomes its own cluster (labels ``0..n-1``) and remaining
            centroids duplicate existing points.
        rng: random generator; defaults to a fixed-seed generator so the
            function is deterministic unless told otherwise.
        max_iter: Lloyd iteration cap per restart.
        n_init: independent restarts.
    """
    points = as_points(points)
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    if k < 1:
        raise ValueError("k must be >= 1")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    if n_init < 1:
        raise ValueError("n_init must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)

    if k >= n:
        centroids = points.copy()
        labels = np.arange(n, dtype=np.intp)
        if k > n:  # pad duplicated centroids so shape contracts hold
            extra = points[rng.integers(0, n, size=k - n)]
            centroids = np.vstack([centroids, extra])
        return KMeansResult(centroids, labels, 0.0, 0, True)

    best: Optional[KMeansResult] = None
    for _ in range(n_init):
        seed_idx = rng.choice(n, size=k, replace=False)
        centroids = points[seed_idx].copy()
        labels = _assign(points, centroids)
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            for j in range(k):
                members = labels == j
                if np.any(members):
                    centroids[j] = points[members].mean(axis=0)
                else:
                    d = np.sum((points - centroids[j]) ** 2, axis=1)
                    centroids[j] = points[int(np.argmax(d))]
            new_labels = _assign(points, centroids)
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels
        inertia = wcss(points, centroids, labels)
        candidate = KMeansResult(centroids.copy(), labels.copy(), inertia, it, converged)
        if best is None or candidate.inertia < best.inertia:
            best = candidate
    assert best is not None
    return best
