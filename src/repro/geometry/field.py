"""The sensing field: a square region with a base station at its center.

Mirrors Section II of the paper: ``N`` sensors uniformly randomly
deployed over an ``L x L`` square, a base station at the center that
collects data and recharges the RVs, and Eq. (1)'s estimate of the
minimum sensor count for full coverage under the hexagon-covering result
of Williams [20].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .points import as_points

__all__ = [
    "Field",
    "minimum_sensors_eq1",
    "hexagon_covering_bound",
]


def minimum_sensors_eq1(area: float, sensing_range: float) -> int:
    """Minimum sensor count for full coverage per the paper's Eq. (1).

    .. math:: N = \\frac{3\\sqrt{3}\\, S_a}{2\\pi^2 r^2}

    ``area`` is the field area :math:`S_a` in m^2 and ``sensing_range``
    the sensing radius :math:`r` in meters.  The value is rounded up —
    fractional sensors do not exist.

    Note:
        The ICPP camera-ready typesets Eq. (1) ambiguously; we implement
        it exactly as printed.  :func:`hexagon_covering_bound` provides
        the classical triangular-lattice covering bound for comparison.
    """
    if area <= 0:
        raise ValueError("area must be positive")
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    return int(math.ceil(3.0 * math.sqrt(3.0) * area / (2.0 * math.pi**2 * sensing_range**2)))


def hexagon_covering_bound(area: float, sensing_range: float) -> int:
    """Classical covering bound: one hexagon inscribed per sensing disk.

    A disk of radius ``r`` covers at most the area of its inscribed
    regular hexagon, :math:`(3\\sqrt{3}/2) r^2`, when disks tile the
    plane on a triangular lattice (Williams [20]).  Hence
    :math:`N \\ge 2 S_a / (3\\sqrt{3} r^2)`.
    """
    if area <= 0:
        raise ValueError("area must be positive")
    if sensing_range <= 0:
        raise ValueError("sensing_range must be positive")
    return int(math.ceil(2.0 * area / (3.0 * math.sqrt(3.0) * sensing_range**2)))


@dataclass(frozen=True)
class Field:
    """A square sensing field of side ``side_length`` meters.

    The base station sits at the center of the field (paper, Section
    II-A); it is the depot from which RVs depart and to which sensing
    data is routed.
    """

    side_length: float
    base_station: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.side_length <= 0:
            raise ValueError("side_length must be positive")
        center = np.array([self.side_length / 2.0, self.side_length / 2.0])
        object.__setattr__(self, "base_station", center)

    @property
    def area(self) -> float:
        """Field area :math:`S_a = L^2` in m^2."""
        return self.side_length * self.side_length

    def contains(self, pts: np.ndarray) -> np.ndarray:
        """Boolean mask: which points lie inside (or on) the field."""
        pts = as_points(pts)
        inside_x = (pts[:, 0] >= 0.0) & (pts[:, 0] <= self.side_length)
        inside_y = (pts[:, 1] >= 0.0) & (pts[:, 1] <= self.side_length)
        return inside_x & inside_y

    def deploy_uniform(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Deploy ``n`` points uniformly at random over the field.

        This is the paper's random deployment (Section II-B): cheap to
        realize physically (airplane / artillery dispersal) at the cost
        of needing more nodes than a deterministic placement.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        return rng.uniform(0.0, self.side_length, size=(n, 2))

    def random_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Alias of :meth:`deploy_uniform` for target placement."""
        return self.deploy_uniform(n, rng)

    def deploy_triangular_lattice(self, sensing_range: float) -> np.ndarray:
        """Deterministic placement: the optimal triangular covering lattice.

        Rows are spaced ``1.5 * r`` apart with points every
        ``sqrt(3) * r``, odd rows offset by half a step — each disk of
        radius ``r`` covers its inscribed hexagon and the hexagons tile
        the plane (Williams [20]).  This is the deterministic placement
        Section II-B contrasts with random deployment: full coverage
        with near-minimal sensors, at the cost of surveyed positions.

        Returns:
            ``(n, 2)`` lattice points covering the whole field.
        """
        if sensing_range <= 0:
            raise ValueError("sensing_range must be positive")
        dx = math.sqrt(3.0) * sensing_range
        dy = 1.5 * sensing_range
        points = []
        row = 0
        y = 0.0
        while y <= self.side_length + dy:
            offset = 0.0 if row % 2 == 0 else dx / 2.0
            x = offset
            while x <= self.side_length + dx:
                points.append((min(x, self.side_length), min(y, self.side_length)))
                x += dx
            y += dy
            row += 1
        return np.array(points, dtype=np.float64)

    def minimum_sensors(self, sensing_range: float) -> int:
        """Eq. (1) coverage bound evaluated for this field."""
        return minimum_sensors_eq1(self.area, sensing_range)
